# Developer entry points.  The container bakes in python + numpy/scipy/
# pytest/pytest-benchmark/hypothesis; nothing here installs anything.

PYTHON ?= python
TIMEOUT ?= 120

.PHONY: tier1 smoke bench bench-telemetry bench-replay bench-verify bench-kernel bench-fleet bench-obs bench-corpus verify-fuzz fleet-smoke serve-smoke test-service check

# The ROADMAP tier-1 verify, with a per-test wall-clock limit so a
# wedged test fails fast instead of hanging CI (tools/pytest_timeout_lite).
# Service tests (marker 'service': real HTTP servers, SIGKILL drills)
# run separately via test-service to keep this loop fast.
tier1:
	PYTHONPATH=src:. $(PYTHON) -m pytest -x -q -m "not service" \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT)

# End-to-end smoke of the fault-injection lifecycle on a tiny fault
# plan: the detect CLI across all three policies, then the detection
# experiment benchmark (ATA cache-bug A/B + serial/parallel identity).
smoke:
	PYTHONPATH=src $(PYTHON) -m repro detect --horizon 1.5 --cylinders 30
	PYTHONPATH=src:. $(PYTHON) -m pytest -q benchmarks/test_fig_detection.py \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT) \
		-p no:cacheprovider --override-ini testpaths=benchmarks

# Telemetry overhead gate: the NullSink must stay within 5% of the
# bare kernel on the 1M-event churn workload (writes BENCH_PR3.json),
# plus a scaled-down pytest pass under the lite-timeout plugin.
bench-telemetry:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_telemetry.py
	PYTHONPATH=src:. $(PYTHON) -m pytest -q benchmarks/test_perf_telemetry.py \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT) \
		-p no:cacheprovider --override-ini testpaths=benchmarks

# Zero-copy replay gate: the batched/shared-memory replay path must
# beat the legacy per-record/pickling path by 2x (Fig. 7 grid) and 4x
# (8-task detection sweep) with bit-identical results (writes
# BENCH_PR4.json), plus a scaled-down pytest pass.
bench-replay:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_replay.py
	PYTHONPATH=src:. $(PYTHON) -m pytest -q benchmarks/test_perf_replay.py \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT) \
		-p no:cacheprovider --override-ini testpaths=benchmarks

# Invariant-checker overhead gate: the live InvariantSink must stay
# within 10% of the bare kernel on the 1M-event churn workload (writes
# BENCH_PR5.json), plus a scaled-down pytest pass.
bench-verify:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_verify.py
	PYTHONPATH=src:. $(PYTHON) -m pytest -q benchmarks/test_perf_verify.py \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT) \
		-p no:cacheprovider --override-ini testpaths=benchmarks

# Vector-kernel gate: the numpy batch-advance backend must beat the
# reference engine by 4x on the 1M-event churn workload with
# bit-identical results across the Fig. 7 grid, repro detect and all
# three scenario families (writes BENCH_PR6.json).
bench-kernel:
	PYTHONPATH=src $(PYTHON) benchmarks/run_perf.py
	PYTHONPATH=src:. $(PYTHON) -m pytest -q benchmarks/test_perf_kernel_vector.py \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT) \
		-p no:cacheprovider --override-ini testpaths=benchmarks

# Correctness-harness fuzz: 200 seeded configurations through the
# runtime invariant checker and every differential-oracle axis, plus
# the planted-bug self-test.  Fixed seed, so a CI failure reproduces
# locally with the printed snippet alone.
verify-fuzz:
	PYTHONPATH=src $(PYTHON) -m repro verify --self-test --seed 0 --configs 200

# Fleet-campaign fault-tolerance smoke: baseline + journal audit,
# SIGKILL the driver mid-campaign and resume bit-identically, SIGKILL
# a shard worker (retried, identical), and wedge a worker (deadline,
# graceful degradation with explicit completeness).  Deterministic.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) tools/fleet_smoke.py

# Orchestration-service contract + concurrency + streaming tests
# (everything carrying the 'service' pytest marker).
test-service:
	PYTHONPATH=src:. $(PYTHON) -m pytest -q -m service \
		-p tools.pytest_timeout_lite --lite-timeout $(TIMEOUT)

# Orchestration-service smoke: contract against a real 'repro serve'
# subprocess, duplicate-submit dedup, SIGKILL-and-restart resume
# (bit-identical metrics), cooperative cancel, and byte-identical
# NDJSON event streaming.  Deterministic.
serve-smoke:
	PYTHONPATH=src $(PYTHON) tools/serve_smoke.py

# Fleet-campaign throughput + resume overhead (writes BENCH_PR7.json).
bench-fleet:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_fleet.py

# Observability gate (writes BENCH_PR8.json): campaign monitoring must
# stay within 5% of a bare run with bit-identical results, and the
# final status.json / Perfetto trace must pass the schema checks.
bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_obs.py

# Corpus-scale tuning gate (writes BENCH_PR9.json): the successive-
# halving search must spend >=5x fewer interval-evaluations than the
# exhaustive grid with throughput within 1% on every seeded catalog
# workload, and streaming a >=1GB on-disk corpus must keep RSS bounded
# by the 25MiB chunk size.
bench-corpus:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_corpus.py

# Full experiment benchmarks (slow; regenerates the paper's figures).
bench:
	PYTHONPATH=src $(PYTHON) -m pytest -q benchmarks --override-ini testpaths=benchmarks

check: tier1 smoke
