"""Zoned disk geometry: mapping LBNs to physical locations.

Modern drives use *zoned bit recording*: outer cylinders pack more
sectors per track than inner ones, so the media transfer rate falls
from the outside in.  :class:`DiskGeometry` models the disk as a list
of :class:`Zone`\\ s, each a contiguous run of cylinders with a constant
sectors-per-track count, and provides the LBN → (cylinder, head,
sector) mapping plus angular positions used by the rotation model.

LBN layout is the conventional one: cylinder-major, then head (surface),
then sector along the track, zones ordered from the outer edge inward.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.disk.commands import SECTOR_SIZE


@dataclass(frozen=True)
class Zone:
    """A run of ``cylinders`` cylinders with uniform ``sectors_per_track``."""

    cylinders: int
    sectors_per_track: int

    def __post_init__(self) -> None:
        if self.cylinders <= 0:
            raise ValueError(f"zone needs >= 1 cylinder: {self.cylinders}")
        if self.sectors_per_track <= 0:
            raise ValueError(
                f"zone needs >= 1 sector per track: {self.sectors_per_track}"
            )


@dataclass(frozen=True)
class Location:
    """Physical coordinates of an LBN."""

    cylinder: int
    head: int
    sector: int
    sectors_per_track: int
    #: Index of the track among all tracks, outermost first (used for skew).
    track_index: int


class DiskGeometry:
    """LBN-to-physical mapping for a zoned disk.

    Parameters
    ----------
    heads:
        Number of recording surfaces.
    zones:
        Zones ordered from the outer edge inward.
    track_skew:
        Fraction of a revolution by which each successive track's first
        sector is offset, hiding head/cylinder-switch time on sequential
        transfers.
    """

    def __init__(
        self,
        heads: int,
        zones: Sequence[Zone],
        track_skew: float = 0.1,
    ) -> None:
        if heads <= 0:
            raise ValueError(f"heads must be positive: {heads}")
        if not zones:
            raise ValueError("at least one zone is required")
        if not 0.0 <= track_skew < 1.0:
            raise ValueError(f"track_skew must be in [0, 1): {track_skew}")
        self.heads = heads
        self.zones: List[Zone] = list(zones)
        self.track_skew = track_skew

        # Precompute per-zone cumulative first-LBN / first-cylinder / first-track.
        self._zone_first_lbn: List[int] = []
        self._zone_first_cyl: List[int] = []
        self._zone_first_track: List[int] = []
        lbn = cyl = track = 0
        for zone in self.zones:
            self._zone_first_lbn.append(lbn)
            self._zone_first_cyl.append(cyl)
            self._zone_first_track.append(track)
            lbn += zone.cylinders * heads * zone.sectors_per_track
            cyl += zone.cylinders
            track += zone.cylinders * heads
        self._total_sectors = lbn
        self._total_cylinders = cyl
        self._total_tracks = track

        # Array mirrors of the per-zone tables for the batch path.
        self._zfl = np.asarray(self._zone_first_lbn, dtype=np.int64)
        self._zfc = np.asarray(self._zone_first_cyl, dtype=np.int64)
        self._zft = np.asarray(self._zone_first_track, dtype=np.int64)
        self._zspt = np.asarray(
            [zone.sectors_per_track for zone in self.zones], dtype=np.int64
        )

    # -- sizes -------------------------------------------------------------
    @property
    def total_sectors(self) -> int:
        return self._total_sectors

    @property
    def capacity_bytes(self) -> int:
        return self._total_sectors * SECTOR_SIZE

    @property
    def cylinders(self) -> int:
        return self._total_cylinders

    @property
    def tracks(self) -> int:
        return self._total_tracks

    # -- mapping -----------------------------------------------------------
    def zone_of_lbn(self, lbn: int) -> int:
        """Index of the zone containing ``lbn``."""
        self._check_lbn(lbn)
        return bisect.bisect_right(self._zone_first_lbn, lbn) - 1

    def zone_of_cylinder(self, cylinder: int) -> int:
        """Index of the zone containing ``cylinder``."""
        if not 0 <= cylinder < self._total_cylinders:
            raise ValueError(f"cylinder out of range: {cylinder}")
        return bisect.bisect_right(self._zone_first_cyl, cylinder) - 1

    def locate(self, lbn: int) -> Location:
        """Map ``lbn`` to its physical :class:`Location`."""
        zi = self.zone_of_lbn(lbn)
        zone = self.zones[zi]
        offset = lbn - self._zone_first_lbn[zi]
        spt = zone.sectors_per_track
        sectors_per_cyl = spt * self.heads
        cyl_in_zone, rest = divmod(offset, sectors_per_cyl)
        head, sector = divmod(rest, spt)
        cylinder = self._zone_first_cyl[zi] + cyl_in_zone
        track_index = (
            self._zone_first_track[zi] + cyl_in_zone * self.heads + head
        )
        return Location(
            cylinder=cylinder,
            head=head,
            sector=sector,
            sectors_per_track=spt,
            track_index=track_index,
        )

    def angle_of(self, location: Location) -> float:
        """Angular position (fraction of a revolution) of a sector's start.

        Includes the per-track skew, so sequential transfers that cross a
        track boundary land just behind the head after a head switch.
        """
        angle = (
            location.sector / location.sectors_per_track
            + location.track_index * self.track_skew
        )
        return angle % 1.0

    def locate_batch(
        self, lbns
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`locate`: map an LBN array to physical coords.

        Returns the struct-of-arrays form of :class:`Location` —
        ``(cylinder, head, sector, sectors_per_track, track_index)``
        int64 arrays.  All arithmetic is exact integer math mirroring
        the scalar ``divmod`` chain, so every lane equals the scalar
        :meth:`locate` of its LBN.
        """
        lbn = np.asarray(lbns, dtype=np.int64)
        if lbn.size and (
            int(lbn.min()) < 0 or int(lbn.max()) >= self._total_sectors
        ):
            raise ValueError(
                f"LBN out of range [0, {self._total_sectors}) in batch"
            )
        zi = np.searchsorted(self._zfl, lbn, side="right") - 1
        spt = self._zspt[zi]
        offset = lbn - self._zfl[zi]
        sectors_per_cyl = spt * self.heads
        cyl_in_zone = offset // sectors_per_cyl
        rest = offset - cyl_in_zone * sectors_per_cyl
        head = rest // spt
        sector = rest - head * spt
        cylinder = self._zfc[zi] + cyl_in_zone
        track_index = self._zft[zi] + cyl_in_zone * self.heads + head
        return cylinder, head, sector, spt, track_index

    def angles_of_batch(self, sectors, spts, track_indices) -> np.ndarray:
        """Vectorised :meth:`angle_of` over :meth:`locate_batch` columns.

        Same ``sector/spt + track*skew (mod 1)`` float64 expression as
        the scalar path, element-wise bit-identical.
        """
        angle = (
            np.asarray(sectors) / np.asarray(spts)
            + np.asarray(track_indices) * self.track_skew
        )
        return angle % 1.0

    def sectors_per_track_at(self, lbn: int) -> int:
        """Sectors per track in the zone containing ``lbn``."""
        return self.zones[self.zone_of_lbn(lbn)].sectors_per_track

    def _check_lbn(self, lbn: int) -> None:
        if not 0 <= lbn < self._total_sectors:
            raise ValueError(
                f"LBN {lbn} out of range [0, {self._total_sectors})"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def uniform(
        cls, heads: int, cylinders: int, sectors_per_track: int, track_skew: float = 0.1
    ) -> "DiskGeometry":
        """A single-zone geometry (useful for tests and analysis)."""
        return cls(heads, [Zone(cylinders, sectors_per_track)], track_skew)

    @classmethod
    def zoned(
        cls,
        heads: int,
        cylinders: int,
        outer_spt: int,
        inner_spt: int,
        num_zones: int = 8,
        track_skew: float = 0.1,
    ) -> "DiskGeometry":
        """A geometry with ``num_zones`` zones interpolating outer→inner SPT."""
        if num_zones <= 0:
            raise ValueError(f"num_zones must be positive: {num_zones}")
        if cylinders < num_zones:
            raise ValueError("need at least one cylinder per zone")
        zones = []
        base, extra = divmod(cylinders, num_zones)
        for i in range(num_zones):
            frac = i / (num_zones - 1) if num_zones > 1 else 0.0
            spt = round(outer_spt + (inner_spt - outer_spt) * frac)
            zones.append(Zone(base + (1 if i < extra else 0), spt))
        return cls(heads, zones, track_skew)

    def __repr__(self) -> str:
        gib = self.capacity_bytes / 1e9
        return (
            f"<DiskGeometry {gib:.1f} GB, {self.heads} heads, "
            f"{self.cylinders} cylinders, {len(self.zones)} zones>"
        )
