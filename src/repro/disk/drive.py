"""The drive command-service model.

:class:`Drive` is a *passive* timing model: callers (the block device /
scheduler layer) serialise commands and call :meth:`Drive.service`,
which computes when the command finishes and updates drive state (head
position, cache contents).  The platter angle is derived from absolute
simulation time, so positioning costs follow automatically — including
the paper's central mechanical effect: after a ``VERIFY`` completes,
command-completion propagation lets the next sequential sector slip
past the head, costing a full revolution on the next back-to-back
sequential ``VERIFY`` (Section IV-A).

Cache semantics per Section III-A:

* ``READ`` consults and populates the cache (with read-ahead);
* ``VERIFY`` on a SCSI/SAS drive always reads the medium, never touching
  the cache (the whole point of the command);
* ``VERIFY`` on an ATA drive with the firmware bug behaves like a read,
  hitting and polluting the cache (Fig. 1);
* ``WRITE`` goes to the medium (write cache off, the safe configuration
  for the paper's experiments) and invalidates overlapping cache data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.disk.cache import DiskCache
from repro.disk.commands import (
    SECTOR_SIZE,
    CommandStatus,
    DiskCommand,
    Interface,
    Opcode,
)
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import RotationModel, SeekModel
from repro.disk.models import DriveSpec

if TYPE_CHECKING:  # imported lazily to keep disk <- faults acyclic
    from repro.faults.state import MediaFaults


@dataclass(frozen=True)
class ServiceBreakdown:
    """Timing decomposition (and outcome) of one serviced command."""

    start: float
    finish: float
    overhead: float
    seek: float
    rotation: float
    transfer: float
    cache_hit: bool
    #: Completion status; ``MEDIUM_ERROR`` when the command touched an
    #: unreadable sector on the medium.
    status: CommandStatus = CommandStatus.GOOD
    #: First bad LBN in the range for ``MEDIUM_ERROR`` results (the
    #: sense-data LBA a real drive reports).
    error_lbn: Optional[int] = None

    @property
    def total(self) -> float:
        return self.finish - self.start

    @property
    def ok(self) -> bool:
        return self.status is CommandStatus.GOOD


class Drive:
    """A single disk drive with mechanical and cache state.

    Parameters
    ----------
    spec:
        Drive parameters (see :mod:`repro.disk.models`).
    cache_enabled:
        Models the drive's read-cache toggle (``hdparm -W`` analogue for
        reads); several paper experiments run with the cache disabled.

    Notes
    -----
    The drive is not thread/process aware: it trusts the caller to
    issue commands one at a time with non-decreasing ``now`` values.
    """

    def __init__(
        self,
        spec: DriveSpec,
        cache_enabled: bool = True,
        faults: Optional["MediaFaults"] = None,
        telemetry=None,
    ) -> None:
        self.spec = spec
        self.geometry = DiskGeometry.zoned(
            heads=spec.heads,
            cylinders=spec.cylinders,
            outer_spt=spec.outer_spt,
            inner_spt=spec.inner_spt,
            num_zones=spec.num_zones,
            track_skew=spec.track_skew,
        )
        self.seek_model = SeekModel.from_specs(
            spec.track_to_track_seek,
            spec.average_seek,
            spec.full_stroke_seek,
            spec.cylinders,
        )
        self.rotation = RotationModel(spec.rpm)
        self.cache = DiskCache(
            num_segments=spec.cache_segments,
            segment_sectors=spec.cache_segment_sectors,
            read_ahead_sectors=spec.read_ahead_sectors,
        )
        self.cache_enabled = cache_enabled
        #: Latent-sector-error state; ``None`` means a fault-free drive
        #: (the fault checks then cost one attribute test per command).
        self.faults = faults
        self.head_cylinder = 0
        self._last_issue_time = float("-inf")
        self.commands_serviced = 0
        #: Optional telemetry sink; meters every serviced command.  A
        #: :class:`~repro.sched.device.BlockDevice` installs its
        #: simulation's sink here automatically; standalone users (the
        #: service-model measurements) may pass one explicitly.
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    # -- properties ----------------------------------------------------------
    @property
    def total_sectors(self) -> int:
        return self.geometry.total_sectors

    @property
    def capacity_bytes(self) -> int:
        return self.geometry.capacity_bytes

    def media_rate(self, lbn: int) -> float:
        """Sustained media transfer rate (bytes/second) at ``lbn``'s zone."""
        spt = self.geometry.sectors_per_track_at(lbn)
        return spt * SECTOR_SIZE / self.rotation.period

    def set_cache_enabled(self, enabled: bool) -> None:
        """Toggle the read cache, dropping contents when disabling."""
        self.cache_enabled = enabled
        if not enabled:
            self.cache.clear()

    def install_faults(self, faults: "MediaFaults") -> None:
        """Attach latent-sector-error state to this drive."""
        if faults.plan.total_sectors != self.total_sectors:
            raise ValueError(
                f"fault plan covers {faults.plan.total_sectors} sectors but "
                f"the drive has {self.total_sectors}"
            )
        self.faults = faults

    def reallocate(self, lbn: int, now: float) -> bool:
        """Remap ``lbn`` to the spare pool (``REASSIGN BLOCKS``).

        Returns ``False`` when the spare pool is exhausted.  Any cached
        copy of the sector is dropped so later commands see the spare.
        """
        if self.faults is None:
            raise RuntimeError("drive has no fault state installed")
        self.cache.invalidate(lbn, 1)
        return self.faults.reallocate(lbn, now)

    # -- service --------------------------------------------------------------
    def service(self, command: DiskCommand, now: float) -> ServiceBreakdown:
        """Service ``command`` starting at time ``now``; returns the timing.

        ``now`` must not precede the previous command's issue time — the
        caller owns serialisation.
        """
        if command.end_lbn > self.total_sectors:
            raise ValueError(
                f"command {command} exceeds disk size {self.total_sectors}"
            )
        if now < self._last_issue_time:
            raise ValueError(
                f"commands must be issued in time order: {now} < "
                f"{self._last_issue_time}"
            )
        self._last_issue_time = now
        self.commands_serviced += 1

        breakdown = None
        if self._uses_cache_path(command):
            breakdown = self._try_cache(command, now)
        if breakdown is None:
            breakdown = self._media_access(command, now)
        if self.telemetry is not None:
            self.telemetry.drive_serviced(command, breakdown)
        return breakdown

    # -- internals -------------------------------------------------------------
    def _uses_cache_path(self, command: DiskCommand) -> bool:
        """Whether this command may be satisfied from / populate the cache."""
        if not self.cache_enabled:
            return False
        if command.opcode is Opcode.READ:
            return True
        if command.opcode is Opcode.VERIFY:
            # The ATA firmware bug: VERIFY behaves like a read.
            return (
                self.spec.interface is Interface.ATA
                and self.spec.ata_verify_cache_bug
            )
        return False

    def _try_cache(
        self, command: DiskCommand, now: float
    ) -> Optional[ServiceBreakdown]:
        """Attempt buffer service; ``None`` on miss."""
        t = now + self.spec.command_overhead
        ready = self.cache.lookup(command.lbn, command.sectors, t)
        if ready is None:
            return None
        # Wait for the read-ahead fill front if the tail of the range is
        # still streaming in, then burst over the interface.
        t = max(t, ready)
        transfer = command.bytes / self.spec.interface_rate
        finish = t + transfer + self.spec.completion_overhead
        if self.faults is not None:
            # Buffer service never touches the medium, so a sector that
            # went bad after it was cached is silently reported good —
            # for ATA VERIFY this is the paper's Fig. 1 firmware bug
            # losing a real latent error.
            for bad in self.faults.bad_in_range(
                command.lbn, command.sectors, now
            ):
                self.faults.log.record_cache_masked(
                    finish, bad, command.opcode.value
                )
        return ServiceBreakdown(
            start=now,
            finish=finish,
            overhead=self.spec.command_overhead + self.spec.completion_overhead,
            seek=0.0,
            rotation=max(0.0, ready - (now + self.spec.command_overhead)),
            transfer=transfer,
            cache_hit=True,
        )

    def _media_access(self, command: DiskCommand, now: float) -> ServiceBreakdown:
        """Mechanical access: seek + rotate + transfer track by track."""
        t = now + self.spec.command_overhead
        seek_total = rotation_total = transfer_total = 0.0

        lbn = command.lbn
        remaining = command.sectors
        current_track: Optional[int] = None
        while remaining > 0:
            loc = self.geometry.locate(lbn)
            # Positioning: initial seek, or a switch between tracks.
            if current_track is None:
                seek_time = self.seek_model.time(
                    abs(loc.cylinder - self.head_cylinder)
                )
            elif loc.cylinder != self.head_cylinder:
                seek_time = max(
                    self.seek_model.time(abs(loc.cylinder - self.head_cylinder)),
                    self.spec.head_switch_time,
                )
            else:
                seek_time = self.spec.head_switch_time
            t += seek_time
            seek_total += seek_time
            self.head_cylinder = loc.cylinder
            current_track = loc.track_index

            # Rotate to the first sector of this track's chunk.
            latency = self.rotation.latency_to(self.geometry.angle_of(loc), t)
            t += latency
            rotation_total += latency

            # Sweep the contiguous sectors available on this track.
            chunk = min(remaining, loc.sectors_per_track - loc.sector)
            sweep = self.rotation.transfer_time(chunk, loc.sectors_per_track)
            t += sweep
            transfer_total += sweep
            lbn += chunk
            remaining -= chunk

        media_end = t

        status = CommandStatus.GOOD
        error_lbn: Optional[int] = None
        if self.faults is not None:
            error_lbn = self.faults.first_bad(command.lbn, command.sectors, now)
            if error_lbn is not None:
                # The head reached an unreadable sector: the drive burns
                # its retry/ECC budget, then fails the whole command with
                # a MEDIUM ERROR naming the first bad LBA.
                status = CommandStatus.MEDIUM_ERROR
                media_end += self.spec.media_error_retry_time
        finish = media_end + self.spec.completion_overhead

        if status is CommandStatus.MEDIUM_ERROR:
            # Nothing past the bad sector was read; keep the buffer free
            # of any stale copy of the failed range.
            self.cache.invalidate(command.lbn, command.sectors)
        elif self._uses_cache_path(command):
            zone_rate = self.geometry.sectors_per_track_at(
                command.lbn
            ) / self.rotation.period
            limit = None
            if self.faults is not None:
                # Read-ahead stops at the first unreadable sector: the
                # firmware cannot stream data it cannot read, so the
                # cache never covers a sector that was already bad when
                # the segment filled.
                end = command.end_lbn + self.cache.read_ahead_sectors
                limit = self.faults.limit_end(command.end_lbn, end, now)
            self.cache.insert(
                command.lbn,
                command.sectors,
                media_end,
                fill_rate=zone_rate,
                read_ahead=True,
                limit=limit,
            )
        elif command.opcode is Opcode.WRITE:
            self.cache.invalidate(command.lbn, command.sectors)

        return ServiceBreakdown(
            start=now,
            finish=finish,
            overhead=self.spec.command_overhead + self.spec.completion_overhead,
            seek=seek_total,
            rotation=rotation_total,
            transfer=transfer_total,
            cache_hit=False,
            status=status,
            error_lbn=error_lbn,
        )

    def batched_media_times(
        self, lbns, sectors, nows, head_cylinders
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised media-access timing for independent command lanes.

        Each lane ``i`` is one command ``(lbns[i], sectors[i])`` issued
        at ``nows[i]`` with the head parked at ``head_cylinders[i]``;
        lanes are independent (separate drives, or well-separated
        commands on one drive).  Returns ``(totals, finishes,
        head_cylinders)`` float64/float64/int64 arrays, where each lane
        is bit-identical to the scalar
        ``service(...).total`` / ``.finish`` / resulting head position:
        the loop walks tracks with the same seek/latency/sweep
        expression trees as :meth:`_media_access`, just masked across
        lanes.

        The method is *pure* — no drive state is touched — and only
        models the plain mechanical path: a drive with fault state or
        an enabled cache has per-command side effects (error retries,
        cache fills) the batch cannot reproduce, so those configurations
        raise :class:`~repro.sim.vector.UnsupportedKernelFeature`
        rather than silently diverging.
        """
        from repro.sim.vector import UnsupportedKernelFeature

        if self.faults is not None:
            raise UnsupportedKernelFeature(
                "batched media timing cannot model per-command fault "
                "retries; use the scalar service() path on drives with "
                "fault state installed"
            )
        if self.cache_enabled:
            raise UnsupportedKernelFeature(
                "batched media timing cannot model cache fills; disable "
                "the cache or use the scalar service() path"
            )
        nows = np.asarray(nows, dtype=np.float64)
        lbn = np.array(lbns, dtype=np.int64)
        remaining = np.array(sectors, dtype=np.int64)
        head = np.array(head_cylinders, dtype=np.int64)
        if np.any(lbn + remaining > self.total_sectors):
            raise ValueError(
                f"batched command exceeds disk size {self.total_sectors}"
            )
        t = nows + self.spec.command_overhead
        hs = self.spec.head_switch_time
        first = True
        while True:
            active = remaining > 0
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            cyl, _, sector, spt, track = self.geometry.locate_batch(lbn[idx])
            seeks = self.seek_model.times(np.abs(cyl - head[idx]))
            if not first:
                seeks = np.where(
                    cyl == head[idx], hs, np.maximum(seeks, hs)
                )
            ta = t[idx] + seeks
            head[idx] = cyl
            angles = self.geometry.angles_of_batch(sector, spt, track)
            ta = ta + self.rotation.latencies_to(angles, ta)
            chunk = np.minimum(remaining[idx], spt - sector)
            t[idx] = ta + self.rotation.transfer_times(chunk, spt)
            lbn[idx] += chunk
            remaining[idx] -= chunk
            first = False
        finishes = t + self.spec.completion_overhead
        return finishes - nows, finishes, head

    def __repr__(self) -> str:
        return f"<Drive {self.spec.name!r} head@{self.head_cylinder}>"
