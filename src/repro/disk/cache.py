"""On-disk segmented read cache with streaming read-ahead.

Real drive caches are organised as a handful of *segments*, each
holding one contiguous run of sectors, replaced LRU; after servicing a
read the drive keeps reading ahead into the segment at media speed.
We model exactly that: a :class:`Segment` records its LBN range, the
time its initial range became available and the *fill rate* at which
the read-ahead tail streams in, so a lookup at time ``t`` can tell not
just whether data is cached but *when* it is (or will be) fully
available — sequential readers ride just behind the fill front.

``VERIFY`` on a correct (SCSI) drive never consults or populates this
cache; the ATA ``VERIFY`` bug from Section III-A of the paper is
modelled in :class:`~repro.disk.drive.Drive` by routing ATA verifies
through the same path as reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Segment:
    """One contiguous cached run ``[start, end)``.

    ``ready_from`` is when sector ``filled_to_start`` .. sectors below
    ``filled_boundary`` were present; sectors at or above
    ``filled_boundary`` become available at ``fill_rate`` sectors/second
    starting from ``ready_from``.
    """

    start: int
    end: int
    filled_boundary: int
    ready_from: float
    fill_rate: float
    last_used: float = field(default=0.0)

    def covers(self, lbn: int, sectors: int) -> bool:
        return self.start <= lbn and lbn + sectors <= self.end

    def available_at(self, lbn: int, sectors: int) -> float:
        """Time the whole range is present in the segment."""
        last = lbn + sectors
        if last <= self.filled_boundary:
            return self.ready_from
        if self.fill_rate <= 0:
            return float("inf")
        return self.ready_from + (last - self.filled_boundary) / self.fill_rate


class DiskCache:
    """A fixed number of LRU-replaced streaming segments.

    Parameters
    ----------
    num_segments:
        How many independent sequential streams the cache can track.
    segment_sectors:
        Capacity of one segment, in sectors.
    read_ahead_sectors:
        How far past the requested range the drive streams ahead.
    """

    def __init__(
        self,
        num_segments: int = 16,
        segment_sectors: int = 2048,
        read_ahead_sectors: int = 512,
    ) -> None:
        if num_segments <= 0:
            raise ValueError(f"num_segments must be positive: {num_segments}")
        if segment_sectors <= 0:
            raise ValueError(f"segment_sectors must be positive: {segment_sectors}")
        if read_ahead_sectors < 0:
            raise ValueError(f"read_ahead_sectors negative: {read_ahead_sectors}")
        self.num_segments = num_segments
        self.segment_sectors = segment_sectors
        self.read_ahead_sectors = read_ahead_sectors
        self._segments: List[Segment] = []
        self.hits = 0
        self.misses = 0
        #: LRU segments discarded to make room (capacity pressure, not
        #: write invalidations) — surfaced in the ``repro trace`` table.
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> List[Segment]:
        """Snapshot of live segments (most recently used last)."""
        return list(self._segments)

    def clear(self) -> None:
        """Drop all cached data (models a cache-disable or reset)."""
        self._segments.clear()

    def lookup(self, lbn: int, sectors: int, now: float) -> Optional[float]:
        """Return when ``[lbn, lbn+sectors)`` is fully cached, else ``None``.

        A hit may be in the future (the read-ahead front has not reached
        the end of the range yet); the caller stalls until then, which
        is exactly how a drive streams a sequential read from its
        buffer.  Counts hit/miss statistics and refreshes LRU order.
        """
        for index in range(len(self._segments) - 1, -1, -1):
            segment = self._segments[index]
            if segment.covers(lbn, sectors):
                ready = segment.available_at(lbn, sectors)
                segment.last_used = now
                # Continuous read-ahead: while a sequential stream keeps
                # consuming a segment, the firmware keeps pre-reading, so
                # the window slides forward instead of ending at a fixed
                # point.  Without this, every ``read_ahead_sectors`` the
                # stream would stall on a spurious miss.
                if segment.end - (lbn + sectors) < self.read_ahead_sectors:
                    segment.end = lbn + sectors + self.read_ahead_sectors
                    self._trim(segment)
                self._segments.append(self._segments.pop(index))
                self.hits += 1
                return ready
        self.misses += 1
        return None

    def insert(
        self,
        lbn: int,
        sectors: int,
        now: float,
        fill_rate: float,
        read_ahead: bool = True,
        limit: Optional[int] = None,
    ) -> Segment:
        """Record a media read of ``[lbn, lbn+sectors)`` finishing at ``now``.

        If the run extends the most recent segment contiguously, that
        segment grows (modelling a continuing sequential stream);
        otherwise a new segment is allocated, evicting the LRU one when
        the cache is full.  ``fill_rate`` (sectors/second) is the media
        rate at which the optional read-ahead tail streams in.
        ``limit`` caps how far the read-ahead tail may extend (the
        drive stops streaming at an unreadable sector); it never clips
        the explicitly-read range itself.
        """
        ahead = self.read_ahead_sectors if read_ahead else 0
        end = lbn + sectors + ahead
        if limit is not None:
            end = max(lbn + sectors, min(end, limit))
        if self._segments:
            tail = self._segments[-1]
            # Only a read overlapping data actually fetched from media
            # (at or below the filled boundary) continues the stream; a
            # read landing in the speculative read-ahead tail starts a
            # segment of its own, so every segment stays justified by a
            # single read-plus-read-ahead window.
            if tail.start <= lbn <= tail.filled_boundary and end >= tail.end:
                tail.end = end
                tail.filled_boundary = lbn + sectors
                tail.ready_from = now
                tail.fill_rate = fill_rate
                tail.last_used = now
                self._trim(tail)
                return tail
        segment = Segment(
            start=lbn,
            end=end,
            filled_boundary=lbn + sectors,
            ready_from=now,
            fill_rate=fill_rate,
            last_used=now,
        )
        self._segments.append(segment)
        if len(self._segments) > self.num_segments:
            self._segments.pop(0)
            self.evictions += 1
        self._trim(segment)
        return segment

    def invalidate(self, lbn: int, sectors: int) -> None:
        """Drop any segment overlapping ``[lbn, lbn+sectors)``.

        Used on writes so the cache never serves stale data.
        Overlapping segments are dropped whole — real firmware splits
        them, but whole-drop only costs extra misses, never wrong data.
        """
        end = lbn + sectors
        self._segments = [
            s for s in self._segments if s.end <= lbn or s.start >= end
        ]

    def _trim(self, segment: Segment) -> None:
        """Enforce the per-segment capacity by discarding the oldest head."""
        if segment.end - segment.start > self.segment_sectors:
            segment.start = segment.end - self.segment_sectors
            segment.filled_boundary = max(segment.filled_boundary, segment.start)
