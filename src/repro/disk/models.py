"""Parameter presets for the drives used in the paper.

The paper measures five drives:

* Hitachi Ultrastar 15K450 300 GB (SAS, 15 000 rpm) — Figs. 1, 3–6
* Fujitsu MAX3073RC 73 GB (SAS, 15 000 rpm) — Figs. 4, 5
* Fujitsu MAP3367NP 36 GB (SCSI, 10 000 rpm) — Fig. 4
* WD Caviar (SATA, 7 200 rpm) — Fig. 1 (ATA VERIFY cache bug)
* Hitachi Deskstar (SATA, 7 200 rpm) — Fig. 1 (ATA VERIFY cache bug)

Geometry figures (heads, cylinder counts, sectors per track) are not
published at this granularity; the presets use plausible values chosen
so that capacity, rotation period, media transfer rate and seek specs
match the public datasheets.  The *paper-relevant* behaviours (rotation
period, flat VERIFY service ≤64 KB, ATA cache bug) depend only on those
aggregate figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.disk.commands import Interface


@dataclass(frozen=True)
class DriveSpec:
    """Complete parameter set for building a :class:`~repro.disk.drive.Drive`."""

    name: str
    interface: Interface
    rpm: float
    heads: int
    cylinders: int
    outer_spt: int
    inner_spt: int
    num_zones: int
    track_to_track_seek: float
    average_seek: float
    full_stroke_seek: float
    head_switch_time: float
    command_overhead: float
    completion_overhead: float
    interface_rate: float  # bytes/second, burst from the drive buffer
    track_skew: float = 0.15
    cache_segments: int = 16
    cache_segment_sectors: int = 8192  # 4 MB
    read_ahead_sectors: int = 1024  # 512 KB
    #: The Section III-A bug: VERIFY served from the on-disk cache.
    ata_verify_cache_bug: bool = False
    #: Extra service time a command spends in retry/ECC effort before
    #: surrendering with a MEDIUM ERROR on an unreadable sector.
    media_error_retry_time: float = 0.05

    @property
    def rotation_period(self) -> float:
        return 60.0 / self.rpm

    @property
    def capacity_bytes(self) -> int:
        mean_spt = (self.outer_spt + self.inner_spt) / 2
        return int(self.cylinders * self.heads * mean_spt * 512)

    def with_overrides(self, **kwargs) -> "DriveSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def hitachi_ultrastar_15k450() -> DriveSpec:
    """Hitachi Ultrastar 15K450, 300 GB SAS, 15 000 rpm.

    The paper's main experimental drive (Figs. 1, 3, 4, 5, 6).
    """
    return DriveSpec(
        name="Hitachi Ultrastar 15K450 300GB",
        interface=Interface.SCSI,
        rpm=15000,
        heads=6,
        cylinders=101_700,
        outer_spt=1150,
        inner_spt=770,
        num_zones=8,
        track_to_track_seek=0.2e-3,
        average_seek=3.4e-3,
        full_stroke_seek=6.5e-3,
        head_switch_time=0.5e-3,
        command_overhead=0.12e-3,
        completion_overhead=0.15e-3,
        interface_rate=300e6,
        ata_verify_cache_bug=False,
    )


def fujitsu_max3073rc() -> DriveSpec:
    """Fujitsu MAX3073RC, 73 GB SAS, 15 000 rpm (Figs. 3, 4, 5)."""
    return DriveSpec(
        name="Fujitsu MAX3073RC 73GB",
        interface=Interface.SCSI,
        rpm=15000,
        heads=4,
        cylinders=47_850,
        outer_spt=900,
        inner_spt=600,
        num_zones=8,
        track_to_track_seek=0.2e-3,
        average_seek=3.3e-3,
        full_stroke_seek=6.0e-3,
        head_switch_time=0.5e-3,
        command_overhead=0.12e-3,
        completion_overhead=0.15e-3,
        interface_rate=300e6,
        ata_verify_cache_bug=False,
    )


def fujitsu_map3367np() -> DriveSpec:
    """Fujitsu MAP3367NP, 36 GB parallel SCSI, 10 000 rpm (Fig. 4)."""
    return DriveSpec(
        name="Fujitsu MAP3367NP 36GB",
        interface=Interface.SCSI,
        rpm=10000,
        heads=4,
        cylinders=28_670,
        outer_spt=750,
        inner_spt=500,
        num_zones=8,
        track_to_track_seek=0.3e-3,
        average_seek=4.5e-3,
        full_stroke_seek=10.0e-3,
        head_switch_time=0.7e-3,
        command_overhead=0.15e-3,
        completion_overhead=0.2e-3,
        interface_rate=320e6,
        ata_verify_cache_bug=False,
    )


def wd_caviar_blue() -> DriveSpec:
    """WD Caviar, 320 GB SATA, 7 200 rpm — exhibits the VERIFY cache bug."""
    return DriveSpec(
        name="WD Caviar 320GB",
        interface=Interface.ATA,
        rpm=7200,
        heads=4,
        cylinders=120_000,
        outer_spt=1560,
        inner_spt=1040,
        num_zones=8,
        track_to_track_seek=0.8e-3,
        average_seek=8.9e-3,
        full_stroke_seek=21.0e-3,
        head_switch_time=0.8e-3,
        command_overhead=0.12e-3,
        completion_overhead=0.15e-3,
        interface_rate=300e6,
        ata_verify_cache_bug=True,
    )


def hitachi_deskstar_7k1000() -> DriveSpec:
    """Hitachi Deskstar, 1 TB SATA, 7 200 rpm — exhibits the VERIFY cache bug."""
    return DriveSpec(
        name="Hitachi Deskstar 1TB",
        interface=Interface.ATA,
        rpm=7200,
        heads=10,
        cylinders=139_500,
        outer_spt=1680,
        inner_spt=1120,
        num_zones=8,
        track_to_track_seek=0.8e-3,
        average_seek=8.5e-3,
        full_stroke_seek=20.0e-3,
        head_switch_time=0.8e-3,
        command_overhead=0.12e-3,
        completion_overhead=0.15e-3,
        interface_rate=300e6,
        ata_verify_cache_bug=True,
    )


#: All presets keyed by a short identifier.
PRESETS = {
    "ultrastar": hitachi_ultrastar_15k450,
    "max3073rc": fujitsu_max3073rc,
    "map3367np": fujitsu_map3367np,
    "caviar": wd_caviar_blue,
    "deskstar": hitachi_deskstar_7k1000,
}
