"""Disk command definitions.

A :class:`DiskCommand` is the unit of work a :class:`~repro.disk.drive.Drive`
services: an opcode, a starting LBN and a sector count.  The
:class:`Interface` distinguishes SCSI/SAS from ATA/SATA semantics,
which matters only for ``VERIFY`` (Section III-A of the paper: ATA
``VERIFY`` is incorrectly served from the on-disk cache).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Size of one logical sector in bytes (all paper-era drives are 512n).
SECTOR_SIZE = 512


class Opcode(enum.Enum):
    """Operation requested from the drive."""

    READ = "read"
    WRITE = "write"
    VERIFY = "verify"


class Interface(enum.Enum):
    """Host interface family; selects VERIFY semantics."""

    SCSI = "scsi"  # includes SAS
    ATA = "ata"  # includes SATA


class CommandStatus(enum.Enum):
    """Completion status a drive reports for one command.

    ``MEDIUM_ERROR`` is the SCSI sense key (ATA reports UNC) a drive
    returns when a command touches an unreadable sector on the medium;
    it is the signal every latent-sector-error detection starts from.
    """

    GOOD = "good"
    MEDIUM_ERROR = "medium_error"


@dataclass(frozen=True)
class DiskCommand:
    """A single command to the drive.

    Parameters
    ----------
    opcode:
        What to do.
    lbn:
        First logical block number.
    sectors:
        Number of 512-byte sectors spanned.
    """

    opcode: Opcode
    lbn: int
    sectors: int

    def __post_init__(self) -> None:
        if self.lbn < 0:
            raise ValueError(f"negative LBN: {self.lbn}")
        if self.sectors <= 0:
            raise ValueError(f"sector count must be positive: {self.sectors}")

    @property
    def bytes(self) -> int:
        """Payload size in bytes."""
        return self.sectors * SECTOR_SIZE

    @property
    def end_lbn(self) -> int:
        """One past the last LBN touched."""
        return self.lbn + self.sectors

    @classmethod
    def read(cls, lbn: int, sectors: int) -> "DiskCommand":
        return cls(Opcode.READ, lbn, sectors)

    @classmethod
    def write(cls, lbn: int, sectors: int) -> "DiskCommand":
        return cls(Opcode.WRITE, lbn, sectors)

    @classmethod
    def verify(cls, lbn: int, sectors: int) -> "DiskCommand":
        return cls(Opcode.VERIFY, lbn, sectors)
