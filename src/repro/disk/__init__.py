"""Mechanical hard-disk model.

This package is the hardware substrate for the reproduction: the paper
measured real SAS/SATA drives, which we replace with an explicit
mechanical model.  The model is deliberately *mechanistic* rather than
curve-fitted: every effect the paper observes falls out of geometry,
seek, rotation and cache behaviour:

* flat ``VERIFY`` service times below ~64 KB (rotation + seek dominate
  transfer — Fig. 4);
* the full-rotation penalty for back-to-back sequential ``VERIFY``
  (completion propagation lets the target sector slip past the head —
  the root cause of staggered scrubbing's surprising win, Fig. 5);
* the ATA ``VERIFY`` cache bug (served from the on-disk cache instead of
  the medium — Fig. 1).

Public surface:

* :class:`~repro.disk.geometry.DiskGeometry` — zoned LBN-to-physical mapping
* :class:`~repro.disk.mechanics.SeekModel` / :class:`~repro.disk.mechanics.RotationModel`
* :class:`~repro.disk.cache.DiskCache` — segmented streaming read cache
* :class:`~repro.disk.drive.Drive` — command service model
* :mod:`repro.disk.models` — parameter presets for the paper's drives
"""

from repro.disk.cache import DiskCache
from repro.disk.commands import CommandStatus, DiskCommand, Interface, Opcode
from repro.disk.drive import Drive, ServiceBreakdown
from repro.disk.geometry import DiskGeometry, Location, Zone
from repro.disk.mechanics import RotationModel, SeekModel
from repro.disk.models import (
    DriveSpec,
    fujitsu_map3367np,
    fujitsu_max3073rc,
    hitachi_deskstar_7k1000,
    hitachi_ultrastar_15k450,
    wd_caviar_blue,
)

__all__ = [
    "CommandStatus",
    "DiskCache",
    "DiskCommand",
    "DiskGeometry",
    "Drive",
    "DriveSpec",
    "Interface",
    "Location",
    "Opcode",
    "RotationModel",
    "SeekModel",
    "ServiceBreakdown",
    "Zone",
    "fujitsu_map3367np",
    "fujitsu_max3073rc",
    "hitachi_deskstar_7k1000",
    "hitachi_ultrastar_15k450",
    "wd_caviar_blue",
]
