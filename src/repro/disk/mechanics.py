"""Seek and rotation timing models.

The seek model is the standard three-parameter curve used throughout
the disk-modelling literature (e.g. DiskSim): short seeks are dominated
by arm acceleration (``sqrt`` regime) and long seeks by the coast phase
(linear regime).  We fit ``t(d) = a + b*sqrt(d) + c*d`` through the
drive's published track-to-track, average and full-stroke seek times.

The rotation model treats the spindle as perfectly constant-speed, so
the platter angle is a pure function of absolute time — no per-drive
phase state is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SeekModel:
    """Seek-time curve ``t(d) = a + b*sqrt(d) + c*d`` for d >= 1.

    Build with :meth:`from_specs`; the raw coefficients are exposed for
    tests.
    """

    a: float
    b: float
    c: float
    cylinders: int

    @classmethod
    def from_specs(
        cls,
        track_to_track: float,
        average: float,
        full_stroke: float,
        cylinders: int,
    ) -> "SeekModel":
        """Fit the curve through three published seek figures.

        Parameters
        ----------
        track_to_track:
            Seek time for a 1-cylinder move (seconds).
        average:
            Average seek time, interpreted as the time for a seek of one
            third of the stroke (the mean seek distance of uniformly
            random requests).
        full_stroke:
            Time to sweep the full stroke (seconds).
        cylinders:
            Number of cylinders.
        """
        if not 0 < track_to_track <= average <= full_stroke:
            raise ValueError(
                "need 0 < track_to_track <= average <= full_stroke, got "
                f"{track_to_track}, {average}, {full_stroke}"
            )
        if cylinders < 3:
            raise ValueError(f"too few cylinders to fit a seek curve: {cylinders}")
        d1 = 1.0
        d2 = cylinders / 3.0
        d3 = float(cylinders - 1)
        matrix = np.array(
            [
                [1.0, np.sqrt(d1), d1],
                [1.0, np.sqrt(d2), d2],
                [1.0, np.sqrt(d3), d3],
            ]
        )
        times = np.array([track_to_track, average, full_stroke])
        a, b, c = np.linalg.solve(matrix, times)
        return cls(a=float(a), b=float(b), c=float(c), cylinders=cylinders)

    def time(self, distance: int) -> float:
        """Seek time in seconds for a move of ``distance`` cylinders."""
        if distance < 0:
            raise ValueError(f"negative seek distance: {distance}")
        if distance == 0:
            return 0.0
        t = self.a + self.b * np.sqrt(distance) + self.c * distance
        # The fitted curve can dip slightly below zero near d=1 for
        # extreme spec combinations; clamp to a tenth of track-to-track.
        return float(max(t, 0.0))

    def times(self, distances) -> np.ndarray:
        """Vectorised :meth:`time` over an array of cylinder distances.

        Bit-identical to the scalar path element-wise: the same
        ``a + b*sqrt(d) + c*d`` IEEE-754 expression tree is evaluated in
        float64 with the same zero-distance and clamp-to-zero special
        cases, so ``times(d)[i] == time(d[i])`` exactly.
        """
        d = np.asarray(distances)
        if d.size and np.any(d < 0):
            raise ValueError("negative seek distance in batch")
        d = d.astype(np.float64)
        t = self.a + self.b * np.sqrt(d) + self.c * d
        return np.where(d == 0.0, 0.0, np.maximum(t, 0.0))


@dataclass(frozen=True)
class RotationModel:
    """Constant-speed spindle."""

    rpm: float

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ValueError(f"rpm must be positive: {self.rpm}")

    @property
    def period(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    def angle_at(self, time: float) -> float:
        """Platter angle (fraction of a revolution) at absolute ``time``."""
        return (time / self.period) % 1.0

    def latency_to(self, target_angle: float, time: float) -> float:
        """Seconds until the head is over ``target_angle``, from ``time``.

        Zero if the target is exactly under the head; otherwise the
        fraction of a revolution still to come.
        """
        gap = (target_angle - self.angle_at(time)) % 1.0
        return gap * self.period

    def transfer_time(self, sectors: int, sectors_per_track: int) -> float:
        """Media time to sweep ``sectors`` contiguous sectors on one track."""
        if sectors < 0:
            raise ValueError(f"negative sector count: {sectors}")
        if sectors > sectors_per_track:
            raise ValueError(
                f"{sectors} sectors exceed one track ({sectors_per_track})"
            )
        return (sectors / sectors_per_track) * self.period

    # -- vectorised batch paths (bit-identical to the scalar methods) -----
    def angles_at(self, times) -> np.ndarray:
        """Vectorised :meth:`angle_at` over an array of absolute times."""
        return (np.asarray(times, dtype=np.float64) / self.period) % 1.0

    def latencies_to(self, target_angles, times) -> np.ndarray:
        """Vectorised :meth:`latency_to`: element-wise rotational delay.

        Same float64 ``((target - angle) % 1.0) * period`` expression as
        the scalar path (numpy's float64 ``%`` matches Python's float
        modulo bit-for-bit), so results are exactly equal element-wise.
        """
        gap = (
            np.asarray(target_angles, dtype=np.float64) - self.angles_at(times)
        ) % 1.0
        return gap * self.period

    def transfer_times(self, sectors, sectors_per_track) -> np.ndarray:
        """Vectorised :meth:`transfer_time` over parallel arrays."""
        s = np.asarray(sectors)
        spt = np.asarray(sectors_per_track)
        if s.size and np.any(s < 0):
            raise ValueError("negative sector count in batch")
        if s.size and np.any(s > spt):
            raise ValueError("sector count exceeds one track in batch")
        return (s / spt) * self.period
