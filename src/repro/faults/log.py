"""Structured error lifecycle log.

Every observable step of a latent sector error's life is appended to an
:class:`ErrorLog` as an :class:`ErrorRecord`:

* ``INJECTED`` — the error's onset (recorded when the simulation clock
  first reaches it);
* ``MEDIA_ERROR`` — a command touched the bad sector on the medium and
  failed with ``MEDIUM_ERROR``; the *first* such record per LBN is the
  error's detection, attributed to the submitting source (scrubber vs
  foreground);
* ``CACHE_MASKED`` — a command over the bad sector was served from the
  drive cache and silently reported success (the ATA ``VERIFY``
  firmware bug of paper Fig. 1: the scrub "passes" without ever
  touching the medium);
* ``REALLOCATED`` / ``REALLOCATION_FAILED`` — the sector was remapped
  to the spare pool (or the pool was exhausted);
* ``VERIFY_AFTER_REMAP`` — the post-remap verification pass, with its
  outcome in ``ok``.

Analysis code (:mod:`repro.analysis.detection`) consumes the log to
compute mean time to detection, detection ratios by source, and
errors missed due to the cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class ErrorEventKind(enum.Enum):
    """Lifecycle stages of a latent sector error."""

    INJECTED = "injected"
    MEDIA_ERROR = "media_error"
    CACHE_MASKED = "cache_masked"
    REALLOCATED = "reallocated"
    REALLOCATION_FAILED = "reallocation_failed"
    VERIFY_AFTER_REMAP = "verify_after_remap"


@dataclass(frozen=True)
class ErrorRecord:
    """One lifecycle event for one sector."""

    time: float
    kind: ErrorEventKind
    lbn: int
    #: Submitting stream for media errors (``"scrubber"``, ``"foreground"``, ...).
    source: str = ""
    #: Disk command opcode involved, when applicable (``"read"``, ``"verify"``...).
    opcode: str = ""
    #: Outcome flag for ``VERIFY_AFTER_REMAP`` / ``REALLOCATED`` records.
    ok: bool = True


@dataclass
class ErrorLog:
    """Append-only record list plus per-sector lifecycle indexes."""

    records: List[ErrorRecord] = field(default_factory=list)
    #: LBN -> onset time (filled by ``INJECTED`` records).
    onsets: Dict[int, float] = field(default_factory=dict)
    #: LBN -> the first ``MEDIA_ERROR`` record (the detection).
    detections: Dict[int, ErrorRecord] = field(default_factory=dict)
    #: LBN -> remap time, for sectors moved to the spare pool.
    remapped: Dict[int, float] = field(default_factory=dict)
    #: LBN -> ``True`` once a post-remap verify succeeded.
    verified: Dict[int, bool] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    # -- recording ------------------------------------------------------------
    def record_injected(self, time: float, lbn: int) -> None:
        self.records.append(
            ErrorRecord(time=time, kind=ErrorEventKind.INJECTED, lbn=lbn)
        )
        self.onsets.setdefault(lbn, time)

    def record_media_error(
        self, time: float, lbn: int, source: str, opcode: str
    ) -> None:
        record = ErrorRecord(
            time=time,
            kind=ErrorEventKind.MEDIA_ERROR,
            lbn=lbn,
            source=source,
            opcode=opcode,
        )
        self.records.append(record)
        self.detections.setdefault(lbn, record)

    def record_cache_masked(self, time: float, lbn: int, opcode: str) -> None:
        self.records.append(
            ErrorRecord(
                time=time, kind=ErrorEventKind.CACHE_MASKED, lbn=lbn, opcode=opcode
            )
        )

    def record_reallocated(self, time: float, lbn: int, ok: bool) -> None:
        kind = (
            ErrorEventKind.REALLOCATED if ok else ErrorEventKind.REALLOCATION_FAILED
        )
        self.records.append(ErrorRecord(time=time, kind=kind, lbn=lbn, ok=ok))
        if ok:
            self.remapped.setdefault(lbn, time)

    def record_verify_after_remap(self, time: float, lbn: int, ok: bool) -> None:
        self.records.append(
            ErrorRecord(
                time=time,
                kind=ErrorEventKind.VERIFY_AFTER_REMAP,
                lbn=lbn,
                opcode="verify",
                ok=ok,
            )
        )
        if ok:
            self.verified[lbn] = True

    # -- queries --------------------------------------------------------------
    def by_kind(self, kind: ErrorEventKind) -> List[ErrorRecord]:
        return [r for r in self.records if r.kind is kind]

    def detection_latency(self, lbn: int) -> Optional[float]:
        """Onset-to-detection delay for ``lbn``, or ``None`` if undetected."""
        detection = self.detections.get(lbn)
        onset = self.onsets.get(lbn)
        if detection is None or onset is None:
            return None
        return detection.time - onset

    def detected_by(self, source_prefix: str) -> List[int]:
        """LBNs whose *first* detection came from sources named ``prefix*``."""
        return sorted(
            lbn
            for lbn, record in self.detections.items()
            if record.source.startswith(source_prefix)
        )

    def scrub_lifecycle_complete(self, source_prefix: str = "scrubber") -> bool:
        """Every scrub-detected sector ended remapped and verified.

        This is the end-to-end lifecycle invariant: detection by the
        scrubber must be followed by a successful reallocation *and* a
        successful verify-after-remap for the same LBN.
        """
        for lbn in self.detected_by(source_prefix):
            if lbn not in self.remapped or not self.verified.get(lbn, False):
                return False
        return True
