"""The scrub-side error lifecycle: localise, remap, re-verify.

A scrub request covers many sectors (64 KB – 4 MB), but a ``MEDIUM
ERROR`` only says *something* in the range is bad.  The remediation
generator localises the bad sector(s) by **splitting on error**: a
failing extent is re-verified as two halves, recursing down to single
sectors, with a bounded exponential backoff between retries (real
drives spend heavy retry effort on errors, and hammering a marginal
region back-to-back is exactly what firmware avoids).  Each localised
sector is **reallocated** to the spare pool and then **verified after
remap**, so the lifecycle of every scrub-detected error ends with a
``REALLOCATED`` + ``VERIFY_AFTER_REMAP(ok)`` pair in the
:class:`~repro.faults.log.ErrorLog`.

The generator is shared by :class:`~repro.core.scrubber.Scrubber` and
:class:`~repro.core.policies.device.WaitingScrubber`; it is written in
the simulation's process style (``yield`` events) and driven with
``yield from``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.disk.commands import CommandStatus


@dataclass(frozen=True)
class RemediationPolicy:
    """Tunables for the split/remap/verify lifecycle.

    Parameters
    ----------
    backoff:
        Initial delay before re-probing a failed extent's halves.
    backoff_factor / max_backoff:
        The delay grows geometrically with split depth, bounded.
    remap_time:
        Time one spare-pool reallocation occupies the drive.
    verify_after_remap:
        Issue a confirming ``VERIFY`` on the remapped sector.
    max_verify_retries:
        Attempts at a clean post-remap verify before giving up.
    """

    backoff: float = 1e-3
    backoff_factor: float = 2.0
    max_backoff: float = 0.1
    remap_time: float = 0.05
    verify_after_remap: bool = True
    max_verify_retries: int = 2

    def __post_init__(self) -> None:
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if self.remap_time < 0:
            raise ValueError(f"remap_time negative: {self.remap_time}")
        if self.max_verify_retries < 0:
            raise ValueError(
                f"max_verify_retries negative: {self.max_verify_retries}"
            )

    def delay_at(self, depth: int) -> float:
        """Backoff before re-probing at split ``depth`` (bounded)."""
        return min(self.backoff * self.backoff_factor**depth, self.max_backoff)


@dataclass
class RemediationStats:
    """Counters one scrubber accumulates across remediations."""

    split_verifies: int = 0
    sectors_remapped: int = 0
    remap_failures: int = 0
    #: LBNs this scrubber remapped, in remediation order.
    remapped_lbns: list = field(default_factory=list)


def remediate_extent(
    sim,
    device,
    lbn: int,
    sectors: int,
    policy: RemediationPolicy,
    submit_verify: Callable,
    stats: RemediationStats,
):
    """Process generator: localise and repair bad sectors in an extent.

    ``submit_verify(lbn, sectors)`` must submit a scrub ``VERIFY`` and
    return its completion event (both scrubbers already have exactly
    that primitive).  The caller invokes this with ``yield from`` after
    a top-level scrub verify came back ``MEDIUM_ERROR``.
    """
    sink = sim.telemetry
    if sink is not None and not sink.enabled:
        sink = None
    # Depth-first in LBN order: (lbn, sectors, depth, known_bad); the
    # right half is pushed first so the left half pops first.  The
    # caller's failing verify already condemned the initial extent, so
    # it enters with ``known_bad=True`` and is split without re-probing.
    pending = [(lbn, sectors, 0, True)]
    while pending:
        lbn, sectors, depth, known_bad = pending.pop()
        if not known_bad:
            if policy.delay_at(depth) > 0:
                yield sim.timeout(policy.delay_at(depth))
            request = yield submit_verify(lbn, sectors)
            stats.split_verifies += 1
            if sink is not None:
                sink.fault_event(
                    sim.now,
                    "split_verify",
                    lbn,
                    sectors=sectors,
                    depth=depth,
                    bad=request.breakdown.status is CommandStatus.MEDIUM_ERROR,
                )
            if request.breakdown.status is not CommandStatus.MEDIUM_ERROR:
                continue  # clean (or cache-masked — the drive cannot tell)
        if sectors == 1:
            yield from _remap_sector(
                sim, device, lbn, policy, submit_verify, stats
            )
            continue
        half = sectors // 2
        pending.append((lbn + half, sectors - half, depth + 1, False))
        pending.append((lbn, half, depth + 1, False))


def _remap_sector(sim, device, lbn, policy, submit_verify, stats):
    """Reallocate one sector, then verify the remap took."""
    faults = device.drive.faults
    sink = sim.telemetry
    if sink is not None and not sink.enabled:
        sink = None
    if policy.remap_time > 0:
        yield sim.timeout(policy.remap_time)
    if faults is None or not faults.reallocate(lbn, sim.now):
        stats.remap_failures += 1
        if sink is not None:
            sink.fault_event(sim.now, "remap_failed", lbn)
        return
    if sink is not None:
        sink.fault_event(sim.now, "remap", lbn)
    if not policy.verify_after_remap:
        stats.sectors_remapped += 1
        stats.remapped_lbns.append(lbn)
        return
    for attempt in range(policy.max_verify_retries + 1):
        request = yield submit_verify(lbn, 1)
        stats.split_verifies += 1
        ok = request.breakdown.status is not CommandStatus.MEDIUM_ERROR
        faults.log.record_verify_after_remap(sim.now, lbn, ok=ok)
        if sink is not None:
            sink.fault_event(
                sim.now, "verify_after_remap", lbn, ok=ok, attempt=attempt
            )
        if ok:
            stats.sectors_remapped += 1
            stats.remapped_lbns.append(lbn)
            return
        if attempt < policy.max_verify_retries:
            yield sim.timeout(policy.delay_at(attempt))
    stats.remap_failures += 1
