"""Latent-sector-error fault injection and the error lifecycle.

The paper's premise is that scrubbing exists to find latent sector
errors (LSEs) before foreground I/O does.  This package supplies the
errors: seeded, deterministic fault *plans* (:mod:`repro.faults.plan`),
live per-drive bad-sector state with a spare pool
(:mod:`repro.faults.state`), a structured lifecycle log
(:mod:`repro.faults.log`), and the scrub-side split/remap/verify
remediation machinery (:mod:`repro.faults.remediation`).

Install faults into a drive and every ``READ``/``VERIFY``/``WRITE``
that touches a bad extent on the medium fails with ``MEDIUM_ERROR`` —
except when the ATA firmware bug serves ``VERIFY`` from the cache, in
which case the error is silently missed and logged as ``CACHE_MASKED``
(the robustness payoff of paper Fig. 1).

Quickstart::

    from repro.disk import Drive, hitachi_ultrastar_15k450
    from repro.faults import ClusteredBurstFaultModel, MediaFaults

    spec = hitachi_ultrastar_15k450()
    drive = Drive(spec)
    plan = ClusteredBurstFaultModel().generate(
        drive.total_sectors, horizon=3600.0, seed=7
    )
    drive.install_faults(MediaFaults(plan))
"""

from repro.faults.log import ErrorEventKind, ErrorLog, ErrorRecord
from repro.faults.plan import (
    MODELS,
    BernoulliFaultModel,
    ClusteredBurstFaultModel,
    FaultPlan,
    SectorError,
    build_model,
)
from repro.faults.remediation import (
    RemediationPolicy,
    RemediationStats,
    remediate_extent,
)
from repro.faults.state import MediaFaults

__all__ = [
    "MODELS",
    "BernoulliFaultModel",
    "ClusteredBurstFaultModel",
    "ErrorEventKind",
    "ErrorLog",
    "ErrorRecord",
    "FaultPlan",
    "MediaFaults",
    "RemediationPolicy",
    "RemediationStats",
    "SectorError",
    "build_model",
    "remediate_extent",
]
