"""Deterministic latent-sector-error (LSE) fault plans.

A :class:`FaultPlan` is the *complete, pre-drawn* schedule of sector
errors for one simulated drive: every error's onset time and LBN, fixed
before the simulation starts.  Plans are plain frozen dataclasses of
tuples, so they pickle across process boundaries and canonicalise into
:class:`~repro.parallel.cache.ResultCache` keys — a parallel sweep over
fault plans is bit-identical to a serial one because the plan itself,
not the worker, carries all the randomness.

Two generators cover the regimes the measurement literature describes:

* :class:`BernoulliFaultModel` — the classic independence baseline:
  each sector fails independently with a small probability over the
  horizon, onsets uniform in time (Gray & van Ingen's per-sector error
  rates).
* :class:`ClusteredBurstFaultModel` — the regime scrub-order design
  actually targets (Bairavasundaram et al., Oprea & Juels): errors
  arrive in *bursts* that are tight in both time and LBN space, with
  configurable inter-burst and in-burst distributions.

Both are pure functions of ``(total_sectors, horizon, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class SectorError:
    """One latent sector error: sector ``lbn`` becomes unreadable at ``time``."""

    time: float
    lbn: int


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of sector errors for one drive.

    ``errors`` is sorted by onset time and contains at most one entry
    per LBN (an already-bad sector cannot fail again; the earliest
    onset wins).
    """

    total_sectors: int
    horizon: float
    errors: Tuple[SectorError, ...]

    def __post_init__(self) -> None:
        if self.total_sectors <= 0:
            raise ValueError(f"total_sectors must be positive: {self.total_sectors}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive: {self.horizon}")
        for error in self.errors:
            if not 0 <= error.lbn < self.total_sectors:
                raise ValueError(
                    f"error LBN {error.lbn} outside drive of "
                    f"{self.total_sectors} sectors"
                )
            if error.time < 0:
                raise ValueError(f"negative error onset: {error.time}")

    def __len__(self) -> int:
        return len(self.errors)

    @property
    def lbns(self) -> Tuple[int, ...]:
        return tuple(e.lbn for e in self.errors)

    def errors_until(self, now: float) -> int:
        """Number of errors with onset at or before ``now``."""
        return sum(1 for e in self.errors if e.time <= now)


def _dedupe_and_sort(
    times: np.ndarray, lbns: np.ndarray, total_sectors: int, horizon: float
) -> FaultPlan:
    """Build a plan keeping the earliest onset per LBN, time-sorted."""
    earliest: Dict[int, float] = {}
    for t, lbn in zip(times, lbns):
        lbn = int(lbn)
        t = float(t)
        if lbn not in earliest or t < earliest[lbn]:
            earliest[lbn] = t
    events = sorted(
        (SectorError(time=t, lbn=lbn) for lbn, t in earliest.items()),
        key=lambda e: (e.time, e.lbn),
    )
    return FaultPlan(
        total_sectors=total_sectors, horizon=horizon, errors=tuple(events)
    )


@dataclass(frozen=True)
class BernoulliFaultModel:
    """Independent per-sector errors, uniform onsets (the baseline).

    Parameters
    ----------
    per_sector_probability:
        Probability that any given sector develops an LSE somewhere in
        the horizon.  The number of errors is Binomial(total, p), their
        locations uniform without replacement, their onsets uniform in
        ``[0, horizon)``.
    """

    per_sector_probability: float = 1e-5

    def __post_init__(self) -> None:
        if not 0 <= self.per_sector_probability <= 1:
            raise ValueError(
                f"per_sector_probability must be in [0, 1]: "
                f"{self.per_sector_probability}"
            )

    def generate(self, total_sectors: int, horizon: float, seed: int) -> FaultPlan:
        rng = np.random.default_rng(seed)
        count = int(rng.binomial(total_sectors, self.per_sector_probability))
        count = min(count, total_sectors)
        lbns = rng.choice(total_sectors, size=count, replace=False)
        times = rng.random(count) * horizon
        return _dedupe_and_sort(times, lbns, total_sectors, horizon)


@dataclass(frozen=True)
class ClusteredBurstFaultModel:
    """Spatially/temporally clustered LSE bursts.

    Bursts start as a Poisson process in time (exponential inter-burst
    gaps of mean ``inter_burst_mean``) at uniform disk locations.  A
    burst contains ``1 + Geometric`` errors (mean ``mean_burst_length``,
    capped at ``max_burst_length``); consecutive errors in a burst are
    separated by ``1 + Geometric`` sectors (mean spatial gap
    ``spatial_gap_mean``; 1 = strictly contiguous) and by exponential
    time gaps of mean ``in_burst_time_mean`` — tight clusters in both
    dimensions, the regime where staggered scrubbing and Waiting earn
    their keep.
    """

    inter_burst_mean: float = 60.0
    mean_burst_length: float = 8.0
    max_burst_length: int = 256
    spatial_gap_mean: float = 1.0
    in_burst_time_mean: float = 0.5

    def __post_init__(self) -> None:
        if self.inter_burst_mean <= 0:
            raise ValueError(
                f"inter_burst_mean must be positive: {self.inter_burst_mean}"
            )
        if self.mean_burst_length < 1:
            raise ValueError(
                f"mean_burst_length must be >= 1: {self.mean_burst_length}"
            )
        if self.max_burst_length < 1:
            raise ValueError(
                f"max_burst_length must be >= 1: {self.max_burst_length}"
            )
        if self.spatial_gap_mean < 1:
            raise ValueError(
                f"spatial_gap_mean must be >= 1: {self.spatial_gap_mean}"
            )
        if self.in_burst_time_mean < 0:
            raise ValueError(
                f"in_burst_time_mean must be non-negative: {self.in_burst_time_mean}"
            )

    def generate(self, total_sectors: int, horizon: float, seed: int) -> FaultPlan:
        rng = np.random.default_rng(seed)
        times_out = []
        lbns_out = []
        now = float(rng.exponential(self.inter_burst_mean))
        while now < horizon:
            start = int(rng.integers(0, total_sectors))
            length = 1
            if self.mean_burst_length > 1:
                length = int(
                    min(
                        1 + rng.geometric(1.0 / self.mean_burst_length),
                        self.max_burst_length,
                    )
                )
            lbn = start
            t = now
            for _ in range(length):
                if lbn >= total_sectors:
                    break
                times_out.append(t)
                lbns_out.append(lbn)
                gap = 1
                if self.spatial_gap_mean > 1:
                    gap = int(rng.geometric(1.0 / self.spatial_gap_mean))
                lbn += max(1, gap)
                if self.in_burst_time_mean > 0:
                    t += float(rng.exponential(self.in_burst_time_mean))
            now += float(rng.exponential(self.inter_burst_mean))
        return _dedupe_and_sort(
            np.asarray(times_out, dtype=float),
            np.asarray(lbns_out, dtype=np.int64),
            total_sectors,
            horizon,
        )


#: Model registry for CLI / sweep-task construction by name.
MODELS = {
    "bernoulli": BernoulliFaultModel,
    "bursts": ClusteredBurstFaultModel,
}


def build_model(name: str, **params):
    """Construct a fault model by registry name (CLI / sweep tasks)."""
    if name not in MODELS:
        raise ValueError(
            f"unknown fault model {name!r}; choose from {', '.join(sorted(MODELS))}"
        )
    return MODELS[name](**params)
