"""Per-drive media fault state: which sectors are bad *right now*.

:class:`MediaFaults` turns a static :class:`~repro.faults.plan.FaultPlan`
into live drive state.  Errors activate lazily as the simulation clock
passes their onset; active bad sectors live in a sorted list so a
command's ``[lbn, lbn + sectors)`` range check is a pair of bisections.
Reallocation moves a bad sector to a bounded spare pool (the remapped
sector then reads from the spare and is good again), mirroring how real
drives grow their g-list.

The :class:`~repro.faults.log.ErrorLog` owned here is the single source
of truth for the error lifecycle; the drive, block device and scrubber
all record into it through this object.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Optional

from repro.faults.log import ErrorLog
from repro.faults.plan import FaultPlan


class MediaFaults:
    """Live latent-sector-error state for one drive.

    Parameters
    ----------
    plan:
        The pre-drawn error schedule.
    spare_sectors:
        Size of the reallocation spare pool; ``reallocate`` fails once
        it is exhausted (the drive would be failed out of the array).
    log:
        Lifecycle log; a fresh one is created when omitted.
    """

    def __init__(
        self,
        plan: FaultPlan,
        spare_sectors: int = 1024,
        log: Optional[ErrorLog] = None,
    ) -> None:
        if spare_sectors < 0:
            raise ValueError(f"spare_sectors negative: {spare_sectors}")
        self.plan = plan
        self.spare_sectors = spare_sectors
        self.spares_used = 0
        self.log = log if log is not None else ErrorLog()
        self._schedule = list(plan.errors)  # sorted by (time, lbn)
        self._cursor = 0
        self._active: List[int] = []  # sorted active bad LBNs
        self._onset: Dict[int, float] = {}
        self._remapped: Dict[int, float] = {}

    # -- time advance -----------------------------------------------------------
    def advance(self, now: float) -> None:
        """Activate every planned error with onset at or before ``now``."""
        cursor = self._cursor
        schedule = self._schedule
        while cursor < len(schedule) and schedule[cursor].time <= now:
            error = schedule[cursor]
            cursor += 1
            if error.lbn in self._remapped:
                continue  # remapped before onset: the spare is healthy
            insort(self._active, error.lbn)
            self._onset[error.lbn] = error.time
            self.log.record_injected(error.time, error.lbn)
        self._cursor = cursor

    def finalize(self, now: float) -> None:
        """Flush remaining activations (call once at the end of a run)."""
        self.advance(now)

    # -- queries ----------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Bad sectors whose onset has passed and that are not remapped."""
        return len(self._active)

    @property
    def remapped_count(self) -> int:
        return len(self._remapped)

    def onset_of(self, lbn: int) -> Optional[float]:
        return self._onset.get(lbn)

    def first_bad(self, lbn: int, sectors: int, now: float) -> Optional[int]:
        """Lowest active bad LBN inside ``[lbn, lbn + sectors)``, if any."""
        self.advance(now)
        index = bisect_left(self._active, lbn)
        if index < len(self._active) and self._active[index] < lbn + sectors:
            return self._active[index]
        return None

    def bad_in_range(self, lbn: int, sectors: int, now: float) -> List[int]:
        """All active bad LBNs inside ``[lbn, lbn + sectors)``."""
        self.advance(now)
        lo = bisect_left(self._active, lbn)
        hi = bisect_left(self._active, lbn + sectors)
        return self._active[lo:hi]

    def limit_end(self, start: int, end: int, now: float) -> int:
        """Clip ``end`` so ``[start, end)`` contains no active bad sector.

        Models read-ahead stopping at the first unreadable sector: the
        drive cannot stream data it cannot read, so the cache never
        holds a sector that was already bad when it was (re)filled.
        """
        bad = self.first_bad(start, max(0, end - start), now)
        return end if bad is None else bad

    # -- remediation ------------------------------------------------------------
    def reallocate(self, lbn: int, now: float) -> bool:
        """Remap ``lbn`` to the spare pool; ``False`` when no spare is left.

        Reallocating a healthy sector is allowed (drives accept
        ``REASSIGN BLOCKS`` for any LBA) and consumes a spare.
        """
        if self.spares_used >= self.spare_sectors:
            self.log.record_reallocated(now, lbn, ok=False)
            return False
        self.spares_used += 1
        index = bisect_left(self._active, lbn)
        if index < len(self._active) and self._active[index] == lbn:
            del self._active[index]
        self._remapped[lbn] = now
        self.log.record_reallocated(now, lbn, ok=True)
        return True
