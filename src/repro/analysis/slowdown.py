"""Waiting-policy slowdown/throughput simulation (Fig. 15, Table III).

Simulates the Waiting policy over a trace's idle intervals with a
given scrub request-size schedule and service model:

* when an interval of length ``D`` exceeds the wait threshold ``t``,
  the scrubber fires back-to-back requests from offset ``t``;
* the request in flight when the interval ends delays the arriving
  foreground request by its *remaining* service time — that is the
  collision's slowdown contribution (and the in-flight request still
  completes, so its bytes count);
* mean slowdown is averaged over *all* foreground requests, matching
  the administrator-facing metric the paper optimises against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.service_model import ScrubServiceModel
from repro.core.adaptive import FixedSchedule, SizeSchedule


class _SimMeter:
    """Process-global simulation-effort meter.

    The unit is *interval evaluations* — one idle interval pushed
    through one Waiting simulation — which is the inner-loop work both
    the exhaustive grid and the successive-halving search spend, so
    their costs compare directly regardless of sample size.  Purely
    additive bookkeeping (two integer adds per simulate call); workers
    meter their own process, so cross-process totals must be summed by
    the caller or measured serially.
    """

    __slots__ = ("sims", "interval_evals")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.sims = 0
        self.interval_evals = 0

    def snapshot(self) -> dict:
        return {"sims": self.sims, "interval_evals": self.interval_evals}


#: The meter every Waiting simulation reports to.
SIM_METER = _SimMeter()


@dataclass(frozen=True)
class SlowdownResult:
    """Outcome of one Waiting-policy simulation."""

    threshold: float
    label: str
    collisions: int
    total_requests: int
    mean_slowdown: float
    max_slowdown: float
    scrub_bytes: float
    #: Scrubbed bytes per second of trace time.
    throughput: float

    @property
    def throughput_mbps(self) -> float:
        return self.throughput / 1e6


def simulate_fixed_waiting(
    durations: np.ndarray,
    threshold: float,
    request_bytes: int,
    service_model: ScrubServiceModel,
    total_requests: int,
    span: float,
    label: str = "",
) -> SlowdownResult:
    """Vectorised simulation for a fixed request size."""
    durations = np.asarray(durations, dtype=float)
    _validate(threshold, total_requests, span)
    SIM_METER.sims += 1
    SIM_METER.interval_evals += len(durations)
    service = float(service_model.time(float(request_bytes)))
    usable = durations[durations > threshold] - threshold

    complete = np.floor(usable / service)
    partial = usable - complete * service
    in_flight = partial > 0
    delays = np.where(in_flight, service - partial, 0.0)
    requests_done = complete + in_flight  # the in-flight one still finishes
    scrub_bytes = float(requests_done.sum()) * request_bytes

    return _result(
        threshold,
        label or f"fixed {request_bytes // 1024}KB",
        delays,
        scrub_bytes,
        total_requests,
        span,
    )


def simulate_adaptive_waiting(
    durations: np.ndarray,
    threshold: float,
    schedule: SizeSchedule,
    service_model: ScrubServiceModel,
    total_requests: int,
    span: float,
    label: str = "",
) -> SlowdownResult:
    """Per-interval simulation for adaptive size schedules.

    Sizes grow per the schedule until they reach its cap; once capped,
    the remainder of the interval is handled in closed form, so even
    hour-long intervals cost a handful of iterations.
    """
    durations = np.asarray(durations, dtype=float)
    _validate(threshold, total_requests, span)
    if not isinstance(schedule, FixedSchedule):
        SIM_METER.sims += 1
        SIM_METER.interval_evals += len(durations)
    if isinstance(schedule, FixedSchedule):
        return simulate_fixed_waiting(
            durations, threshold, schedule.size, service_model,
            total_requests, span, label=label or schedule.name,
        )

    cap = schedule.max_size
    cap_service = float(service_model.time(float(cap)))
    delays = []
    scrub_bytes = 0.0
    for duration in durations:
        usable = duration - threshold
        if usable <= 0:
            continue
        elapsed = 0.0
        index = 0
        delay = None
        while True:
            size = schedule.size_at(index, elapsed)
            if size >= cap:
                # Steady state: finish the interval arithmetically.
                remaining = usable - elapsed
                complete = int(remaining // cap_service)
                partial = remaining - complete * cap_service
                scrub_bytes += complete * cap
                if partial > 0:
                    delay = cap_service - partial
                    scrub_bytes += cap
                else:
                    delay = 0.0
                break
            service = float(service_model.time(float(size)))
            if elapsed + service >= usable:
                delay = elapsed + service - usable
                scrub_bytes += size  # in-flight request completes
                break
            elapsed += service
            scrub_bytes += size
            index += 1
        delays.append(delay)

    return _result(
        threshold,
        label or schedule.name,
        np.asarray(delays, dtype=float),
        scrub_bytes,
        total_requests,
        span,
    )


def _validate(threshold: float, total_requests: int, span: float) -> None:
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative: {threshold}")
    if total_requests <= 0:
        raise ValueError(f"total_requests must be positive: {total_requests}")
    if span <= 0:
        raise ValueError(f"span must be positive: {span}")


def _result(
    threshold: float,
    label: str,
    delays: np.ndarray,
    scrub_bytes: float,
    total_requests: int,
    span: float,
) -> SlowdownResult:
    collisions = int(np.count_nonzero(delays > 0))
    return SlowdownResult(
        threshold=threshold,
        label=label,
        collisions=collisions,
        total_requests=total_requests,
        mean_slowdown=float(delays.sum()) / total_requests,
        max_slowdown=float(delays.max()) if len(delays) else 0.0,
        scrub_bytes=scrub_bytes,
        throughput=scrub_bytes / span,
    )
