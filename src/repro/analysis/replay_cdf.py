"""Trace replay with scrubbers: response-time CDFs (Fig. 7) and the
Table III full-stack validation runs.

Replays a (synthetic or real) trace open-loop against the simulated
stack with one of three scrubbing configurations — none, a
CFQ-scheduled scrubber, or the Waiting scrubber — and reports the
foreground response-time distribution plus the scrubber's achieved
rate, which is exactly what the paper's Fig. 7 legend shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.impact import ScrubberSetup
from repro.core.policies.device import WaitingScrubber
from repro.core.scrubber import Scrubber
from repro.disk.drive import Drive
from repro.disk.models import DriveSpec
from repro.sched.cfq import CFQScheduler
from repro.sched.device import BlockDevice
from repro.sched.noop import NoopScheduler
from repro.sim import Simulation
from repro.traces.record import Trace
from repro.workloads.replay import TraceReplayer


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay experiment."""

    horizon: float
    fg_response_times: np.ndarray
    fg_requests: int
    scrub_bytes: int
    scrub_requests: int

    @property
    def scrub_mbps(self) -> float:
        return self.scrub_bytes / self.horizon / 1e6

    @property
    def scrub_requests_per_sec(self) -> float:
        return self.scrub_requests / self.horizon

    def mean_slowdown_vs(self, baseline: "ReplayResult") -> float:
        """Mean extra response time per request against a no-scrub run.

        Both runs must replay the same trace prefix; the comparison is
        positional, mirroring how the paper measures per-request
        slowdown.
        """
        n = min(len(self.fg_response_times), len(baseline.fg_response_times))
        if n == 0:
            raise ValueError("no common completed requests to compare")
        delta = (
            self.fg_response_times[:n] - baseline.fg_response_times[:n]
        )
        return float(delta.mean())


def replay_with_scrubber(
    trace: Trace,
    spec: DriveSpec,
    scrubber: Optional[ScrubberSetup] = None,
    waiting: Optional[dict] = None,
    horizon: Optional[float] = None,
    idle_gate: float = 0.010,
    cache_enabled: bool = False,
) -> ReplayResult:
    """Replay ``trace`` with an optional scrubber.

    Exactly one of ``scrubber`` (CFQ-scheduled, Fig. 7 style) and
    ``waiting`` (the Waiting scrubber; keys ``threshold`` and
    ``request_bytes``) may be given; neither replays the bare trace.
    """
    if scrubber is not None and waiting is not None:
        raise ValueError("pass either scrubber or waiting, not both")
    if horizon is None:
        horizon = trace.duration
    if horizon <= 0:
        raise ValueError("horizon must be positive (empty trace?)")

    sim = Simulation()
    # The Waiting scrubber self-schedules, so it runs on a plain FIFO
    # device; CFQ is only needed when CFQ itself is the policy.
    scheduler = (
        NoopScheduler() if waiting is not None else CFQScheduler(idle_gate=idle_gate)
    )
    device = BlockDevice(sim, Drive(spec, cache_enabled=cache_enabled), scheduler)
    TraceReplayer(sim, device, trace.records()).start()

    scrub_bytes = scrub_requests = 0
    agent = None
    if scrubber is not None:
        agent = Scrubber(
            sim,
            device,
            scrubber.build_algorithm(),
            request_bytes=scrubber.request_bytes,
            priority=scrubber.priority,
            soft_barrier=scrubber.user_level,
            delay=scrubber.delay,
            delay_mode="interval" if scrubber.user_level else "gap",
        )
        agent.start()
    elif waiting is not None:
        from repro.core.sequential import SequentialScrub

        agent = WaitingScrubber(
            sim,
            device,
            SequentialScrub(),
            threshold=waiting.get("threshold", 0.1),
            request_bytes=waiting.get("request_bytes", 64 * 1024),
        )
        agent.start()

    sim.run(until=horizon)
    if agent is not None:
        scrub_bytes = agent.bytes_scrubbed
        scrub_requests = agent.requests_issued
    return ReplayResult(
        horizon=horizon,
        fg_response_times=device.log.response_times("foreground"),
        fg_requests=device.log.count("foreground"),
        scrub_bytes=scrub_bytes,
        scrub_requests=scrub_requests,
    )
