"""Trace replay with scrubbers: response-time CDFs (Fig. 7) and the
Table III full-stack validation runs.

Replays a (synthetic or real) trace open-loop against the simulated
stack with one of three scrubbing configurations — none, a
CFQ-scheduled scrubber, or the Waiting scrubber — and reports the
foreground response-time distribution plus the scrubber's achieved
rate, which is exactly what the paper's Fig. 7 legend shows.

Baseline memoization
--------------------
Every ``mean_slowdown_vs`` comparison needs the *same* no-scrub
baseline, and a Fig. 7 / Fig. 14-style grid re-derives it per
configuration.  :func:`replay_baseline` replays the bare trace once
per (trace digest, drive spec, horizon, idle gate, cache flag) and
serves repeats from an in-process LRU — and, when given a
:class:`~repro.parallel.cache.ResultCache`, from disk across
processes and sessions.  The memo key is content-addressed via
:meth:`Trace.digest`, so regenerated traces that merely share a name
never collide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.impact import ScrubberSetup
from repro.core.policies.device import WaitingScrubber
from repro.core.scrubber import Scrubber
from repro.disk.drive import Drive
from repro.disk.models import PRESETS, DriveSpec
from repro.sched.cfq import CFQScheduler
from repro.sched.device import BlockDevice
from repro.sched.noop import NoopScheduler
from repro.sim import make_simulation
from repro.traces.record import Trace
from repro.workloads.replay import TraceReplayer

#: Allowed relative completed-request divergence between two runs of
#: the same trace before ``mean_slowdown_vs`` refuses the comparison.
#: A scrubber can delay a tail of completions past the horizon, but a
#: larger gap means the runs replayed different traces or horizons.
_SLOWDOWN_TAIL_TOLERANCE = 0.25


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay experiment."""

    horizon: float
    fg_response_times: np.ndarray
    fg_requests: int
    scrub_bytes: int
    scrub_requests: int
    #: Content digest of the replayed trace, used to reject
    #: cross-trace ``mean_slowdown_vs`` comparisons (``None`` for
    #: results built before the digest existed, e.g. old pickles).
    trace_digest: Optional[str] = None

    @property
    def scrub_mbps(self) -> float:
        return self.scrub_bytes / self.horizon / 1e6

    @property
    def scrub_requests_per_sec(self) -> float:
        return self.scrub_requests / self.horizon

    def mean_slowdown_vs(self, baseline: "ReplayResult") -> float:
        """Mean extra response time per request against a no-scrub run.

        The comparison is positional — request *i* here against request
        *i* there, mirroring how the paper measures per-request
        slowdown — which is only meaningful when both runs replayed the
        same trace over the same horizon.  Raises ``ValueError`` when
        the trace digests or horizons differ, or when the completed
        counts diverge beyond the tail a scrubber can plausibly delay.
        """
        if (
            self.trace_digest is not None
            and baseline.trace_digest is not None
            and self.trace_digest != baseline.trace_digest
        ):
            raise ValueError(
                "cannot compare slowdown across different traces: "
                f"{self.trace_digest[:12]} vs {baseline.trace_digest[:12]}"
            )
        if self.horizon != baseline.horizon:
            raise ValueError(
                "cannot compare slowdown across different horizons: "
                f"{self.horizon} vs {baseline.horizon}"
            )
        mine = len(self.fg_response_times)
        theirs = len(baseline.fg_response_times)
        n = min(mine, theirs)
        if n == 0:
            raise ValueError("no common completed requests to compare")
        if abs(mine - theirs) > _SLOWDOWN_TAIL_TOLERANCE * max(mine, theirs):
            raise ValueError(
                f"completed-request counts diverge too far ({mine} vs "
                f"{theirs}) for a positional comparison; were these runs "
                "replayed from the same trace and horizon?"
            )
        delta = (
            self.fg_response_times[:n] - baseline.fg_response_times[:n]
        )
        return float(delta.mean())


def replay_with_scrubber(
    trace: Trace,
    spec: DriveSpec,
    scrubber: Optional[ScrubberSetup] = None,
    waiting: Optional[dict] = None,
    horizon: Optional[float] = None,
    idle_gate: float = 0.010,
    cache_enabled: bool = False,
    feed: str = "arrays",
    kernel: str = "reference",
) -> ReplayResult:
    """Replay ``trace`` with an optional scrubber.

    ``trace`` may be an in-memory :class:`Trace` or a
    :class:`~repro.traces.store.StoredTrace` — the latter streams
    zero-copy from its memory-mapped chunk files, its header digest
    feeds the result (and the baseline memo key) without re-hashing,
    and only one chunk is resident at a time.

    Exactly one of ``scrubber`` (CFQ-scheduled, Fig. 7 style) and
    ``waiting`` (the Waiting scrubber; keys ``threshold`` and
    ``request_bytes``) may be given; neither replays the bare trace.

    ``feed`` selects how the replayer ingests the trace:
    ``"arrays"`` (default) uses the batched array cursor,
    ``"records"`` the legacy per-record generator.  The two are
    bit-identical; ``"records"`` exists for A/B benchmarks and as a
    paranoia switch.  ``kernel`` selects the engine backend, also
    bit-identical (neither switch participates in the baseline memo
    key for that reason).
    """
    if scrubber is not None and waiting is not None:
        raise ValueError("pass either scrubber or waiting, not both")
    if feed not in ("arrays", "records"):
        raise ValueError(f"feed must be 'arrays' or 'records': {feed!r}")
    if horizon is None:
        horizon = trace.duration
    if horizon <= 0:
        raise ValueError("horizon must be positive (empty trace?)")

    sim = make_simulation(kernel)
    # The Waiting scrubber self-schedules, so it runs on a plain FIFO
    # device; CFQ is only needed when CFQ itself is the policy.
    scheduler = (
        NoopScheduler() if waiting is not None else CFQScheduler(idle_gate=idle_gate)
    )
    device = BlockDevice(sim, Drive(spec, cache_enabled=cache_enabled), scheduler)
    source = trace if feed == "arrays" else trace.records()
    TraceReplayer(sim, device, source).start()

    scrub_bytes = scrub_requests = 0
    agent = None
    if scrubber is not None:
        agent = Scrubber(
            sim,
            device,
            scrubber.build_algorithm(),
            request_bytes=scrubber.request_bytes,
            priority=scrubber.priority,
            soft_barrier=scrubber.user_level,
            delay=scrubber.delay,
            delay_mode="interval" if scrubber.user_level else "gap",
        )
        agent.start()
    elif waiting is not None:
        from repro.core.sequential import SequentialScrub

        agent = WaitingScrubber(
            sim,
            device,
            SequentialScrub(),
            threshold=waiting.get("threshold", 0.1),
            request_bytes=waiting.get("request_bytes", 64 * 1024),
        )
        agent.start()

    sim.run(until=horizon)
    if agent is not None:
        scrub_bytes = agent.bytes_scrubbed
        scrub_requests = agent.requests_issued
    return ReplayResult(
        horizon=horizon,
        fg_response_times=device.log.response_times("foreground"),
        fg_requests=device.log.count("foreground"),
        scrub_bytes=scrub_bytes,
        scrub_requests=scrub_requests,
        trace_digest=trace.digest(),
    )


#: In-process no-scrub baseline memo, keyed on the full parameter
#: tuple.  Small and LRU: a sweep grid reuses one baseline per
#: (trace, spec, horizon) combination, of which a session has a few.
_BASELINE_MEMO: "OrderedDict[tuple, ReplayResult]" = OrderedDict()
_BASELINE_MEMO_SIZE = 16


def _baseline_key(
    trace: Trace,
    spec: DriveSpec,
    horizon: float,
    idle_gate: float,
    cache_enabled: bool,
) -> tuple:
    from repro.parallel.cache import canonicalize

    return (
        trace.digest(),
        repr(canonicalize(spec)),
        float(horizon).hex(),
        float(idle_gate).hex(),
        bool(cache_enabled),
    )


def clear_baseline_memo() -> None:
    """Drop every in-process memoized baseline (mainly for tests)."""
    _BASELINE_MEMO.clear()


def replay_baseline(
    trace: Trace,
    spec: DriveSpec,
    horizon: Optional[float] = None,
    idle_gate: float = 0.010,
    cache_enabled: bool = False,
    feed: str = "arrays",
    memo: bool = True,
    result_cache=None,
    kernel: str = "reference",
) -> ReplayResult:
    """The no-scrub replay of ``trace``, memoized.

    Identical to ``replay_with_scrubber(trace, spec)`` with no
    scrubber, but repeated calls with the same (trace content, spec,
    horizon, idle gate, cache flag) return the memoized result instead
    of re-simulating — in-process via a small LRU, and across
    processes when ``result_cache`` (a
    :class:`~repro.parallel.cache.ResultCache`) is given.  ``memo=False``
    bypasses the in-process memo (the on-disk cache, when given, is
    still consulted); ``feed`` never participates in the key because
    both feeds are bit-identical.
    """
    if horizon is None:
        horizon = trace.duration
    key = _baseline_key(trace, spec, horizon, idle_gate, cache_enabled)
    if memo:
        cached = _BASELINE_MEMO.get(key)
        if cached is not None:
            _BASELINE_MEMO.move_to_end(key)
            return cached
    disk_key = None
    if result_cache is not None:
        disk_key = result_cache.key(
            replay_baseline,
            {
                "trace": trace,
                "spec": spec,
                "horizon": horizon,
                "idle_gate": idle_gate,
                "cache_enabled": cache_enabled,
            },
        )
        hit, value = result_cache.get(disk_key)
        if hit:
            if memo:
                _remember_baseline(key, value)
            return value
    result = replay_with_scrubber(
        trace,
        spec,
        horizon=horizon,
        idle_gate=idle_gate,
        cache_enabled=cache_enabled,
        feed=feed,
        kernel=kernel,
    )
    if result_cache is not None:
        result_cache.put(disk_key, result)
    if memo:
        _remember_baseline(key, result)
    return result


def _remember_baseline(key: tuple, result: ReplayResult) -> None:
    _BASELINE_MEMO[key] = result
    _BASELINE_MEMO.move_to_end(key)
    while len(_BASELINE_MEMO) > _BASELINE_MEMO_SIZE:
        _BASELINE_MEMO.popitem(last=False)


def replay_slowdown_task(
    trace: Trace,
    drive: str = "ultrastar",
    scrubber: Optional[ScrubberSetup] = None,
    waiting: Optional[dict] = None,
    horizon: Optional[float] = None,
    idle_gate: float = 0.010,
    cache_enabled: bool = False,
    feed: str = "arrays",
    baseline_memo: bool = True,
    kernel: str = "reference",
) -> dict:
    """Picklable sweep task: one replay config plus its slowdown.

    Runs ``replay_with_scrubber`` for the given configuration and
    compares against the :func:`replay_baseline` no-scrub run — which
    is memoized, so an N-configuration sweep in one process pays for
    the baseline once (``baseline_memo=False`` restores the legacy
    recompute-per-task behaviour for A/B benchmarks).  Designed for
    :class:`~repro.parallel.runner.SweepRunner`, which ships ``trace``
    to workers through shared memory.
    """
    if drive not in PRESETS:
        raise ValueError(
            f"unknown drive {drive!r}; choose from {sorted(PRESETS)}"
        )
    spec = PRESETS[drive]()
    result = replay_with_scrubber(
        trace,
        spec,
        scrubber=scrubber,
        waiting=waiting,
        horizon=horizon,
        idle_gate=idle_gate,
        cache_enabled=cache_enabled,
        feed=feed,
        kernel=kernel,
    )
    baseline = replay_baseline(
        trace,
        spec,
        horizon=horizon,
        idle_gate=idle_gate,
        cache_enabled=cache_enabled,
        feed=feed,
        memo=baseline_memo,
        kernel=kernel,
    )
    return {
        "result": result,
        "mean_slowdown": result.mean_slowdown_vs(baseline),
    }
