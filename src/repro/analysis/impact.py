"""Scrubbing impact on foreground workloads (Figs. 3, 6a, 6b).

Runs a synthetic foreground workload and (optionally) a scrubber on
the full simulated stack and reports both sides' throughput plus the
foreground response-time sample.  :class:`ScrubberSetup` captures the
configuration axes of the paper's experiments: algorithm, request
size, priority class, kernel- vs user-level semantics, and the delay
discipline between requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.scrubber import ScrubAlgorithm, Scrubber
from repro.core.sequential import SequentialScrub
from repro.core.staggered import StaggeredScrub
from repro.disk.drive import Drive
from repro.disk.models import DriveSpec
from repro.sched.cfq import CFQScheduler
from repro.sched.device import BlockDevice
from repro.sched.request import PriorityClass
from repro.sim import RandomStreams, Simulation
from repro.workloads.synthetic import RandomReader, SequentialReader


@dataclass(frozen=True)
class ScrubberSetup:
    """How to configure the scrubber for an impact experiment.

    ``user_level=True`` selects the paper's user-space scrubber:
    requests become soft barriers (priority classes stop mattering)
    and delays are timed issue-to-issue; the kernel scrubber times its
    delays completion-to-issue.
    """

    algorithm: str = "sequential"  # or "staggered"
    regions: int = 128
    request_bytes: int = 64 * 1024
    priority: PriorityClass = PriorityClass.IDLE
    user_level: bool = False
    delay: float = 0.0

    def build_algorithm(self) -> ScrubAlgorithm:
        if self.algorithm == "sequential":
            return SequentialScrub()
        if self.algorithm == "staggered":
            return StaggeredScrub(regions=self.regions)
        raise ValueError(f"unknown scrub algorithm: {self.algorithm!r}")


@dataclass(frozen=True)
class ImpactResult:
    """Both sides of one impact experiment."""

    horizon: float
    foreground_bytes: int
    scrubber_bytes: int
    fg_response_times: np.ndarray

    @property
    def foreground_mbps(self) -> float:
        return self.foreground_bytes / self.horizon / 1e6

    @property
    def scrubber_mbps(self) -> float:
        return self.scrubber_bytes / self.horizon / 1e6


def run_impact_experiment(
    spec: DriveSpec,
    workload: str = "sequential",
    scrubber: Optional[ScrubberSetup] = None,
    horizon: float = 30.0,
    seed: int = 1,
    idle_gate: float = 0.010,
    cache_enabled: bool = False,
    think_mean: float = 0.100,
) -> ImpactResult:
    """Run foreground (+ optional scrubber) for ``horizon`` seconds.

    Parameters
    ----------
    workload:
        ``"sequential"`` (8 MB chunks of 64 KB reads) or ``"random"``
        (random 64 KB reads), both with exponential think times —
        the paper's two synthetic workloads.
    scrubber:
        ``None`` runs the foreground alone (the "None" bars).
    idle_gate:
        CFQ Idle-class gate.  The paper documents 10 ms; its measured
        behaviour corresponded to a near-zero effective gate, so the
        Fig. 3/6 benches run both.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    sim = Simulation()
    streams = RandomStreams(seed=seed)
    device = BlockDevice(
        sim,
        Drive(spec, cache_enabled=cache_enabled),
        CFQScheduler(idle_gate=idle_gate),
    )

    if workload == "sequential":
        reader = SequentialReader(
            sim, device, streams.get("foreground"), think_mean=think_mean
        )
    elif workload == "random":
        reader = RandomReader(
            sim, device, streams.get("foreground"), think_mean=think_mean
        )
    else:
        raise ValueError(f"unknown workload: {workload!r}")
    reader.start()

    scrub_proc = None
    if scrubber is not None:
        scrub_proc = Scrubber(
            sim,
            device,
            scrubber.build_algorithm(),
            request_bytes=scrubber.request_bytes,
            priority=scrubber.priority,
            soft_barrier=scrubber.user_level,
            delay=scrubber.delay,
            delay_mode="interval" if scrubber.user_level else "gap",
        )
        scrub_proc.start()

    sim.run(until=horizon)
    return ImpactResult(
        horizon=horizon,
        foreground_bytes=device.log.bytes_completed("foreground"),
        scrubber_bytes=scrub_proc.bytes_scrubbed if scrub_proc else 0,
        fg_response_times=device.log.response_times("foreground"),
    )
