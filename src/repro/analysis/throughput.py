"""Standalone scrubber throughput measurements (Figs. 4, 5a, 5b).

Runs a scrubber alone on a simulated drive and reports throughput —
the full-stack analogue of the paper's parameter-exploration
experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.scrubber import ScrubAlgorithm, Scrubber
from repro.disk.commands import SECTOR_SIZE, DiskCommand
from repro.disk.drive import Drive
from repro.disk.models import DriveSpec
from repro.sched.device import BlockDevice
from repro.sched.noop import NoopScheduler
from repro.sim import make_simulation


def standalone_scrub_throughput(
    spec: DriveSpec,
    algorithm: ScrubAlgorithm,
    request_bytes: int = 64 * 1024,
    horizon: float = 15.0,
    delay: float = 0.0,
    delay_mode: str = "gap",
    cache_enabled: bool = False,
    telemetry=None,
    kernel: str = "reference",
) -> float:
    """Scrub throughput (bytes/second) with no foreground workload.

    ``telemetry`` optionally threads a
    :class:`~repro.telemetry.TelemetrySink` through the run; recording
    does not change the measured throughput.  ``kernel`` selects the
    engine backend; the measured throughput is identical either way.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    sim = make_simulation(kernel, telemetry=telemetry)
    device = BlockDevice(sim, Drive(spec, cache_enabled=cache_enabled), NoopScheduler())
    scrubber = Scrubber(
        sim,
        device,
        algorithm,
        request_bytes=request_bytes,
        delay=delay,
        delay_mode=delay_mode,
    )
    scrubber.start()
    sim.run(until=horizon)
    return scrubber.throughput(horizon)


def verify_response_times(
    spec: DriveSpec,
    request_bytes: int,
    pattern: str = "random",
    samples: int = 60,
    cache_enabled: bool = False,
    seed: int = 0,
    turnaround: float = 5e-5,
) -> np.ndarray:
    """Response times of individual VERIFY commands (Figs. 1, 4).

    ``pattern`` is ``"random"`` (Fig. 4's service-time measurement) or
    ``"sequential"`` (Fig. 1's access pattern).
    """
    if pattern not in ("random", "sequential"):
        raise ValueError(f"unknown pattern: {pattern!r}")
    if samples <= 0:
        raise ValueError(f"samples must be positive: {samples}")
    drive = Drive(spec, cache_enabled=cache_enabled)
    sectors = max(1, request_bytes // SECTOR_SIZE)
    rng = np.random.default_rng(seed)
    now, lbn, times = 0.0, 0, []
    for _ in range(samples):
        if pattern == "random":
            lbn = int(rng.integers(0, drive.total_sectors - sectors))
        breakdown = drive.service(DiskCommand.verify(lbn, sectors), now)
        times.append(breakdown.total)
        now = breakdown.finish + turnaround
        if pattern == "sequential":
            lbn += sectors
    return np.asarray(times)
