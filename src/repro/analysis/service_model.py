"""Scrub-request service times as a function of request size.

The trace-driven policy simulations (Fig. 14, 15, Table III) need a
fast scalar model of "how long does one back-to-back sequential VERIFY
of size S take" rather than a full DES run per query.  We *measure*
that on the mechanical :class:`~repro.disk.drive.Drive` once per size
grid point and interpolate: the underlying physics (overheads + missed
rotation + transfer) is piecewise linear in S, so interpolation is
essentially exact.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.disk.commands import SECTOR_SIZE, DiskCommand
from repro.disk.drive import Drive
from repro.disk.models import DriveSpec

#: Default measurement grid: 64 KB to 8 MB.
_DEFAULT_GRID = tuple(
    int(k * 1024) for k in (64, 128, 256, 512, 1024, 2048, 3072, 4096, 6144, 8192)
)


class ScrubServiceModel:
    """Interpolated service time per scrub request size.

    Build with :meth:`from_spec` (measures on a fresh drive model) or
    directly from ``(sizes, times)`` pairs.
    """

    def __init__(self, sizes: Sequence[int], times: Sequence[float]) -> None:
        sizes = np.asarray(sizes, dtype=float)
        times = np.asarray(times, dtype=float)
        if len(sizes) != len(times) or len(sizes) < 2:
            raise ValueError("need at least two (size, time) points")
        order = np.argsort(sizes)
        self._sizes = sizes[order]
        self._times = times[order]
        if np.any(np.diff(self._times) < 0):
            raise ValueError("service times must be non-decreasing in size")
        # Slope for linear extrapolation beyond the grid.
        self._slope = (self._times[-1] - self._times[-2]) / (
            self._sizes[-1] - self._sizes[-2]
        )

    @classmethod
    def from_spec(
        cls,
        spec: DriveSpec,
        sizes: Sequence[int] = _DEFAULT_GRID,
        warmup: int = 4,
        samples: int = 12,
        start_fraction: float = 0.3,
        kernel: str = "reference",
    ) -> "ScrubServiceModel":
        """Measure back-to-back sequential VERIFY times on a drive model.

        ``start_fraction`` positions the measurement in the middle of
        the disk (a representative zone).  ``kernel="vector"`` measures
        all grid sizes at once through
        :meth:`~repro.disk.drive.Drive.batched_media_times` (one lane
        per size — the per-size measurement chains are independent);
        the results are bit-identical to the scalar path.
        """
        from repro.sim.vector import KERNELS

        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}: {kernel!r}")
        if kernel == "vector":
            return cls._from_spec_vector(
                spec, sizes, warmup, samples, start_fraction
            )
        times = []
        for size in sizes:
            drive = Drive(spec, cache_enabled=False)
            sectors = max(1, size // SECTOR_SIZE)
            lbn = int(drive.total_sectors * start_fraction)
            now, observed = 0.0, []
            for _ in range(warmup + samples):
                breakdown = drive.service(DiskCommand.verify(lbn, sectors), now)
                observed.append(breakdown.total)
                now = breakdown.finish + 5e-5
                lbn += sectors
            times.append(float(np.mean(observed[warmup:])))
        return cls(list(sizes), times)

    @classmethod
    def _from_spec_vector(
        cls,
        spec: DriveSpec,
        sizes: Sequence[int],
        warmup: int,
        samples: int,
        start_fraction: float,
    ) -> "ScrubServiceModel":
        """The vector-kernel measurement: one batched lane per size."""
        drive = Drive(spec, cache_enabled=False)
        n = len(sizes)
        sectors = np.array(
            [max(1, size // SECTOR_SIZE) for size in sizes], dtype=np.int64
        )
        lbn = np.full(n, int(drive.total_sectors * start_fraction), np.int64)
        now = np.zeros(n, dtype=np.float64)
        head = np.zeros(n, dtype=np.int64)
        observed = np.empty((warmup + samples, n), dtype=np.float64)
        for step in range(warmup + samples):
            totals, finishes, head = drive.batched_media_times(
                lbn, sectors, now, head
            )
            observed[step] = totals
            now = finishes + 5e-5
            lbn += sectors
        # Contiguous per-size columns so np.mean's pairwise summation
        # visits the same order as the scalar path's list-of-floats.
        times = [
            float(np.mean(np.ascontiguousarray(observed[warmup:, j])))
            for j in range(n)
        ]
        return cls(list(sizes), times)

    def time(self, request_bytes) -> np.ndarray:
        """Service time (seconds) for one or more request sizes (bytes)."""
        request_bytes = np.asarray(request_bytes, dtype=float)
        if np.any(request_bytes <= 0):
            raise ValueError("request sizes must be positive")
        result = np.interp(request_bytes, self._sizes, self._times)
        beyond = request_bytes > self._sizes[-1]
        if np.any(beyond):
            extra = (request_bytes - self._sizes[-1]) * self._slope
            result = np.where(beyond, self._times[-1] + extra, result)
        return result if result.ndim else float(result)

    def max_size_for_slowdown(self, max_slowdown: float) -> int:
        """Largest whole-sector size whose service time fits ``max_slowdown``.

        This is the paper's footnote constraint: the maximum tolerable
        per-request slowdown caps the scrub request size.
        """
        if max_slowdown <= 0:
            raise ValueError(f"max_slowdown must be positive: {max_slowdown}")
        if self.time(float(SECTOR_SIZE)) > max_slowdown:
            raise ValueError(
                f"even a single-sector request exceeds {max_slowdown}s"
            )
        lo, hi = SECTOR_SIZE, int(self._sizes[-1])
        # Grow the bracket if the grid end still fits.
        while self.time(float(hi)) <= max_slowdown:
            hi *= 2
            if hi > 2**34:  # 16 GB: nothing sensible is this large
                break
        while hi - lo > SECTOR_SIZE:
            mid = (lo + hi) // (2 * SECTOR_SIZE) * SECTOR_SIZE
            if mid in (lo, hi):
                break
            if self.time(float(mid)) <= max_slowdown:
                lo = mid
            else:
                hi = mid
        return lo
