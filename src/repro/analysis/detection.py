"""Detection and remediation of injected latent sector errors.

The robustness companion to the paper's performance experiments: given
a seeded fault plan (:mod:`repro.faults`), how quickly does each scrub
policy *find* the errors, who finds them (scrubber vs foreground I/O),
and how many are silently missed because the ATA ``VERIFY`` firmware
bug served the scrub from the drive cache (paper Fig. 1)?

:func:`run_detection_experiment` builds the full stack — drive with
installed faults, scheduler, optional foreground reader, one of the
three scrub policies (Sequential, Staggered, Waiting) with the
split/remap/verify lifecycle enabled — runs it for a horizon, and
distils the :class:`~repro.faults.log.ErrorLog` into a
:class:`DetectionMetrics`.

:func:`detection_sweep_task` is the module-level (picklable) wrapper
for :class:`~repro.parallel.runner.SweepRunner` fan-out: the fault
plan is rebuilt inside the worker as a pure function of
``(model, model_params, total_sectors, horizon, seed)``, so serial and
parallel sweeps are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.policies.device import WaitingScrubber
from repro.core.scrubber import ScrubAlgorithm, Scrubber
from repro.core.sequential import SequentialScrub
from repro.core.staggered import StaggeredScrub
from repro.disk.drive import Drive
from repro.disk.models import PRESETS, DriveSpec
from repro.faults import (
    ErrorEventKind,
    ErrorLog,
    MediaFaults,
    RemediationPolicy,
    build_model,
)
from repro.sched.cfq import CFQScheduler
from repro.sched.device import BlockDevice
from repro.sched.noop import NoopScheduler
from repro.sched.request import PriorityClass
from repro.sim import RandomStreams, make_simulation
from repro.traces.record import Trace
from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import RandomReader

#: Scrub policies the experiment understands.
ALGORITHMS = ("sequential", "staggered", "waiting")


def shrunk_spec(spec: DriveSpec, cylinders: int = 50) -> DriveSpec:
    """A tiny-geometry copy of ``spec`` for fast fault experiments.

    Capacity drops to a few MB so full scrub passes take fractions of
    a simulated second, while interface semantics (SCSI vs ATA
    ``VERIFY``, the cache bug flag) and per-command overheads are
    preserved — which is all the detection experiments measure.
    """
    if cylinders <= 0:
        raise ValueError(f"cylinders must be positive: {cylinders}")
    return spec.with_overrides(
        cylinders=cylinders,
        heads=2,
        outer_spt=64,
        inner_spt=64,
        num_zones=1,
    )


@dataclass(frozen=True)
class DetectionMetrics:
    """One run's error lifecycle, distilled from the :class:`ErrorLog`."""

    horizon: float
    #: Errors whose onset fell inside the horizon.
    injected: int
    #: Distinct bad LBNs that produced at least one ``MEDIUM_ERROR``.
    detected: int
    #: ...first detected by a scrub ``VERIFY``.
    scrub_detected: int
    #: ...first detected the hard way, by foreground I/O.
    foreground_detected: int
    #: Commands over bad sectors silently served from the cache.
    cache_mask_events: int
    #: Distinct bad LBNs that were cache-masked and *never* detected.
    missed_due_to_cache: int
    #: Bad sectors moved to the spare pool.
    remapped: int
    #: Remapped sectors with a clean post-remap verify.
    verified_after_remap: int
    #: Mean onset-to-first-detection delay (``None`` if nothing detected).
    mean_time_to_detection: Optional[float]
    #: Every scrub-detected sector ended remapped and verified.
    lifecycle_complete: bool

    @property
    def detection_ratio(self) -> float:
        """Fraction of injected errors detected (1.0 when none injected)."""
        return self.detected / self.injected if self.injected else 1.0

    @property
    def scrub_share(self) -> float:
        """Fraction of detections owed to the scrubber."""
        return self.scrub_detected / self.detected if self.detected else 0.0


def compute_detection_metrics(
    log: ErrorLog, horizon: float, scrub_prefix: str = "scrubber"
) -> DetectionMetrics:
    """Distil an :class:`ErrorLog` into :class:`DetectionMetrics`."""
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    injected = len(log.onsets)
    detected = len(log.detections)
    scrub_detected = len(log.detected_by(scrub_prefix))
    masked = log.by_kind(ErrorEventKind.CACHE_MASKED)
    missed = {r.lbn for r in masked} - set(log.detections)
    latencies = [
        log.detection_latency(lbn)
        for lbn in log.detections
        if log.detection_latency(lbn) is not None
    ]
    verified = sum(1 for ok in log.verified.values() if ok)
    return DetectionMetrics(
        horizon=horizon,
        injected=injected,
        detected=detected,
        scrub_detected=scrub_detected,
        foreground_detected=detected - scrub_detected,
        cache_mask_events=len(masked),
        missed_due_to_cache=len(missed),
        remapped=len(log.remapped),
        verified_after_remap=verified,
        mean_time_to_detection=(
            sum(latencies) / len(latencies) if latencies else None
        ),
        lifecycle_complete=log.scrub_lifecycle_complete(scrub_prefix),
    )


@dataclass(frozen=True)
class DetectionResult:
    """One detection experiment: configuration echo plus outcomes."""

    drive: str
    algorithm: str
    cache_enabled: bool
    seed: int
    metrics: DetectionMetrics
    #: Top-level scrub verifies the drive failed (detections by scrub).
    errors_seen: int
    #: Sectors the scrubber localised, remapped and re-verified.
    sectors_remapped: int
    bytes_scrubbed: int
    foreground_bytes: int
    #: Optional telemetry bundle (``{"metrics": snapshot, "events":
    #: chrome_events}``) when the run recorded one; every value inside
    #: is a pure function of the simulation, so results stay
    #: bit-identical across serial and parallel sweeps.
    telemetry: Optional[dict] = None


def _build_algorithm(name: str, regions: int) -> ScrubAlgorithm:
    if name in ("sequential", "waiting"):
        return SequentialScrub()
    if name == "staggered":
        return StaggeredScrub(regions=regions)
    raise ValueError(
        f"unknown scrub algorithm {name!r}; choose from {ALGORITHMS}"
    )


def run_detection_experiment(
    spec: DriveSpec,
    algorithm: str = "sequential",
    regions: int = 16,
    model: str = "bursts",
    model_params: Optional[dict] = None,
    horizon: float = 5.0,
    seed: int = 0,
    cache_enabled: bool = True,
    request_bytes: int = 64 * 1024,
    foreground: bool = False,
    trace: Optional[Trace] = None,
    time_scale: float = 1.0,
    feed: str = "arrays",
    think_mean: float = 0.05,
    threshold: float = 0.01,
    remediation: Optional[RemediationPolicy] = None,
    remediate: bool = True,
    spare_sectors: int = 4096,
    idle_gate: float = 0.010,
    telemetry=None,
    kernel: str = "reference",
) -> DetectionResult:
    """Run one scrub policy against a seeded fault plan for ``horizon`` s.

    Parameters
    ----------
    algorithm:
        ``"sequential"`` / ``"staggered"`` run the framework
        :class:`Scrubber` under CFQ; ``"waiting"`` runs the
        self-scheduling :class:`WaitingScrubber` (idle ``threshold``)
        under NOOP, as in the paper's kernel integration.
    model / model_params / seed:
        Fault plan inputs (see :mod:`repro.faults.plan`); the plan is a
        pure function of these plus the drive size and horizon.
    foreground:
        Add a closed-loop :class:`RandomReader`, so errors can also be
        found "the hard way" and detection sources compete.
    trace / time_scale / feed:
        Replay a recorded trace as the foreground load instead
        (open-loop, LBNs wrapped onto the shrunk drive).  Mutually
        exclusive with ``foreground``; ``feed`` as in
        :func:`~repro.analysis.replay_cdf.replay_with_scrubber`.
    remediate:
        Enable the split/remap/verify lifecycle (with ``remediation``
        overriding the default :class:`RemediationPolicy`).
    telemetry:
        Optional :class:`~repro.telemetry.TelemetrySink` threaded
        through the whole stack (engine, device, drive, scrubber,
        remediation).  Recording never perturbs the run.
    kernel:
        Engine backend (``"reference"`` or ``"vector"``); results are
        bit-identical across backends.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    if trace is not None and foreground:
        raise ValueError("pass either trace or foreground, not both")
    if feed not in ("arrays", "records"):
        raise ValueError(f"feed must be 'arrays' or 'records': {feed!r}")
    plan = build_model(model, **(model_params or {})).generate(
        Drive(spec, cache_enabled=False).total_sectors, horizon, seed
    )
    sim = make_simulation(kernel, telemetry=telemetry)
    drive = Drive(spec, cache_enabled=cache_enabled)
    faults = MediaFaults(plan, spare_sectors=spare_sectors)
    drive.install_faults(faults)
    scheduler = (
        NoopScheduler() if algorithm == "waiting" else CFQScheduler(idle_gate=idle_gate)
    )
    device = BlockDevice(sim, drive, scheduler)

    if foreground:
        streams = RandomStreams(seed=seed)
        RandomReader(
            sim, device, streams.get("foreground"), think_mean=think_mean
        ).start()
    elif trace is not None:
        source = trace if feed == "arrays" else trace.records()
        TraceReplayer(
            sim, device, source, time_scale=time_scale, wrap_lbn=True
        ).start()

    policy = remediation if remediation is not None else (
        RemediationPolicy() if remediate else None
    )
    if algorithm == "waiting":
        scrubber = WaitingScrubber(
            sim,
            device,
            _build_algorithm(algorithm, regions),
            threshold=threshold,
            request_bytes=request_bytes,
            remediation=policy,
        )
    else:
        scrubber = Scrubber(
            sim,
            device,
            _build_algorithm(algorithm, regions),
            request_bytes=request_bytes,
            priority=PriorityClass.IDLE,
            remediation=policy,
        )
    process = scrubber.start()

    sim.run(until=horizon)
    if process.is_alive:
        # Drain: no new extents, but the in-flight verify and any
        # remediation it triggered run to completion, so no detected
        # error is abandoned mid-lifecycle by the horizon cut-off.
        scrubber.request_stop()
        sim.run(until=process)
    faults.finalize(horizon)
    return DetectionResult(
        drive=spec.name,
        algorithm=algorithm,
        cache_enabled=cache_enabled,
        seed=seed,
        metrics=compute_detection_metrics(faults.log, horizon),
        errors_seen=scrubber.errors_seen,
        sectors_remapped=scrubber.sectors_remapped,
        bytes_scrubbed=scrubber.bytes_scrubbed,
        foreground_bytes=device.log.bytes_completed("foreground"),
    )


def detection_sweep_task(
    drive: str = "ultrastar",
    cylinders: int = 50,
    algorithm: str = "sequential",
    regions: int = 16,
    model: str = "bursts",
    model_params: Optional[dict] = None,
    horizon: float = 5.0,
    seed: int = 0,
    cache_enabled: bool = True,
    cache_bug: Optional[bool] = None,
    foreground: bool = False,
    trace: Optional[Trace] = None,
    time_scale: float = 1.0,
    feed: str = "arrays",
    request_bytes: int = 64 * 1024,
    collect_telemetry: bool = False,
    kernel: str = "reference",
) -> DetectionResult:
    """Picklable sweep task: one detection run on a shrunk preset drive.

    ``cache_bug`` forces the ATA ``VERIFY``-from-cache firmware bug on
    or off while keeping the geometry (and therefore the scrub
    schedule) identical — the clean A/B for the Fig. 1 payoff.

    ``trace`` replays a recorded workload as the foreground load (see
    :func:`run_detection_experiment`).  When fanned out through
    :class:`~repro.parallel.runner.SweepRunner`, the trace ships to
    workers zero-copy via shared memory and enters the cache key as
    its content digest.

    ``collect_telemetry`` records the run with a fresh
    :class:`~repro.telemetry.Recorder` (wall-clock stats off, so the
    bundle is deterministic) and attaches its export to the result;
    fleet-level summaries merge these per-task bundles in input order,
    preserving serial == parallel bit-identity.
    """
    if drive not in PRESETS:
        raise ValueError(
            f"unknown drive {drive!r}; choose from {sorted(PRESETS)}"
        )
    spec = shrunk_spec(PRESETS[drive](), cylinders=cylinders)
    if cache_bug is not None:
        spec = spec.with_overrides(ata_verify_cache_bug=cache_bug)
    recorder = None
    if collect_telemetry:
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
    result = run_detection_experiment(
        spec,
        algorithm=algorithm,
        regions=regions,
        model=model,
        model_params=model_params,
        horizon=horizon,
        seed=seed,
        cache_enabled=cache_enabled,
        foreground=foreground,
        trace=trace,
        time_scale=time_scale,
        feed=feed,
        request_bytes=request_bytes,
        telemetry=recorder,
        kernel=kernel,
    )
    if recorder is not None:
        result = replace(result, telemetry=recorder.export())
    return result
