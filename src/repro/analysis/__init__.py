"""Experiment-level analysis: the code behind every figure and table.

* :mod:`repro.analysis.service_model` — measured scrub-request service
  times per size (the bridge from the mechanical drive model to the
  trace-driven policy simulations);
* :mod:`repro.analysis.throughput` — standalone scrubber throughput
  (Figs. 4, 5a, 5b);
* :mod:`repro.analysis.impact` — scrubber vs foreground workload
  experiments on the full stack (Figs. 3, 6a, 6b);
* :mod:`repro.analysis.replay_cdf` — trace replay with scrubbers,
  response-time CDFs (Fig. 7);
* :mod:`repro.analysis.collision` — policy evaluation on idle interval
  samples: utilisation vs collision rate (Fig. 14);
* :mod:`repro.analysis.detection` — latent-sector-error detection and
  remediation under injected fault plans: time-to-detection, scrub vs
  foreground attribution, errors missed to the ATA cache bug;
* :mod:`repro.analysis.slowdown` — Waiting-policy slowdown/throughput
  simulation with fixed and adaptive request sizes (Fig. 15,
  Table III).
"""

from repro.analysis.collision import (
    PolicyPoint,
    evaluate_policy,
    sweep_policy,
    sweep_policy_cls,
)
from repro.analysis.detection import (
    DetectionMetrics,
    DetectionResult,
    compute_detection_metrics,
    detection_sweep_task,
    run_detection_experiment,
    shrunk_spec,
)
from repro.analysis.impact import ImpactResult, run_impact_experiment
from repro.analysis.replay_cdf import (
    ReplayResult,
    replay_baseline,
    replay_slowdown_task,
    replay_with_scrubber,
)
from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import (
    SlowdownResult,
    simulate_adaptive_waiting,
    simulate_fixed_waiting,
)
from repro.analysis.throughput import standalone_scrub_throughput

__all__ = [
    "DetectionMetrics",
    "DetectionResult",
    "ImpactResult",
    "PolicyPoint",
    "ReplayResult",
    "ScrubServiceModel",
    "SlowdownResult",
    "compute_detection_metrics",
    "detection_sweep_task",
    "evaluate_policy",
    "replay_baseline",
    "replay_slowdown_task",
    "replay_with_scrubber",
    "run_detection_experiment",
    "run_impact_experiment",
    "shrunk_spec",
    "simulate_adaptive_waiting",
    "simulate_fixed_waiting",
    "standalone_scrub_throughput",
    "sweep_policy",
    "sweep_policy_cls",
]
