"""Policy evaluation: idle-time utilisation vs collision rate (Fig. 14).

Every point in the paper's Fig. 14 is one (policy, parameter) pair
evaluated over a trace's idle intervals:

* **collision rate** — the fraction of foreground requests delayed by
  an in-progress scrub request.  A policy that fires in an interval
  keeps firing until the next foreground request arrives, so each
  fired interval contributes exactly one collision;
* **utilisation** — the fraction of the trace's total idle time spent
  scrubbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.core.policies.base import IdlePolicy


@dataclass(frozen=True)
class PolicyPoint:
    """One evaluated (policy, parameter) point."""

    policy: str
    label: str
    collisions: int
    collision_rate: float
    utilised_time: float
    utilisation: float

    def dominates(self, other: "PolicyPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        return (
            self.collision_rate <= other.collision_rate
            and self.utilisation >= other.utilisation
            and (
                self.collision_rate < other.collision_rate
                or self.utilisation > other.utilisation
            )
        )


def evaluate_policy(
    policy: IdlePolicy,
    durations: np.ndarray,
    total_requests: Optional[int] = None,
    label: str = "",
) -> PolicyPoint:
    """Evaluate one policy over an idle-interval sample.

    Parameters
    ----------
    durations:
        Idle interval lengths.
    total_requests:
        Number of foreground requests in the trace (the collision-rate
        denominator).  Defaults to the number of idle intervals, which
        overstates the rate for bursty traces — pass the real count
        when you have it.
    """
    durations = np.asarray(durations, dtype=float)
    if len(durations) == 0:
        raise ValueError("empty idle sample")
    denominator = total_requests if total_requests is not None else len(durations)
    if denominator <= 0:
        raise ValueError(f"total_requests must be positive: {denominator}")
    fired = policy.fired_mask(durations)
    utilised = policy.utilised_time(durations)
    total_idle = float(durations.sum())
    if total_idle <= 0:
        raise ValueError("total idle time is zero")
    collisions = int(fired.sum())
    return PolicyPoint(
        policy=policy.name,
        label=label or repr(policy),
        collisions=collisions,
        collision_rate=collisions / denominator,
        utilised_time=float(utilised.sum()),
        utilisation=float(utilised.sum()) / total_idle,
    )


def sweep_policy(
    factory: Callable[[float], IdlePolicy],
    parameters: Iterable[float],
    durations: np.ndarray,
    total_requests: Optional[int] = None,
    label_format: str = "{:g}",
) -> List[PolicyPoint]:
    """Evaluate ``factory(p)`` for each parameter ``p`` (one Fig. 14 line)."""
    return [
        evaluate_policy(
            factory(parameter),
            durations,
            total_requests=total_requests,
            label=label_format.format(parameter),
        )
        for parameter in parameters
    ]


def _evaluate_task(
    policy_cls: type,
    parameter: float,
    policy_kwargs: dict,
    durations: np.ndarray,
    total_requests: Optional[int],
    label: str,
) -> PolicyPoint:
    """One sweep point as a picklable, cacheable task."""
    policy = policy_cls(parameter, **policy_kwargs)
    return evaluate_policy(
        policy, durations, total_requests=total_requests, label=label
    )


def sweep_policy_cls(
    policy_cls: type,
    parameters: Iterable[float],
    durations: np.ndarray,
    total_requests: Optional[int] = None,
    label_format: str = "{:g}",
    policy_kwargs: Optional[dict] = None,
    runner=None,
) -> List[PolicyPoint]:
    """Sweep ``policy_cls(p, **policy_kwargs)`` over ``parameters``.

    The runner-friendly sibling of :func:`sweep_policy`: the policy is
    named by class rather than closed over in a factory, so each point
    is an independent picklable task a
    :class:`~repro.parallel.SweepRunner` can distribute and cache.
    Without a runner this is exactly :func:`sweep_policy`.
    """
    policy_kwargs = dict(policy_kwargs or {})
    tasks = [
        dict(
            policy_cls=policy_cls,
            parameter=float(parameter),
            policy_kwargs=policy_kwargs,
            durations=durations,
            total_requests=total_requests,
            label=label_format.format(parameter),
        )
        for parameter in parameters
    ]
    if runner is None:
        return [_evaluate_task(**task) for task in tasks]
    return runner.map(_evaluate_task, tasks)
