"""Command-line interface: ``python -m repro <command>``.

Eleven commands cover the library's main workflows:

* ``generate``  — write a synthetic catalog trace to CSV;
* ``analyze``   — Section V-A statistics for a trace (idle stats,
  periodicity, tails, hazard);
* ``optimize``  — Table III: best (wait threshold, request size) for
  slowdown goals on a given drive;
* ``throughput`` — standalone scrub throughput for an algorithm/size;
* ``mlet``      — MLET by scrub order under bursty LSEs;
* ``detect``    — error detection/remediation under injected LSEs,
  with and without the ATA ``VERIFY`` cache bug;
* ``trace``     — run a scrub scenario with the telemetry recorder on
  and export a Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) plus a metrics summary;
* ``verify``    — correctness harness: fuzz seeded configurations
  through the runtime invariant checker and the differential oracle
  (``--self-test`` plants known bugs and asserts they are caught);
* ``bench``     — run the performance regression suite
  (``benchmarks/run_perf.py``) and write its machine-stable JSON;
* ``fleet``     — fleet-scale reliability campaign: MTTDL and
  P(data loss) per scrub policy over tens of thousands of drives,
  with durable per-shard checkpoints (``--journal``), bit-identical
  resume (``--resume``), fault-tolerant supervised workers, and live
  observability (``--monitor``: progress lines, ``status.json``,
  event log, span trace, Prometheus textfile);
* ``report``    — render a campaign monitor's observability
  directory as a self-contained HTML run report.

``throughput``, ``detect`` and ``optimize`` also take ``--telemetry``
(print a metrics summary table) and, where a simulation runs
in-process, ``--trace-out FILE`` (write the Chrome trace).

``optimize``, ``throughput``, ``detect``, ``trace`` and ``verify``
take ``--kernel {reference,vector}`` to select the simulation engine
backend.  Both backends are bit-identical where the vector kernel
supports the scenario; a scenario it does *not* support fails fast
with :class:`~repro.sim.vector.UnsupportedKernelFeature` and exit
code 2 — it never silently falls back to the reference kernel.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _load_trace(args):
    """Trace from --trace (CSV file) or --synthetic (catalog name)."""
    from repro.traces import generate_trace, read_csv_trace

    if args.trace:
        return read_csv_trace(
            args.trace, max_requests=getattr(args, "max_requests", None)
        )
    return generate_trace(
        args.synthetic, duration=args.duration, seed=args.seed
    )


def _drive_spec(name: str):
    from repro.disk.models import PRESETS

    if name not in PRESETS:
        raise SystemExit(
            f"unknown drive {name!r}; choose from {', '.join(sorted(PRESETS))}"
        )
    return PRESETS[name]()


def _add_trace_source(
    parser: argparse.ArgumentParser, corpus: bool = False
) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--trace", help="CSV trace file (canonical or MSR dialect)")
    source.add_argument(
        "--synthetic",
        metavar="NAME",
        help="synthetic catalog trace (e.g. MSRsrc11; see `repro generate --list`)",
    )
    if corpus:
        source.add_argument(
            "--corpus",
            metavar="DIR",
            help="on-disk trace corpus directory (built with "
            "`repro corpus build` or repro.traces.generate_corpus)",
        )
    parser.add_argument(
        "--duration", type=float, default=4 * 3600.0,
        help="synthetic trace length in seconds (default 4h)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-requests", type=int, default=None,
        help="stop parsing a --trace CSV after this many requests "
        "(huge traces load only the prefix an experiment needs)",
    )


def cmd_generate(args) -> int:
    from repro.traces import CATALOG, generate_trace, write_csv_trace

    if args.list:
        for name, spec in sorted(CATALOG.items()):
            print(f"{name:<12} {spec.collection:<16} {spec.description}")
        return 0
    if not args.name or not args.output:
        raise SystemExit("generate needs --name and --output (or --list)")
    trace = generate_trace(args.name, duration=args.duration, seed=args.seed)
    write_csv_trace(trace, args.output)
    print(f"wrote {len(trace):,} requests ({trace.duration / 3600:.2f} h) to {args.output}")
    return 0


def cmd_analyze(args) -> int:
    from repro.stats import (
        anova_period,
        expected_remaining,
        has_significant_autocorrelation,
        summarize_idle,
        usable_fraction,
    )
    from repro.stats.tails import idle_share_of_largest
    from repro.traces.idle import idle_intervals_from_trace

    trace = _load_trace(args)
    _, durations = idle_intervals_from_trace(
        trace, positioning=args.service_ms / 1e3
    )
    if len(durations) == 0:
        print("no idle intervals found (trace saturated under this service model)")
        return 1
    stats = summarize_idle(durations, span=trace.duration)
    print(f"trace: {trace.name or '<unnamed>'}")
    print(f"  requests: {len(trace):,} over {trace.duration / 3600:.2f} h")
    print(
        f"  idle: {stats.count:,} intervals, mean {stats.mean * 1e3:.2f} ms, "
        f"CoV {stats.cov:.1f} ({'~memoryless' if stats.is_memoryless_like else 'heavy-tailed'})"
    )
    print(f"  autocorrelated: {has_significant_autocorrelation(durations)}")
    print(
        f"  idle share of largest 15% of intervals: "
        f"{idle_share_of_largest(durations, 0.15):.0%}"
    )
    taus = np.array([1e-3, 1e-2, 1e-1, 1.0])
    remaining = expected_remaining(durations, taus)
    usable = usable_fraction(durations, taus)
    for tau, rem, use in zip(taus, remaining, usable):
        rem_txt = f"{rem:9.3f} s" if np.isfinite(rem) else "      n/a"
        print(
            f"  after {tau * 1e3:7.1f} ms idle: expect {rem_txt} more, "
            f"{use:.0%} usable"
        )
    if trace.duration >= 2 * 86400:
        result = anova_period(trace.requests_per_bin(3600.0))
        label = f"{result.period} h" if result.period > 1 else "none"
        print(f"  ANOVA period: {label}")
    return 0


def _build_runner(args, telemetry=None):
    """A SweepRunner from --workers/--cache/--cache-dir, or ``None``."""
    from repro.parallel import ResultCache, SweepRunner

    use_cache = args.cache or args.cache_dir
    if not args.workers and not use_cache and telemetry is None:
        return None
    cache = ResultCache(args.cache_dir or None) if use_cache else None
    return SweepRunner(workers=args.workers, cache=cache, telemetry=telemetry)


def cmd_corpus_build(args) -> int:
    from repro.traces.catalog import generate_corpus
    from repro.traces.store import TraceStoreError

    try:
        corpus = generate_corpus(
            args.out,
            names=args.names,
            duration=args.duration,
            seed=args.seed,
            repetitions=args.repetitions,
            chunk_requests=args.chunk_requests,
        )
    except (TraceStoreError, KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"built corpus at {corpus.root} ({len(corpus)} entries)")
    for name in corpus.names():
        row = corpus.describe(name)
        print(
            f"  {name:<12} {row['requests']:>12,} requests  "
            f"{row['duration'] / 3600:8.2f} h  {row['chunks']} chunks"
        )
    return 0


def cmd_corpus_list(args) -> int:
    from repro.traces.store import TraceCorpus, TraceStoreError

    try:
        corpus = TraceCorpus.open(args.dir)
    except TraceStoreError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"{'entry':<12} {'requests':>12}  {'hours':>8}  {'chunks':>6}  digest")
    for name in corpus.names():
        row = corpus.describe(name)
        print(
            f"{name:<12} {row['requests']:>12,}  "
            f"{row['duration'] / 3600:8.2f}  {row['chunks']:>6}  "
            f"{row['digest'][:12]}"
        )
    return 0


def cmd_corpus_verify(args) -> int:
    from repro.traces.store import (
        StoreIntegrityError,
        TraceCorpus,
        TraceStoreError,
    )

    try:
        corpus = TraceCorpus.open(args.dir)
    except TraceStoreError as exc:
        print(exc, file=sys.stderr)
        return 2
    failures = 0
    for name in corpus.names():
        try:
            corpus.entry(name).verify()
        except (StoreIntegrityError, TraceStoreError, OSError) as exc:
            failures += 1
            print(f"{name:<12} FAILED: {exc}", file=sys.stderr)
            continue
        print(f"{name:<12} ok")
    return 1 if failures else 0


def _tune_one(args, durations, total_requests, span, model, goal, runner):
    """One (workload, goal) tuning by the selected method."""
    from repro.core.optimizer import ScrubParameterOptimizer
    from repro.core.search import SuccessiveHalvingSearch

    if args.method == "grid":
        return ScrubParameterOptimizer(
            durations, total_requests, span, model,
            max_slowdown=args.max_slowdown_ms / 1e3,
        ).optimize(goal, runner=runner)
    return SuccessiveHalvingSearch(
        durations, total_requests, span, model,
        max_slowdown=args.max_slowdown_ms / 1e3,
        seed=args.search_seed,
        keep_min=args.budget,
    ).search(goal, runner=runner).best


def _optimize_corpus(args) -> int:
    """Corpus-wide tuning table: one (threshold, size) row per entry."""
    import json

    from repro.analysis.service_model import ScrubServiceModel
    from repro.analysis.slowdown import SIM_METER
    from repro.traces.idle import idle_intervals_streaming
    from repro.traces.store import TraceCorpus, TraceStoreError

    try:
        corpus = TraceCorpus.open(args.corpus)
    except TraceStoreError as exc:
        print(exc, file=sys.stderr)
        return 2
    names = args.entries or corpus.names()
    for name in names:
        if name not in corpus:
            print(
                f"unknown corpus entry {name!r}; available: "
                f"{', '.join(corpus.names())}",
                file=sys.stderr,
            )
            return 2
    spec = _drive_spec(args.drive)
    if not args.json:
        print(f"measuring scrub service times on {spec.name}...")
    model = ScrubServiceModel.from_spec(spec, kernel=args.kernel)
    runner = _build_runner(args)
    payload = {
        "corpus": str(corpus.root),
        "drive": args.drive,
        "method": args.method,
        "budget": args.budget,
        "goals_ms": list(args.goals_ms),
        "entries": {},
    }
    if not args.json:
        print(
            f"{'entry':<12} {'goal':>8}  {'threshold':>10}  {'request':>8}  "
            f"{'scrub':>10}"
        )
    for name in names:
        stored = corpus.entry(name)
        row = corpus.describe(name)
        positioning = row.get("service_positioning", args.service_ms / 1e3)
        _, durations = idle_intervals_streaming(
            stored.iter_chunks(), positioning=positioning
        )
        entry_out = {
            "digest": stored.digest(),
            "requests": len(stored),
            "idle_intervals": int(len(durations)),
            "goals": {},
        }
        payload["entries"][name] = entry_out
        if len(durations) == 0:
            if not args.json:
                print(f"{name:<12} no idle intervals")
            continue
        for goal_ms in args.goals_ms:
            before = SIM_METER.snapshot()
            try:
                best = _tune_one(
                    args, durations, len(stored), stored.duration, model,
                    goal_ms / 1e3, runner,
                )
            except ValueError:
                if not args.json:
                    print(f"{name:<12} {goal_ms:6.2f}ms  unattainable")
                entry_out["goals"][f"{goal_ms:g}"] = None
                continue
            after = SIM_METER.snapshot()
            entry_out["goals"][f"{goal_ms:g}"] = {
                "threshold_ms": best.threshold * 1e3,
                "request_kb": best.request_bytes // 1024,
                "throughput_mbps": best.throughput_mbps,
                "achieved_slowdown_ms": best.achieved_slowdown * 1e3,
                "interval_evals": (
                    after["interval_evals"] - before["interval_evals"]
                ),
                "sims": after["sims"] - before["sims"],
            }
            if not args.json:
                print(
                    f"{name:<12} {goal_ms:6.2f}ms  "
                    f"{best.threshold * 1e3:8.1f}ms  "
                    f"{best.request_bytes // 1024:6d}KB  "
                    f"{best.throughput_mbps:8.2f}MB/s"
                )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif runner is not None and runner.cache is not None:
        print(
            f"sweep cache: {runner.cache.hits} hits, "
            f"{runner.cache.misses} misses ({runner.cache.root})"
        )
    return 0


def cmd_optimize(args) -> int:
    from repro.analysis.service_model import ScrubServiceModel
    from repro.analysis.slowdown import simulate_fixed_waiting
    from repro.traces.idle import idle_intervals_from_trace

    if args.budget < 1:
        raise SystemExit(f"--budget must be >= 1: {args.budget}")
    if getattr(args, "corpus", None):
        return _optimize_corpus(args)
    trace = _load_trace(args)
    _, durations = idle_intervals_from_trace(
        trace, positioning=args.service_ms / 1e3
    )
    if len(durations) == 0:
        print("no idle intervals found; nothing to optimise")
        return 1
    spec = _drive_spec(args.drive)
    print(f"measuring scrub service times on {spec.name}...")
    model = ScrubServiceModel.from_spec(spec, kernel=args.kernel)
    recorder = None
    if args.telemetry:
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
    runner = _build_runner(args, telemetry=recorder)
    print(f"{'goal':>8}  {'threshold':>10}  {'request':>8}  {'scrub':>10}")
    for goal_ms in args.goals_ms:
        try:
            best = _tune_one(
                args, durations, len(trace), trace.duration, model,
                goal_ms / 1e3, runner,
            )
        except ValueError:
            print(f"{goal_ms:6.2f}ms  unattainable on this workload")
            continue
        print(
            f"{goal_ms:6.2f}ms  {best.threshold * 1e3:8.1f}ms  "
            f"{best.request_bytes // 1024:6d}KB  "
            f"{best.throughput_mbps:8.2f}MB/s"
        )
    cfq = simulate_fixed_waiting(
        durations, 0.010, 65536, model, len(trace), trace.duration
    )
    print(
        f"CFQ-like baseline (10ms gate, 64KB): {cfq.throughput_mbps:.2f} MB/s "
        f"at {cfq.mean_slowdown * 1e3:.2f} ms mean slowdown"
    )
    if runner is not None and runner.cache is not None:
        print(
            f"sweep cache: {runner.cache.hits} hits, "
            f"{runner.cache.misses} misses ({runner.cache.root})"
        )
    if recorder is not None:
        from repro.telemetry import format_table

        print(format_table(recorder.metrics.snapshot(), title="sweep telemetry"))
    return 0


def cmd_throughput(args) -> int:
    from repro.analysis import standalone_scrub_throughput
    from repro.core import SequentialScrub, StaggeredScrub

    spec = _drive_spec(args.drive)
    if args.algorithm == "sequential":
        algorithm = SequentialScrub()
    else:
        algorithm = StaggeredScrub(args.regions)
    recorder = None
    if args.telemetry or args.trace_out:
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=True)
    rate = standalone_scrub_throughput(
        spec, algorithm, request_bytes=args.request_kb * 1024,
        horizon=args.horizon, delay=args.delay_ms / 1e3,
        telemetry=recorder, kernel=args.kernel,
    )
    full_scan_h = spec.capacity_bytes / rate / 3600 if rate else float("inf")
    print(
        f"{spec.name}: {args.algorithm} "
        f"({args.regions if args.algorithm == 'staggered' else '-'} regions), "
        f"{args.request_kb} KB requests -> {rate / 1e6:.1f} MB/s "
        f"(full scan in {full_scan_h:.1f} h)"
    )
    if recorder is not None:
        from repro.telemetry import format_table, write_chrome_trace

        if args.telemetry:
            print(format_table(recorder.metrics.snapshot(), title="run telemetry"))
        if args.trace_out:
            count = write_chrome_trace(
                args.trace_out,
                recorder.chrome_events(
                    process_name=f"{spec.name}:{args.algorithm}"
                ),
            )
            print(
                f"wrote {count} trace events to {args.trace_out} "
                f"(load in Perfetto or chrome://tracing)"
            )
    return 0


def cmd_mlet(args) -> int:
    from repro.analysis import standalone_scrub_throughput
    from repro.core import SequentialScrub, StaggeredScrub
    from repro.core.mlet import (
        generate_bursts,
        mean_latent_error_time,
        sector_visit_times,
    )

    spec = _drive_spec(args.drive)
    rng = np.random.default_rng(args.seed)
    bursts = generate_bursts(
        rng, args.sectors, count=3000, horizon=1e9,
        mean_length=args.burst_length, max_length=args.burst_length * 10,
    )
    print(f"{'order':<18}{'MB/s':>8}{'pass':>10}{'MLET':>10}")
    configs = [("sequential", lambda: SequentialScrub())] + [
        (f"staggered-{r}", lambda r=r: StaggeredScrub(r))
        for r in args.regions
    ]
    for label, factory in configs:
        rate = standalone_scrub_throughput(
            spec, factory(), request_bytes=64 * 1024, horizon=5.0
        )
        visits, pass_duration = sector_visit_times(
            factory(), args.sectors, 128, rate
        )
        mlet = mean_latent_error_time(visits, pass_duration, bursts)
        print(
            f"{label:<18}{rate / 1e6:>8.1f}{pass_duration:>9.1f}s{mlet:>9.1f}s"
        )
    return 0


def cmd_detect(args) -> int:
    from repro.analysis.detection import ALGORITHMS, detection_sweep_task
    from repro.parallel import SweepRunner

    model_params = {}
    if args.model == "bernoulli":
        model_params["per_sector_probability"] = args.error_rate
    else:
        model_params["inter_burst_mean"] = args.burst_mean
        model_params["in_burst_time_mean"] = args.burst_mean / 50.0
    for algorithm in args.algorithms:
        if algorithm not in ALGORITHMS:
            raise SystemExit(
                f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
            )
    fg_trace = None
    if args.trace or args.synthetic:
        if args.foreground:
            raise SystemExit(
                "detect: --trace/--synthetic and --foreground are both "
                "foreground sources; pass at most one"
            )
        if args.trace and args.synthetic:
            raise SystemExit(
                "detect: --trace and --synthetic are mutually exclusive"
            )
        # Loaded once here; SweepRunner ships it to workers zero-copy
        # through shared memory and keys the cache on its content digest.
        fg_trace = _load_trace(args)
    collect = bool(args.telemetry or args.trace_out)
    param_sets = [
        dict(
            drive=args.drive,
            cylinders=args.cylinders,
            algorithm=algorithm,
            regions=args.regions,
            model=args.model,
            model_params=model_params,
            horizon=args.horizon,
            seed=args.seed,
            cache_enabled=not args.no_cache,
            cache_bug=bug,
            foreground=args.foreground,
            trace=fg_trace,
            collect_telemetry=collect,
            kernel=args.kernel,
        )
        for algorithm in args.algorithms
        for bug in (False, True)
    ]
    runner = _build_runner(args) or SweepRunner(workers=0)
    results = runner.map(detection_sweep_task, param_sets)
    print(f"{_drive_spec(args.drive).name} (shrunk to {args.cylinders} cylinders), "
          f"model={args.model}, horizon={args.horizon}s, seed={args.seed}")
    print(
        f"{'policy':<11}{'verify':>8}{'inject':>8}{'detect':>8}{'scrub':>7}"
        f"{'fg':>5}{'masked':>8}{'missed':>8}{'remap':>7}{'MTTD':>9}  lifecycle"
    )
    for params, result in zip(param_sets, results):
        m = result.metrics
        mttd = (
            f"{m.mean_time_to_detection:8.2f}s"
            if m.mean_time_to_detection is not None
            else "      n/a"
        )
        verify = "cached" if params["cache_bug"] else "media"
        lifecycle = "complete" if m.lifecycle_complete else "INCOMPLETE"
        print(
            f"{result.algorithm:<11}{verify:>8}{m.injected:>8}{m.detected:>8}"
            f"{m.scrub_detected:>7}{m.foreground_detected:>5}"
            f"{m.cache_mask_events:>8}{m.missed_due_to_cache:>8}"
            f"{m.remapped:>7}{mttd}  {lifecycle}"
        )
    if args.telemetry:
        from repro.telemetry import format_table

        fleet = SweepRunner.merge_task_telemetry(results)
        print(
            format_table(
                fleet, title=f"fleet telemetry ({len(results)} runs, merged)"
            )
        )
    if args.trace_out:
        from repro.telemetry import with_pid, write_chrome_trace

        events = []
        for pid, (params, result) in enumerate(zip(param_sets, results)):
            if result.telemetry is None:
                continue
            verify = "cached" if params["cache_bug"] else "media"
            events.extend(
                with_pid(
                    result.telemetry["events"],
                    pid=pid,
                    process_name=f"{params['algorithm']} verify={verify}",
                )
            )
        count = write_chrome_trace(args.trace_out, events)
        print(
            f"wrote {count} trace events ({len(results)} runs) to "
            f"{args.trace_out} (load in Perfetto or chrome://tracing)"
        )
    return 0


def cmd_trace(args) -> int:
    if args.kernel == "vector":
        # The trace exporter's Recorder runs with wall_time=True and
        # attributes wall-clock spans to individual events; the vector
        # kernel retires timer batches in bulk, so per-event wall
        # attribution is meaningless there.  Fail fast rather than
        # silently recording garbage or falling back.
        from repro.sim.vector import UnsupportedKernelFeature

        raise UnsupportedKernelFeature(
            "repro trace records per-event wall-clock spans, which the "
            "vector kernel's batch retirement cannot attribute; "
            "use --kernel reference"
        )
    if args.trace and args.synthetic:
        print(
            "repro trace: --trace and --synthetic are both foreground "
            "sources and are mutually exclusive; pass at most one "
            "(or use --foreground for a closed-loop random reader).",
            file=sys.stderr,
        )
        return 2
    from repro.analysis.detection import shrunk_spec
    from repro.core import SequentialScrub, StaggeredScrub
    from repro.core.policies.device import WaitingScrubber
    from repro.core.scrubber import Scrubber
    from repro.disk.drive import Drive
    from repro.faults import MediaFaults, RemediationPolicy, build_model
    from repro.sched.cfq import CFQScheduler
    from repro.sched.device import BlockDevice
    from repro.sched.noop import NoopScheduler
    from repro.sched.request import PriorityClass
    from repro.sim import RandomStreams, Simulation
    from repro.telemetry import Recorder, format_table, write_chrome_trace
    from repro.telemetry.export import (
        error_log_records,
        request_log_records,
        write_jsonl,
    )
    from repro.workloads.replay import TraceReplayer
    from repro.workloads.synthetic import RandomReader

    spec = _drive_spec(args.drive)
    if args.cylinders:
        spec = shrunk_spec(spec, cylinders=args.cylinders)

    recorder = Recorder(wall_time=True)
    sim = Simulation(telemetry=recorder)
    drive = Drive(spec, cache_enabled=not args.no_cache)
    faults = None
    if args.inject:
        plan = build_model(
            "bursts",
            inter_burst_mean=args.burst_mean,
            in_burst_time_mean=args.burst_mean / 50.0,
        ).generate(drive.total_sectors, args.horizon, args.seed)
        faults = MediaFaults(plan)
        drive.install_faults(faults)
    scheduler = (
        NoopScheduler() if args.algorithm == "waiting" else CFQScheduler()
    )
    device = BlockDevice(
        sim, drive, scheduler, max_log_records=args.max_log_records
    )

    if args.trace or args.synthetic:
        TraceReplayer(sim, device, _load_trace(args)).start()
    elif args.foreground:
        streams = RandomStreams(seed=args.seed)
        RandomReader(
            sim, device, streams.get("foreground"),
            think_mean=args.think_ms / 1e3,
        ).start()

    if args.algorithm == "staggered":
        algorithm = StaggeredScrub(regions=args.regions)
    else:
        algorithm = SequentialScrub()
    remediation = RemediationPolicy() if args.inject else None
    if args.algorithm == "waiting":
        scrubber = WaitingScrubber(
            sim, device, algorithm,
            request_bytes=args.request_kb * 1024,
            remediation=remediation,
        )
    else:
        scrubber = Scrubber(
            sim, device, algorithm,
            request_bytes=args.request_kb * 1024,
            priority=PriorityClass.IDLE,
            remediation=remediation,
        )
    process = scrubber.start()
    sim.run(until=args.horizon)
    if process.is_alive:
        # Drain in-flight scrub work so no request is left mid-lifecycle.
        scrubber.request_stop()
        sim.run(until=process)
    if faults is not None:
        faults.finalize(args.horizon)

    count = write_chrome_trace(
        args.out,
        recorder.chrome_events(process_name=f"{spec.name}:{args.algorithm}"),
    )
    # Operational losses belong in the table, not in footnotes: surface
    # the request-log ring overflow and cache segment evictions as
    # first-class counters so a truncated log or a thrashing cache is
    # visible in the same place as every other metric.
    recorder.metrics.counter("device.log_dropped").inc(device.log.dropped)
    recorder.metrics.counter("drive.cache_evictions").inc(
        drive.cache.evictions
    )
    print(format_table(recorder.metrics.snapshot(), title="run telemetry"))
    print(
        f"wrote {count} trace events to {args.out} "
        f"(load in Perfetto or chrome://tracing)"
    )
    if device.log.dropped:
        print(
            f"request log ring buffer dropped {device.log.dropped} oldest "
            f"records (raise --max-log-records to keep more)"
        )
    if args.jsonl:
        written = write_jsonl(
            f"{args.jsonl}.requests.jsonl", request_log_records(device.log)
        )
        print(f"wrote {written} request records to {args.jsonl}.requests.jsonl")
        if faults is not None:
            written = write_jsonl(
                f"{args.jsonl}.errors.jsonl", error_log_records(faults.log)
            )
            print(f"wrote {written} error records to {args.jsonl}.errors.jsonl")
    return 0


def cmd_verify(args) -> int:
    from repro.verify import fuzz, run_selftest

    status = 0
    if args.self_test:
        results = run_selftest()
        width = max(len(r.name) for r in results)
        for r in results:
            verdict = "caught" if r.caught else "MISSED"
            clean = "" if r.clean_after else "  [patch leaked!]"
            print(f"  {r.name:<{width}}  {verdict}{clean}")
            if not (r.caught and r.clean_after):
                status = 1
                for line in r.detail.splitlines():
                    print(f"    {line}")
        planted = len(results)
        caught = sum(1 for r in results if r.caught and r.clean_after)
        print(f"self-test: {caught}/{planted} planted bugs caught")
        if args.configs <= 0:
            return status

    # Live \r progress only on a terminal; CI logs get one line per
    # visited quartile instead of 200 carriage returns.
    interactive = sys.stderr.isatty()

    def progress(index: int, total: int) -> None:
        if interactive:
            print(f"  fuzz config {index + 1}/{total}", end="\r",
                  file=sys.stderr)
            sys.stderr.flush()
        elif total >= 8 and index % max(1, total // 4) == 0:
            print(f"  fuzz config {index + 1}/{total}", file=sys.stderr)

    axes = tuple(args.axes) if args.axes else None
    report = fuzz(
        seed=args.seed,
        n=args.configs,
        axes=axes,
        parallel_workers=args.workers,
        progress=progress,
        kernel=args.kernel,
    )
    print(report.summary())
    for failure in report.failures:
        print()
        print(failure.describe())
    return status or (0 if report.ok else 1)


def cmd_bench(args) -> int:
    import os

    # benchmarks/ is not a package; locate it by walking up from the
    # working directory (a checkout runs `repro bench` from anywhere
    # inside the tree) and import run_perf from there.
    probe = os.path.abspath(os.getcwd())
    bench_dir = None
    while True:
        candidate = os.path.join(probe, "benchmarks")
        if os.path.isfile(os.path.join(candidate, "run_perf.py")):
            bench_dir = candidate
            break
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    if bench_dir is None:
        raise SystemExit(
            "repro bench: could not find benchmarks/run_perf.py above "
            f"{os.getcwd()}; run from inside a repository checkout"
        )
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import run_perf

    argv = []
    if args.output:
        argv += ["--output", args.output]
    if args.quick:
        argv.append("--quick")
    return run_perf.main(argv)


def _parse_policy(text: str, index: int):
    """``alg[:regions][@period_hours]`` -> ScrubPolicySpec.

    Examples: ``sequential``, ``staggered:64``, ``sequential@336``,
    ``staggered:128@168``.  The policy name encodes the parameters so
    repeated flags stay distinguishable in the output table.
    """
    from repro.fleet import ScrubPolicySpec

    spec_text = text.strip()
    period_hours = 168.0
    if "@" in spec_text:
        spec_text, _, period_text = spec_text.partition("@")
        try:
            period_hours = float(period_text)
        except ValueError:
            raise SystemExit(f"--policy {text!r}: bad period {period_text!r}")
    regions = 128
    if ":" in spec_text:
        spec_text, _, regions_text = spec_text.partition(":")
        try:
            regions = int(regions_text)
        except ValueError:
            raise SystemExit(f"--policy {text!r}: bad regions {regions_text!r}")
    algorithm = spec_text or "sequential"
    if algorithm not in ("sequential", "staggered"):
        raise SystemExit(
            f"--policy {text!r}: algorithm must be sequential|staggered"
        )
    if algorithm == "staggered":
        name = f"staggered{regions}-{period_hours:g}h"
    else:
        name = f"sequential-{period_hours:g}h"
    try:
        return ScrubPolicySpec(
            name=name, algorithm=algorithm, regions=regions,
            period_hours=period_hours,
        )
    except ValueError as exc:
        raise SystemExit(f"--policy {text!r}: {exc}")


def _campaign_spec_from_args(args, command: str):
    """Build a validated CampaignSpec from the shared fleet/submit flags."""
    from repro.fleet import CampaignSpec, DriveClass, FleetSpec

    policy_texts = args.policy or ["sequential@168", "staggered:128@168"]
    policies = tuple(
        _parse_policy(text, index) for index, text in enumerate(policy_texts)
    )
    names = [policy.name for policy in policies]
    if len(set(names)) != len(names):
        raise SystemExit(f"{command}: duplicate policies after parsing: {names}")
    try:
        fleet = FleetSpec(
            groups=args.groups,
            disks_per_group=args.disks,
            raid_level=args.raid,
            mttr_hours=args.mttr_hours,
            spare_delay_hours=args.spare_delay_hours,
            classes=(
                DriveClass(
                    preset=args.drive,
                    mttf_hours=args.mttf_hours,
                    lse_burst_rate_per_hour=args.lse_rate,
                ),
            ),
        )
        return CampaignSpec(
            fleet=fleet,
            policies=policies,
            mission_years=args.mission_years,
            seed=args.seed,
            shards=args.shards,
        )
    except ValueError as exc:
        raise SystemExit(f"{command}: {exc}")


def cmd_fleet(args) -> int:
    import json
    import os

    from repro.fleet import CampaignRunner, campaign_digest
    from repro.parallel.supervise import RetryPolicy
    from repro.verify import InvariantViolation

    if args.resume and not args.journal:
        raise SystemExit("fleet: --resume needs --journal DIR to resume from")
    if args.trace_out and not (args.monitor or args.monitor_dir):
        raise SystemExit(
            "fleet: --trace-out needs --monitor (the span recorder lives "
            "in the campaign monitor)"
        )
    if args.resume and not os.path.isfile(
        os.path.join(args.journal, "manifest.json")
    ):
        raise SystemExit(
            f"fleet: --resume but {args.journal} has no manifest.json "
            "(nothing to resume; drop --resume to start fresh)"
        )

    spec = _campaign_spec_from_args(args, "fleet")
    fleet = spec.fleet
    policies = spec.policies

    recorder = None
    if args.telemetry:
        from repro.telemetry import Recorder

        recorder = Recorder(wall_time=False)
    monitor = None
    if args.monitor or args.monitor_dir:
        from repro.obs import CampaignMonitor

        obs_dir = args.monitor_dir or (
            os.path.join(args.journal, "obs") if args.journal else "fleet-obs"
        )

        def _progress(line: str) -> None:
            # Progress goes to stderr so result tables and --json stay
            # clean for pipelines.
            print(line, file=sys.stderr)

        monitor = CampaignMonitor(
            obs_dir, interval=args.status_interval, on_progress=_progress
        )
    retry = RetryPolicy(max_attempts=args.max_attempts, seed=args.seed)
    runner = CampaignRunner(
        spec,
        journal_dir=args.journal,
        workers=args.workers,
        task_timeout=args.task_timeout,
        retry=retry,
        telemetry=recorder,
        monitor=monitor,
    )
    print(
        f"campaign {campaign_digest(spec)[:12]}: "
        f"{fleet.groups:,} x {args.raid} groups "
        f"({fleet.drives:,} drives), {len(policies)} policies, "
        f"{args.mission_years:g}y mission, {spec.shards} shards"
        + (f", journal {args.journal}" if args.journal else "")
    )
    try:
        result = runner.run()
    except InvariantViolation as exc:
        print(f"fleet: invariant violation: {exc}", file=sys.stderr)
        return 1

    if result.shards_resumed:
        print(
            f"resumed {result.shards_resumed}/{result.shards_total} shards "
            f"from journal checkpoints"
        )
    print(
        f"{'policy':<22}{'window':>8}{'losses':>8}{'MTTDL':>10}"
        f"{'95% CI':>20}{'P(loss)':>9}{'closed-form':>13}"
    )
    for p in result.policies:
        ci_low = p.mttdl_ci_hours[0] / 8760.0
        ci_high = p.mttdl_ci_hours[1] / 8760.0
        ci = (
            f"[{ci_low:6.1f}, {ci_high:6.1f}]y"
            if np.isfinite(ci_high)
            else f"[{ci_low:6.1f},    inf]y"
        )
        mttdl = (
            f"{p.mttdl_years:8.1f}y" if np.isfinite(p.mttdl_years) else "     inf"
        )
        cf = p.closed_form_mttdl_hours / 8760.0
        cf_txt = f"{cf:10.1f}y" if np.isfinite(cf) else "       inf"
        print(
            f"{p.name:<22}{p.latent_window_hours:>7.1f}h{p.losses:>8}"
            f"{mttdl:>10}{ci:>20}{p.p_loss_mission:>9.4f}{cf_txt:>13}"
        )
    print(
        f"completeness {result.completeness:.3f} "
        f"({result.shards_completed}/{result.shards_total} shards"
        + (f", {result.shards_failed} failed: {result.failed_shards}"
           if result.shards_failed else "")
        + ")"
    )
    if result.supervision:
        s = result.supervision
        print(
            f"supervision: {s['attempts']} attempts, {s['retries']} retries, "
            f"{s['timeouts']} timeouts, {s['worker_deaths']} worker deaths, "
            f"{s['speculated']} speculative re-dispatches"
        )
    if monitor is not None:
        status = monitor.status()
        workers_info = status["workers"]
        print(
            f"monitor: utilization {workers_info['utilization']:.2f} "
            f"over {workers_info['configured']} workers, "
            f"{status['throughput']['drive_years']:.0f} drive-years "
            f"({status['throughput']['drive_years_per_s']:.0f}/s)"
        )
        print(f"{'shard':>6}{'state':>10}{'att':>5}{'wall':>9}{'rss':>10}")
        for row in status["per_shard"]:
            duration = row.get("duration_s")
            wall = f"{duration:7.2f}s" if duration is not None else "      -"
            rss = row.get("peak_rss_kb") or 0
            rss_txt = f"{rss / 1024.0:8.1f}M" if rss else "        -"
            print(
                f"{row['index']:>6}{row['state']:>10}"
                f"{row['attempts']:>5}{wall:>9}{rss_txt:>10}"
            )
        print(
            f"monitor: wrote {monitor.status_path}, {monitor.events_path}, "
            f"{monitor.trace_path}, {monitor.summary_path}"
        )
        if args.trace_out:
            monitor.write_trace(args.trace_out)
            print(f"wrote span trace to {args.trace_out}")
    if args.prom_out:
        from repro.obs import write_textfile

        write_textfile(args.prom_out, result.telemetry)
        print(f"wrote Prometheus textfile to {args.prom_out}")
    if args.json:
        payload = result.metrics_dict()
        payload["campaign_digest"] = campaign_digest(spec)
        payload["shards_resumed"] = result.shards_resumed
        payload["failed_shards"] = result.failed_shards
        payload["supervision"] = result.supervision
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote fleet metrics to {args.json}")
    if recorder is not None:
        from repro.telemetry import format_table

        print(format_table(recorder.metrics.snapshot(), title="campaign telemetry"))
    return 0 if result.shards_failed == 0 else 3


def cmd_report(args) -> int:
    import os

    from repro.obs import build_report, load_obs_dir

    try:
        data = load_obs_dir(args.obs_dir)
    except FileNotFoundError as exc:
        raise SystemExit(f"report: {exc}")
    path = build_report(args.obs_dir, out_path=args.out)
    status = data.get("status") or {}
    state = (data.get("summary") or {}).get("state") or status.get("state")
    progress = status.get("progress_live", status.get("progress"))
    detail = f", state {state}" if state else ""
    if progress is not None:
        detail += f", progress {progress:.0%}"
    print(
        f"wrote {path} ({os.path.getsize(path):,} bytes{detail}, "
        f"{len(data.get('events') or [])} events)"
    )
    return 0


def cmd_serve(args) -> int:
    import time

    from repro.service import CampaignService

    service = CampaignService(
        args.data_dir,
        host=args.host,
        port=args.port,
        max_jobs=args.max_jobs,
        workers=args.workers,
        client_quota=args.client_quota,
        task_timeout=args.task_timeout,
        max_attempts=args.max_attempts,
        status_interval=args.status_interval,
    )
    recovered = service.queue.recovered
    if recovered:
        print(
            f"serve: re-queued {len(recovered)} job(s) left running by a "
            f"previous service: {', '.join(j[:12] for j in recovered)}"
        )
    service.start()
    counts = service.queue.counts()
    print(
        f"serve: listening on {service.url} "
        f"(data {service.data_dir}, {args.max_jobs} campaign slot(s), "
        f"{args.workers} worker(s)/campaign); "
        f"{counts['queued']} queued, {counts['done']} done"
    )
    try:
        while True:
            time.sleep(3600.0)
    except KeyboardInterrupt:
        print("serve: draining (running campaigns checkpoint and re-queue)")
        return 0
    finally:
        service.stop()


def cmd_submit(args) -> int:
    import json

    from repro.fleet import spec_to_dict
    from repro.service import ServiceClient, ServiceTimeout

    if args.status:
        return cmd_submit_status(args)
    if args.spec_json:
        try:
            with open(args.spec_json, encoding="utf-8") as handle:
                spec_dict = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"submit: cannot read {args.spec_json}: {exc}")
    else:
        spec_dict = spec_to_dict(_campaign_spec_from_args(args, "submit"))
    client = ServiceClient(args.url, timeout=args.timeout, client=args.client)
    try:
        status, payload = client.submit(spec_dict)
    except OSError as exc:
        raise SystemExit(f"submit: cannot reach {args.url}: {exc}")
    if status not in (200, 201):
        raise SystemExit(
            f"submit: rejected ({status}): {payload.get('error', payload)}"
        )
    job = payload["job"]
    verb = "submitted" if payload["created"] else "already known"
    print(
        f"submit: campaign {job['id'][:12]} {verb} "
        f"(state {job['state']}, {job['shards_total']} shards)"
    )
    if not args.wait:
        print(f"submit: poll with: repro submit --url {args.url} "
              f"--status {job['id']}")
        return 0
    try:
        final = client.wait(job["id"], timeout=args.timeout)
    except ServiceTimeout as exc:
        raise SystemExit(f"submit: {exc}")
    print(f"submit: campaign {job['id'][:12]} -> {final['state']}")
    if final["state"] == "done":
        metrics = final["result"]["metrics"]
        print(f"{'policy':<22}{'losses':>8}{'P(loss)':>10}")
        for policy in metrics["policies"]:
            print(
                f"{policy['name']:<22}{policy['losses']:>8}"
                f"{policy['p_loss_mission']:>10.4f}"
            )
        print(f"completeness {metrics['completeness']:.3f}")
    elif final.get("error"):
        print(f"submit: {final['error']}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(final, handle, indent=2, sort_keys=True)
        print(f"wrote job record to {args.json}")
    return 0 if final["state"] == "done" else 3


def cmd_submit_status(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        status, payload = client.job(args.status)
    except OSError as exc:
        raise SystemExit(f"submit: cannot reach {args.url}: {exc}")
    if status != 200:
        raise SystemExit(
            f"submit: {status}: {payload.get('error', payload)}"
        )
    job = payload["job"]
    print(
        f"campaign {job['id'][:12]}: {job['state']}, "
        f"{job['attempts']} attempt(s), client {job['client']}"
    )
    live = payload.get("status")
    if live:
        progress = live.get("progress_live", live.get("progress"))
        if progress is not None:
            print(f"progress {progress:.0%}")
    if job.get("error"):
        print(f"error: {job['error']}")
    return 0


def _add_campaign_spec_flags(parser: argparse.ArgumentParser) -> None:
    """Flags that define a campaign spec, shared by fleet and submit."""
    parser.add_argument("--groups", type=int, default=10_000)
    parser.add_argument("--disks", type=int, default=8, help="drives per group")
    parser.add_argument(
        "--raid", choices=("raid5", "raid1", "none"), default="raid5"
    )
    parser.add_argument("--drive", default="ultrastar", help="drive preset")
    parser.add_argument("--mttf-hours", type=float, default=1.0e5)
    parser.add_argument("--mttr-hours", type=float, default=24.0)
    parser.add_argument("--spare-delay-hours", type=float, default=4.0)
    parser.add_argument(
        "--lse-rate", type=float, default=1e-4,
        help="latent-sector-error bursts per drive-hour",
    )
    parser.add_argument(
        "--policy", action="append",
        default=None, metavar="ALG[:REGIONS][@PERIOD_H]",
        help="scrub policy under evaluation (repeatable; default "
        "sequential@168 and staggered:128@168)",
    )
    parser.add_argument("--mission-years", type=float, default=10.0)
    parser.add_argument("--shards", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)


def _add_kernel_flag(parser: argparse.ArgumentParser, default="reference") -> None:
    from repro.sim import KERNELS

    parser.add_argument(
        "--kernel", choices=KERNELS, default=default,
        help="simulation engine backend (default %(default)s); both are "
        "bit-identical, and an unsupported scenario under 'vector' "
        "fails with exit code 2 instead of falling back",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Practical Scrubbing (DSN 2012) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="write a synthetic trace to CSV")
    generate.add_argument("--name", help="catalog trace name")
    generate.add_argument("--output", "-o", help="output CSV path (.gz ok)")
    generate.add_argument("--duration", type=float, default=4 * 3600.0)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--list", action="store_true", help="list catalog entries")
    generate.set_defaults(func=cmd_generate)

    corpus = sub.add_parser(
        "corpus", help="build / inspect an on-disk trace corpus"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_build = corpus_sub.add_parser(
        "build", help="generate catalog traces into a columnar corpus"
    )
    corpus_build.add_argument("--out", "-o", required=True, metavar="DIR")
    corpus_build.add_argument(
        "--names", nargs="+", default=None, metavar="NAME",
        help="catalog entries to include (default: all)",
    )
    corpus_build.add_argument("--duration", type=float, default=None)
    corpus_build.add_argument("--seed", type=int, default=0)
    corpus_build.add_argument(
        "--repetitions", type=int, default=1,
        help="tile each trace N times end-to-end (multi-GB corpora)",
    )
    corpus_build.add_argument(
        "--chunk-requests", type=int, default=None,
        help="requests per on-disk chunk (default 1Mi = 25MiB chunks)",
    )
    corpus_build.set_defaults(func=cmd_corpus_build)
    corpus_list = corpus_sub.add_parser(
        "list", help="list a corpus's entries"
    )
    corpus_list.add_argument("dir", metavar="DIR")
    corpus_list.set_defaults(func=cmd_corpus_list)
    corpus_verify = corpus_sub.add_parser(
        "verify", help="re-hash every chunk of every entry"
    )
    corpus_verify.add_argument("dir", metavar="DIR")
    corpus_verify.set_defaults(func=cmd_corpus_verify)

    analyze = sub.add_parser("analyze", help="workload statistics (Section V-A)")
    _add_trace_source(analyze)
    analyze.add_argument(
        "--service-ms", type=float, default=4.0,
        help="nominal per-request positioning time for idle extraction",
    )
    analyze.set_defaults(func=cmd_analyze)

    optimize = sub.add_parser(
        "optimize", help="optimal (threshold, size) per slowdown goal"
    )
    _add_trace_source(optimize, corpus=True)
    optimize.add_argument(
        "--service-ms", type=float, default=4.0,
        help="nominal per-request positioning time for idle extraction",
    )
    optimize.add_argument("--drive", default="ultrastar")
    optimize.add_argument(
        "--goals-ms", type=float, nargs="+", default=[1.0, 2.0, 4.0]
    )
    optimize.add_argument("--max-slowdown-ms", type=float, default=50.4)
    optimize.add_argument(
        "--method", choices=("search", "grid"), default="search",
        help="tuning method: successive-halving search (default) or the "
        "exhaustive per-size grid",
    )
    optimize.add_argument(
        "--budget", type=int, default=3, metavar="N",
        help="search budget: arms kept through the final full-horizon "
        "rung (higher = closer to the exhaustive grid; default 3)",
    )
    optimize.add_argument(
        "--search-seed", type=int, default=0,
        help="seed for the search's rung subsampling (same seed = "
        "bit-identical run)",
    )
    optimize.add_argument(
        "--entries", nargs="+", metavar="NAME", default=None,
        help="with --corpus: tune only these catalog entries",
    )
    optimize.add_argument(
        "--json", action="store_true",
        help="with --corpus: emit the tuning table as sorted-key JSON",
    )
    optimize.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the size sweep (0 = in-process serial)",
    )
    optimize.add_argument(
        "--cache", action="store_true",
        help="cache sweep results on disk ($REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
    )
    optimize.add_argument(
        "--cache-dir", default=None,
        help="cache directory (implies --cache)",
    )
    optimize.add_argument(
        "--telemetry", action="store_true",
        help="print a sweep-telemetry metrics table after the results",
    )
    _add_kernel_flag(optimize)
    optimize.set_defaults(func=cmd_optimize)

    throughput = sub.add_parser("throughput", help="standalone scrub throughput")
    throughput.add_argument("--drive", default="ultrastar")
    throughput.add_argument(
        "--algorithm", choices=("sequential", "staggered"), default="sequential"
    )
    throughput.add_argument("--regions", type=int, default=128)
    throughput.add_argument("--request-kb", type=int, default=64)
    throughput.add_argument("--delay-ms", type=float, default=0.0)
    throughput.add_argument("--horizon", type=float, default=10.0)
    throughput.add_argument(
        "--telemetry", action="store_true",
        help="print a metrics summary table for the run",
    )
    throughput.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON of the run",
    )
    _add_kernel_flag(throughput)
    throughput.set_defaults(func=cmd_throughput)

    detect = sub.add_parser(
        "detect", help="LSE detection/remediation lifecycle per scrub policy",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "cache-bug interaction:\n"
            "  Each policy is always run twice, as a built-in A/B over the\n"
            "  ATA VERIFY-from-cache firmware bug (paper Fig. 1): the\n"
            "  'verify=media' row forces the bug off, 'verify=cached'\n"
            "  forces it on, with identical geometry and scrub schedule.\n"
            "  --no-drive-cache disables the drive cache itself, which\n"
            "  suppresses the bug's masking channel on BOTH rows — use it\n"
            "  to confirm the masked/missed columns go to zero, not to\n"
            "  pick one side of the A/B."
        ),
    )
    detect.add_argument("--drive", default="caviar")
    detect.add_argument(
        "--cylinders", type=int, default=50,
        help="shrink the drive to this many cylinders for a fast run",
    )
    detect.add_argument(
        "--algorithms", nargs="+",
        default=["sequential", "staggered", "waiting"],
    )
    detect.add_argument("--regions", type=int, default=16)
    detect.add_argument(
        "--model", choices=("bernoulli", "bursts"), default="bursts"
    )
    detect.add_argument(
        "--error-rate", type=float, default=1e-3,
        help="bernoulli per-sector error probability",
    )
    detect.add_argument(
        "--burst-mean", type=float, default=0.5,
        help="mean seconds between error bursts (bursts model)",
    )
    detect.add_argument("--horizon", type=float, default=5.0)
    detect.add_argument("--seed", type=int, default=3)
    detect.add_argument(
        "--no-drive-cache", dest="no_cache", action="store_true",
        help="disable the drive cache (suppresses the ATA bug entirely)",
    )
    detect.add_argument(
        "--foreground", action="store_true",
        help="run a closed-loop random reader alongside the scrubber",
    )
    detect.add_argument(
        "--trace", metavar="FILE", default=None,
        help="replay this CSV trace as the foreground workload "
        "(mutually exclusive with --foreground)",
    )
    detect.add_argument(
        "--synthetic", metavar="NAME", default=None,
        help="replay a synthetic catalog trace as the foreground workload",
    )
    detect.add_argument(
        "--duration", type=float, default=60.0,
        help="synthetic foreground trace length in seconds",
    )
    detect.add_argument(
        "--max-requests", type=int, default=None,
        help="stop parsing a --trace CSV after this many requests",
    )
    detect.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the sweep (0 = in-process serial)",
    )
    detect.add_argument(
        "--cache", action="store_true",
        help="cache sweep results on disk ($REPRO_CACHE_DIR or ~/.cache/repro/sweeps)",
    )
    detect.add_argument(
        "--cache-dir", default=None, help="cache directory (implies --cache)"
    )
    detect.add_argument(
        "--telemetry", action="store_true",
        help="record every run and print a merged fleet metrics table",
    )
    detect.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write one Chrome trace JSON with a process row per run",
    )
    _add_kernel_flag(detect)
    detect.set_defaults(func=cmd_detect)

    trace = sub.add_parser(
        "trace",
        help="record a scrub scenario and export a Chrome trace + metrics",
    )
    trace.add_argument("--drive", default="ultrastar")
    trace.add_argument(
        "--cylinders", type=int, default=0,
        help="shrink the drive to this many cylinders (0 = full geometry; "
        "shrinking makes --inject runs finish whole passes quickly)",
    )
    trace.add_argument(
        "--algorithm", choices=("sequential", "staggered", "waiting"),
        default="sequential",
    )
    trace.add_argument("--regions", type=int, default=16)
    trace.add_argument("--request-kb", type=int, default=64)
    trace.add_argument("--horizon", type=float, default=2.0)
    trace.add_argument("--seed", type=int, default=0)
    # Foreground sources: checked by hand in cmd_trace (not an argparse
    # group) so the conflict produces a clear message and exit code 2.
    trace.add_argument(
        "--trace", metavar="FILE", default=None,
        help="replay this CSV trace as the foreground workload",
    )
    trace.add_argument(
        "--synthetic", metavar="NAME", default=None,
        help="replay a synthetic catalog trace as the foreground workload",
    )
    trace.add_argument(
        "--duration", type=float, default=60.0,
        help="synthetic foreground trace length in seconds",
    )
    trace.add_argument(
        "--max-requests", type=int, default=None,
        help="stop parsing a --trace CSV after this many requests",
    )
    trace.add_argument(
        "--foreground", action="store_true",
        help="run a closed-loop random reader alongside the scrubber",
    )
    trace.add_argument(
        "--think-ms", type=float, default=50.0,
        help="mean think time of the --foreground reader",
    )
    trace.add_argument(
        "--inject", action="store_true",
        help="inject bursty latent sector errors and enable remediation",
    )
    trace.add_argument(
        "--burst-mean", type=float, default=0.5,
        help="mean seconds between injected error bursts",
    )
    trace.add_argument(
        "--no-drive-cache", dest="no_cache", action="store_true",
        help="disable the drive cache",
    )
    trace.add_argument(
        "--max-log-records", type=int, default=None,
        help="cap the request log as a ring buffer of this many records",
    )
    trace.add_argument(
        "--out", "-o", default="trace.json",
        help="Chrome trace-event JSON output path (default trace.json)",
    )
    trace.add_argument(
        "--jsonl", metavar="PREFIX", default=None,
        help="also write PREFIX.requests.jsonl (and PREFIX.errors.jsonl "
        "with --inject) for offline analysis",
    )
    _add_kernel_flag(trace)
    trace.set_defaults(func=cmd_trace)

    verify = sub.add_parser(
        "verify",
        help="fuzz seeded configs through the correctness harness",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Each fuzzed configuration runs under the runtime invariant\n"
            "checker and through the differential oracle's axes (fast\n"
            "kernel vs instrumented twin, reference vs vector engine\n"
            "backend, array vs record replay feed, telemetry on vs off,\n"
            "serial vs shm-parallel sweep, campaign monitor on vs off).\n"
            "Any failing configuration is minimised and reprinted as a\n"
            "copy-pasteable repro snippet.  The same --seed always draws\n"
            "the same configurations."
        ),
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--configs", type=int, default=50,
        help="number of fuzzed configurations (default 50)",
    )
    verify.add_argument(
        "--axes", nargs="+", default=None,
        choices=(
            "kernel-twin", "kernel-backend", "feed", "telemetry",
            "parallel", "monitor",
        ),
        help="restrict the differential oracle to these axes",
    )
    verify.add_argument(
        "--workers", type=int, default=2,
        help="pool size for the serial-vs-parallel axis (default 2)",
    )
    verify.add_argument(
        "--self-test", action="store_true",
        help="first plant each known seeded bug and assert it is caught "
        "(pass --configs 0 to run the self-test alone)",
    )
    from repro.sim import KERNELS

    verify.add_argument(
        "--kernel", choices=KERNELS, default=None,
        help="force every fuzzed config onto one engine backend "
        "(default: drawn per config; the kernel-backend axis still "
        "compares both regardless)",
    )
    verify.set_defaults(func=cmd_verify)

    mlet = sub.add_parser("mlet", help="MLET by scrub order under bursty LSEs")
    mlet.add_argument("--drive", default="ultrastar")
    mlet.add_argument("--sectors", type=int, default=1_000_000)
    mlet.add_argument("--burst-length", type=float, default=4000.0)
    mlet.add_argument("--regions", type=int, nargs="+", default=[16, 64, 128])
    mlet.add_argument("--seed", type=int, default=0)
    mlet.set_defaults(func=cmd_mlet)

    bench = sub.add_parser(
        "bench", help="run the performance regression suite (BENCH JSON)"
    )
    bench.add_argument(
        "--output", "-o", default=None,
        help="benchmark JSON output path (default benchmarks/../BENCH_PR6.json)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="scaled-down event counts for a smoke run (no speedup gate)",
    )
    bench.set_defaults(func=cmd_bench)

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale MTTDL / P(loss) campaign with checkpoint/resume",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "policies:\n"
            "  --policy alg[:regions][@period_hours], repeatable.  Examples:\n"
            "    --policy sequential@168 --policy staggered:128@168\n"
            "  Each policy's latent window (mean latent error time) is\n"
            "  computed from its real sector-visit schedule.\n"
            "resume:\n"
            "  With --journal DIR every completed shard is checkpointed\n"
            "  durably; re-running with the same spec and --resume skips\n"
            "  checkpointed shards and reproduces the interrupted campaign\n"
            "  bit-identically.  Exit code 3 means the campaign completed\n"
            "  degraded (completeness < 1 after retries)."
        ),
    )
    _add_campaign_spec_flags(fleet)
    fleet.add_argument(
        "--workers", type=int, default=0,
        help="supervised worker processes (0/1 = serial in-process)",
    )
    fleet.add_argument(
        "--journal", metavar="DIR", default=None,
        help="durable checkpoint directory (enables resume)",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="require an existing journal and skip its completed shards",
    )
    fleet.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-shard deadline in seconds (hung workers are killed "
        "and the shard retried)",
    )
    fleet.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per shard before it is abandoned (default 3)",
    )
    fleet.add_argument(
        "--telemetry", action="store_true",
        help="print campaign/supervision/cache counters",
    )
    fleet.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the fleet metrics as JSON",
    )
    fleet.add_argument(
        "--monitor", action="store_true",
        help="attach a CampaignMonitor: live progress lines, status.json, "
        "events.jsonl, span trace and run summary in the obs directory",
    )
    fleet.add_argument(
        "--monitor-dir", metavar="DIR", default=None,
        help="observability output directory (implies --monitor; default "
        "<journal>/obs, or ./fleet-obs without a journal)",
    )
    fleet.add_argument(
        "--status-interval", type=float, default=2.0,
        help="seconds between status.json rewrites / progress lines "
        "(default %(default)s)",
    )
    fleet.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="also write the campaign span trace (Perfetto JSON) here",
    )
    fleet.add_argument(
        "--prom-out", metavar="FILE", default=None,
        help="write the final merged telemetry snapshot as a Prometheus "
        "textfile (node_exporter textfile-collector format)",
    )
    fleet.set_defaults(func=cmd_fleet)

    report = sub.add_parser(
        "report",
        help="render a self-contained HTML report from a monitor obs dir",
        description=(
            "Read the status.json / summary.json / events.jsonl written by "
            "'repro fleet --monitor' (or a CampaignMonitor) and render a "
            "single-file HTML run report with KPIs, the per-policy "
            "reliability table, shard-duration histogram and kernel-phase "
            "breakdown.  Works on live and finished campaigns alike."
        ),
    )
    report.add_argument(
        "obs_dir", metavar="OBS_DIR",
        help="observability directory (the fleet --monitor-dir)",
    )
    report.add_argument(
        "--out", "-o", metavar="FILE", default=None,
        help="output HTML path (default <OBS_DIR>/report.html)",
    )
    report.set_defaults(func=cmd_report)

    serve = sub.add_parser(
        "serve",
        help="campaign orchestration service: async job API over the "
        "fleet runner",
        description=(
            "Run the orchestration service: a persistent content-addressed "
            "job queue (duplicate submissions are answered from the "
            "existing job), a fair-share scheduler feeding supervised "
            "CampaignRunner slots, and an HTTP API — POST/GET /campaigns, "
            "NDJSON event streaming, HTML reports, DELETE to cancel.  "
            "Kill -9 the service and restart it on the same --data-dir: "
            "interrupted campaigns re-queue and resume from their shard "
            "checkpoints bit-identically."
        ),
    )
    serve.add_argument(
        "--data-dir", metavar="DIR", default="service-data",
        help="service state root: job records + per-campaign journals "
        "(default %(default)s)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 = ephemeral; default %(default)s)",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=1,
        help="campaigns executing concurrently (default %(default)s)",
    )
    serve.add_argument(
        "--workers", type=int, default=0,
        help="worker processes per campaign (0/1 = serial shards)",
    )
    serve.add_argument(
        "--client-quota", type=int, default=0,
        help="max running jobs per client, 0 = unlimited",
    )
    serve.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-shard deadline in seconds",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per shard before it is abandoned (default 3)",
    )
    serve.add_argument(
        "--status-interval", type=float, default=2.0,
        help="seconds between status.json rewrites (default %(default)s)",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a campaign to a running 'repro serve' and optionally "
        "wait for its metrics",
        description=(
            "Build a campaign spec from the same flags as 'repro fleet' "
            "(or --spec-json FILE) and POST it to the service.  "
            "Submitting the same spec twice returns the same job.  "
            "--wait polls until the job is terminal and prints the "
            "per-policy loss table; --status ID just reports a job."
        ),
    )
    _add_campaign_spec_flags(submit)
    submit.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (default %(default)s)",
    )
    submit.add_argument(
        "--client", default="cli",
        help="client identity for fair-share / quotas (default %(default)s)",
    )
    submit.add_argument(
        "--spec-json", metavar="FILE", default=None,
        help="submit this campaign-spec JSON file instead of building "
        "one from flags",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its metrics",
    )
    submit.add_argument(
        "--timeout", type=float, default=3600.0,
        help="--wait timeout in seconds (default %(default)s)",
    )
    submit.add_argument(
        "--status", metavar="JOB_ID", default=None,
        help="report an existing job instead of submitting",
    )
    submit.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the final job record as JSON (with --wait)",
    )
    submit.set_defaults(func=cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.sim.vector import UnsupportedKernelFeature

    try:
        return args.func(args)
    except UnsupportedKernelFeature as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
