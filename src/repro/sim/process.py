"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process resumes
when that event fires (receiving the event's value, or the failure
exception thrown into the generator).  A process is itself an event that
fires when the generator returns, so processes can wait on each other.

The resume path is the hottest non-allocating code in the kernel:

* the bound ``_resume`` method is created once (``_on_fire``) instead
  of allocating a fresh bound method for every wait;
* a process waiting alone on an event stores that callable directly in
  the event's ``_callbacks`` slot — no list allocation per yield;
* the target-detach bookkeeping (forgetting the event we were waiting
  on when something else woke us) only runs after an actual
  :meth:`Process.interrupt`, flagged by ``_interrupted``.
"""

from __future__ import annotations

from typing import Any, Generator

from heapq import heappush

from repro.sim.events import _PENDING, _PROCESSED, Event, Timeout


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """An event representing a running generator-based process."""

    __slots__ = ("_generator", "_target", "_interrupted", "_on_fire")

    def __init__(self, sim: "Simulation", generator: Generator) -> None:  # noqa: F821
        try:
            generator.send
            generator.throw
        except AttributeError:
            raise TypeError(f"{generator!r} is not a generator") from None
        # Inlined Event.__init__: process creation is hot in
        # spawn-heavy workloads, so skip the extra frames.
        self.sim = sim
        self._callbacks = None
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._generator = generator
        #: Set by :meth:`interrupt`; gates the target-detach slow path.
        self._interrupted = False
        #: The bound resume callback, allocated once and reused.
        self._on_fire = on_fire = self._resume
        # Kick off the process via an immediately-scheduled init event
        # (built with __new__ + inlined heappush — see Timeout).
        init = Event.__new__(Event)
        init.sim = sim
        init._callbacks = on_fire
        init._value = None
        init._ok = True
        init._defused = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, init))
        #: The event this process is currently waiting on, if any.
        self._target: Event = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process while it waits detaches it from its target event.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already finished")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event._callbacks = self._on_fire
        self._interrupted = True
        self.sim.schedule_interrupt(event)

    # -- engine callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        sim = self.sim
        sim._active_process = self
        if self._interrupted:
            # We were interrupted while waiting: forget the original
            # target (its eventual firing must no longer resume us).
            self._interrupted = False
            target = self._target
            if target is not None and target is not event:
                cbs = target._callbacks
                if cbs is not None and cbs is not _PROCESSED:
                    if cbs.__class__ is list:
                        try:
                            cbs.remove(self._on_fire)
                        except ValueError:
                            pass
                    elif cbs is self._on_fire:
                        target._callbacks = None
        generator = self._generator
        while True:
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    event._defused = True
                    target = generator.throw(event._value)
            except StopIteration as stop:
                # Inlined succeed(): a finishing process is by
                # definition still pending, so skip the re-trigger guard.
                self._target = None
                sim._active_process = None
                self._ok = True
                self._value = getattr(stop, "value", None)
                sim._seq = seq = sim._seq + 1
                heappush(sim._queue, (sim._now, seq, self))
                return
            except Interrupt as exc:
                # The generator re-raised an interrupt it did not handle.
                self._target = None
                sim._active_process = None
                self._defused = True
                self.fail(exc)
                return
            except BaseException as exc:
                self._target = None
                sim._active_process = None
                self.fail(exc)
                return
            if target.__class__ is not Timeout and not isinstance(target, Event):
                exc = RuntimeError(
                    f"process yielded a non-event: {target!r}"
                )
                event = Event(sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.sim is not sim:
                exc = RuntimeError("process yielded an event from another simulation")
                event = Event(sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            cbs = target._callbacks
            if cbs is _PROCESSED:
                # Already fired: resume immediately with its value.
                event = target
                continue
            if cbs is None:
                target._callbacks = self._on_fire
            elif cbs.__class__ is list:
                cbs.append(self._on_fire)
            else:
                target._callbacks = [cbs, self._on_fire]
            self._target = target
            break
        sim._active_process = None
