"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process resumes
when that event fires (receiving the event's value, or the failure
exception thrown into the generator).  A process is itself an event that
fires when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.events import _PENDING, Event


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given by the interrupter.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """An event representing a running generator-based process."""

    def __init__(self, sim: "Simulation", generator: Generator) -> None:  # noqa: F821
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on, if any.
        self._target: Event = None
        # Kick off the process via an immediately-scheduled init event.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._enqueue(init)
        self._target = init

    @property
    def is_alive(self) -> bool:
        """``True`` while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process while it waits detaches it from its target event.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already finished")
        if self.sim.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        event = Event(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.sim.schedule_interrupt(event)

    # -- engine callback ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's outcome."""
        self.sim._active_process = self
        # If we were interrupted while waiting, forget the original target
        # (its eventual firing must no longer resume us).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        while True:
            try:
                if event.ok:
                    target = self._generator.send(event.value)
                else:
                    event._defused = True
                    target = self._generator.throw(event.value)
            except StopIteration as stop:
                self._target = None
                self.sim._active_process = None
                self.succeed(getattr(stop, "value", None))
                return
            except Interrupt as exc:
                # The generator re-raised an interrupt it did not handle.
                self._target = None
                self.sim._active_process = None
                self._defused = True
                self.fail(exc)
                return
            except BaseException as exc:
                self._target = None
                self.sim._active_process = None
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = RuntimeError(
                    f"process yielded a non-event: {target!r}"
                )
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.sim is not self.sim:
                exc = RuntimeError("process yielded an event from another simulation")
                event = Event(self.sim)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if target.processed:
                # Already fired: resume immediately with its value.
                event = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            break
        self.sim._active_process = None
