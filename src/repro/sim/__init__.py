"""Discrete-event simulation kernel.

This package provides the simulation substrate used by every other part
of the library: a priority-queue event loop (:class:`~repro.sim.engine.Simulation`),
generator-based processes (:class:`~repro.sim.process.Process`), one-shot
events and timeouts (:mod:`repro.sim.events`), counted resources
(:mod:`repro.sim.resources`) and deterministic named random streams
(:mod:`repro.sim.rng`).

The design follows the classic process-interaction style (as popularised
by SimPy): a *process* is a Python generator that ``yield``\\ s events; the
engine resumes the generator when the yielded event fires.  All state is
owned by a single :class:`Simulation` instance, so independent
simulations never interfere and runs are reproducible given a seed.

Example
-------
>>> from repro.sim import Simulation
>>> sim = Simulation()
>>> log = []
>>> def worker(sim, name):
...     yield sim.timeout(5)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a"))
>>> sim.run()
>>> log
[(5.0, 'a')]
"""

from repro.sim.engine import Simulation, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, ReusableTimeout, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams
from repro.sim.vector import (
    KERNELS,
    UnsupportedKernelFeature,
    VectorSimulation,
    make_simulation,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "KERNELS",
    "Process",
    "RandomStreams",
    "Resource",
    "ReusableTimeout",
    "Simulation",
    "Store",
    "StopSimulation",
    "Timeout",
    "UnsupportedKernelFeature",
    "VectorSimulation",
    "make_simulation",
]
