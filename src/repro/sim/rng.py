"""Deterministic named random streams.

Simulation components that need randomness (workload think times, trace
generators, disk initial rotational phase, ...) must not share a single
RNG: adding a component would shift every other component's draws and
destroy run-to-run comparability.  :class:`RandomStreams` derives an
independent :class:`numpy.random.Generator` per *name* from a single
root seed, so each component sees its own stable stream.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` built with the same seed
        yield identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("workload")
    >>> b = streams.get("scrubber")
    >>> a is streams.get("workload")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            root = np.random.SeedSequence(self.seed)
            # Derive a child seed from the stable hash of the name so the
            # stream does not depend on creation order.
            name_digest = [b for b in name.encode("utf-8")]
            child = np.random.SeedSequence(
                entropy=root.entropy, spawn_key=tuple(name_digest)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a new stream family namespaced under ``name``."""
        child_seed = int(self.get(f"__spawn__/{name}").integers(0, 2**63 - 1))
        return RandomStreams(seed=child_seed)
