"""The numpy-vectorized batch-advance simulation kernel.

:class:`VectorSimulation` is a drop-in :class:`~repro.sim.engine.Simulation`
whose event loop advances through *runs* of plain timers with array
operations instead of one ``heappop`` per event.  It is selected with
``make_simulation(kernel="vector")`` (or ``--kernel vector`` on the
CLI) and is required to be **bit-identical** to the reference kernel:
the ``kernel-backend`` axis of :mod:`repro.verify.differential` holds a
seeded scenario fixed and demands equal outcome signatures from both
backends.

Array queue layout (struct of arrays)
-------------------------------------
Object events — processes, timeouts someone waits on, interrupts,
condition events — keep flowing through the reference binary heap
(``sim._queue``), so every existing raw-``heappush`` fast path
(``Timeout.__init__``, ``Process._resume``, the replay cursor) works
unchanged.  The vector kernel adds a second, array-backed store for
*object-free* timers next to it:

``_bt : float64[n]``
    due times of the sorted timer backbone;
``_bk : int64[n]``
    heap keys (the engine's sequence numbers, urgent-biased exactly
    like heap keys), so merging the two stores preserves the global
    ``(time, key)`` total order;
``_brefs : list | None``
    per-entry payload: a bare callable fired at its due time, or
    ``None`` for a pure timer.  When *every* entry of the backbone is
    pure the whole list is elided (``None``) and the run loop may
    retire entire runs of entries with one ``searchsorted``;
``_in_t/_in_k/_in_refs``
    an unsorted *incoming* buffer fed by :meth:`VectorSimulation.call_at`;
    it is merged (numpy ``lexsort``) into the backbone before the loop
    fires anything, so ordering is identical to a heap insert.

Batch boundary = next decision point
------------------------------------
A run of consecutive *pure* backbone timers contains no callbacks, so
no observer can distinguish firing them one at a time from retiring
them in bulk: the loop finds the run's end with one binary search
against the earliest *decision point* — the heap head (the next object
event, e.g. a process resume or the ``run(until=...)`` deadline
marker) — sets the clock to the last fired time and adds the run's
length to the event count reported to the telemetry sink.  Entries
with callbacks always fire one per loop iteration, re-checking both
stores in between, exactly like the reference loop.

Float-determinism policy
------------------------
No tolerance windows: times stored in the float64 arrays are the same
IEEE doubles the heap tuples would carry (``float(np.float64)`` is
exact), sequence numbers are consumed identically, and comparisons use
the same ``(time, key)`` order, so outcomes are required to be
bit-identical — the differential oracle hashes them with no epsilon.
"""

from __future__ import annotations

import gc
import time
from heapq import heappop
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Simulation, StopSimulation
from repro.sim.events import _PROCESSED, Event

__all__ = [
    "KERNELS",
    "UnsupportedKernelFeature",
    "VectorSimulation",
    "make_simulation",
]

#: Selectable kernel backends, reference first.
KERNELS = ("reference", "vector")

_EMPTY_T = np.empty(0, dtype=np.float64)
_EMPTY_K = np.empty(0, dtype=np.int64)


class UnsupportedKernelFeature(RuntimeError):
    """A selected kernel cannot run the requested feature.

    Raised instead of silently falling back to another backend; the
    CLI maps it to exit code 2.
    """


def make_simulation(
    kernel: str = "reference", start: float = 0.0, telemetry=None
) -> Simulation:
    """Build a simulation on the selected kernel backend.

    ``kernel="reference"`` returns the plain heap-driven
    :class:`Simulation`; ``"vector"`` returns a
    :class:`VectorSimulation`.  Anything else raises ``ValueError`` —
    there is no silent fallback.
    """
    if kernel == "reference":
        return Simulation(start=start, telemetry=telemetry)
    if kernel == "vector":
        return VectorSimulation(start=start, telemetry=telemetry)
    raise ValueError(f"kernel must be one of {KERNELS}: {kernel!r}")


class VectorSimulation(Simulation):
    """Batch-advance kernel: heap for object events, arrays for timers.

    See the module docstring for the queue layout and the batching
    rule.  All :class:`Simulation` APIs behave identically except
    :meth:`step`, which the batch loop cannot honour event-by-event
    and therefore refuses (:class:`UnsupportedKernelFeature`).
    """

    kernel = "vector"

    __slots__ = ("_bt", "_bk", "_brefs", "_bcur", "_in_t", "_in_k", "_in_refs")

    def __init__(self, start: float = 0.0, telemetry=None) -> None:
        super().__init__(start=start, telemetry=telemetry)
        self._bt = _EMPTY_T
        self._bk = _EMPTY_K
        self._brefs: Optional[list] = None
        self._bcur = 0
        self._in_t: list = []
        self._in_k: list = []
        self._in_refs: list = []

    # -- vector-only scheduling APIs ---------------------------------------
    def schedule_timers(self, delays) -> int:
        """Schedule a whole batch of pure timers in one array operation.

        ``delays`` is a 1-D array-like of non-negative delays from
        ``now``.  Consumes one sequence number per timer — exactly what
        the same batch of ``sim.timeout(d)`` calls would consume — but
        allocates no :class:`Event` objects, so draining the batch is
        eligible for bulk retirement.  Returns the number scheduled.
        """
        arr = np.asarray(delays, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"delays must be 1-D, got shape {arr.shape}")
        n = int(arr.size)
        if n == 0:
            return 0
        if np.any(arr < 0):
            raise ValueError("negative timeout delay in batch")
        times = self._now + arr
        seq = self._seq
        keys = np.arange(seq + 1, seq + n + 1, dtype=np.int64)
        self._seq = seq + n
        order = np.argsort(times, kind="stable")
        self._absorb(times[order], keys[order], None)
        return n

    def call_at(self, when: float, fn: Optional[Callable[[], None]] = None) -> int:
        """Schedule a bare callback (or a pure timer) at absolute ``when``.

        The object-free analogue of a ``Timeout`` carrying a single
        waiter: one sequence number, no event allocation.  ``fn`` takes
        no arguments.  Returns the consumed sequence number.
        """
        t = float(when)
        if t < self._now:
            raise ValueError(f"call_at({t}) lies in the past (now={self._now})")
        self._seq = seq = self._seq + 1
        self._in_t.append(t)
        self._in_k.append(seq)
        self._in_refs.append(fn)
        return seq

    # -- store maintenance --------------------------------------------------
    def _absorb(self, times, keys, refs: Optional[list]) -> None:
        """Merge a ``(time, key)``-sorted segment into the backbone."""
        bcur = self._bcur
        bt = self._bt
        if bcur >= bt.size:
            self._bt = times
            self._bk = keys
            self._brefs = refs
            self._bcur = 0
            return
        rem_t = bt[bcur:]
        rem_k = self._bk[bcur:]
        old_refs = self._brefs
        if old_refs is not None:
            old_refs = old_refs[bcur:]
        last = rem_t.size - 1
        if times[0] > rem_t[last] or (
            times[0] == rem_t[last] and keys[0] > rem_k[last]
        ):
            # Entirely after the current tail: plain append.
            self._bt = np.concatenate((rem_t, times))
            self._bk = np.concatenate((rem_k, keys))
            if old_refs is None and refs is None:
                self._brefs = None
            else:
                if old_refs is None:
                    old_refs = [None] * rem_t.size
                if refs is None:
                    refs = [None] * times.size
                self._brefs = old_refs + refs
            self._bcur = 0
            return
        merged_t = np.concatenate((rem_t, times))
        merged_k = np.concatenate((rem_k, keys))
        order = np.lexsort((merged_k, merged_t))
        self._bt = merged_t[order]
        self._bk = merged_k[order]
        if old_refs is None and refs is None:
            self._brefs = None
        else:
            if old_refs is None:
                old_refs = [None] * rem_t.size
            if refs is None:
                refs = [None] * times.size
            combined = old_refs + refs
            self._brefs = [combined[i] for i in order]
        self._bcur = 0

    def _merge_incoming(self) -> None:
        it = np.asarray(self._in_t, dtype=np.float64)
        ik = np.asarray(self._in_k, dtype=np.int64)
        refs = self._in_refs
        self._in_t = []
        self._in_k = []
        self._in_refs = []
        order = np.lexsort((ik, it))
        if all(r is None for r in refs):
            sorted_refs = None
        else:
            sorted_refs = [refs[i] for i in order]
        self._absorb(it[order], ik[order], sorted_refs)

    # -- engine API ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event across all three stores."""
        best = self._queue[0][0] if self._queue else float("inf")
        if self._bcur < self._bt.size:
            t = float(self._bt[self._bcur])
            if t < best:
                best = t
        if self._in_t:
            t = min(self._in_t)
            if t < best:
                best = t
        return best

    def step(self) -> None:
        """Refused: the batch loop has no single-event granularity."""
        raise UnsupportedKernelFeature(
            "the vector kernel advances in batches and does not support "
            "manual single-event stepping; use kernel='reference' for "
            "step()-driven debugging"
        )

    def run(self, until: Optional[Any] = None, gc_pause: bool = True) -> Any:
        """Run until ``until``; semantics mirror :meth:`Simulation.run`."""
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                self._until_marker(deadline)
        sink = self.telemetry
        if sink is not None and not sink.enabled:
            sink = None
        unpause = gc_pause and gc.isenabled()
        if unpause:
            gc.disable()
        try:
            try:
                self._drain(sink)
            except StopSimulation as stop:
                return stop.args[0] if stop.args else None
        finally:
            if unpause:
                gc.enable()
                gc.collect(0)
        if isinstance(until, Event) and not until.triggered:
            raise RuntimeError(
                "simulation ran out of events before the awaited event fired"
            )
        return stop_value

    def _drain(self, sink) -> None:
        """The batch-advance hot loop.

        Fires heap events and backbone timers in global ``(time, key)``
        order; runs of consecutive *pure* backbone timers bounded by
        the heap head (the next decision point) retire in bulk.  Every
        retired entry — bulk or not — counts toward the event total
        flushed to ``sink.engine_run`` on exit, so telemetry reports
        the same count as the reference kernel.
        """
        queue = self._queue
        heappop_ = heappop
        processed = _PROCESSED
        searchsorted = np.searchsorted
        events = 0
        wall_start = time.perf_counter() if sink is not None else 0.0
        try:
            while True:
                if self._in_t:
                    self._merge_incoming()
                bt = self._bt
                bcur = self._bcur
                blen = bt.size
                if queue:
                    head = queue[0]
                    if bcur < blen:
                        bk = self._bk
                        t = bt[bcur]
                        if head[0] < t or (head[0] == t and head[1] < bk[bcur]):
                            pass  # heap event first; fall through
                        else:
                            refs = self._brefs
                            if refs is None:
                                # Bulk-retire pure timers up to the heap head.
                                limit_t = head[0]
                                limit_k = head[1]
                                j = bcur + int(
                                    searchsorted(bt[bcur:], limit_t, side="left")
                                )
                                while j < blen and bt[j] == limit_t and bk[j] < limit_k:
                                    j += 1
                                events += j - bcur
                                self._bcur = j
                                self._now = float(bt[j - 1])
                                continue
                            fn = refs[bcur]
                            self._bcur = bcur + 1
                            self._now = float(t)
                            events += 1
                            if fn is not None:
                                fn()
                            continue
                    # Fire one heap event (the reference loop body).
                    item = heappop_(queue)
                    self._now = item[0]
                    event = item[2]
                    callbacks = event._callbacks
                    event._callbacks = processed
                    events += 1
                    if callbacks is not None:
                        if callbacks.__class__ is list:
                            for callback in callbacks:
                                callback(event)
                        else:
                            callbacks(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
                if bcur < blen:
                    refs = self._brefs
                    if refs is None:
                        # Heap empty: the rest of a pure backbone drains
                        # in one step (nothing can observe the interior).
                        events += blen - bcur
                        self._bcur = blen
                        self._now = float(bt[blen - 1])
                        continue
                    fn = refs[bcur]
                    self._bcur = bcur + 1
                    self._now = float(bt[bcur])
                    events += 1
                    if fn is not None:
                        fn()
                    continue
                break
        finally:
            if sink is not None:
                sink.engine_run(
                    events, self._now, time.perf_counter() - wall_start
                )
