"""Shared resources for simulation processes.

:class:`Resource` is a counted resource with FIFO queueing (e.g. a disk
that serves one request at a time).  :class:`Store` is an unbounded
FIFO buffer of items with blocking ``get``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.events import Event


class _Request(Event):
    """Event granted when the resource has a free slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger_pending()

    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` concurrent slots and a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, sim: "Simulation", capacity: int = 1) -> None:  # noqa: F821
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._queue: Deque[_Request] = deque()
        self._users: list = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> _Request:
        """Request a slot; the returned event fires when granted."""
        return _Request(self)

    def release(self, request: _Request) -> None:
        """Release a previously granted slot."""
        try:
            self._users.remove(request)
        except ValueError:
            raise RuntimeError(f"{request!r} does not hold this resource") from None
        self._trigger_pending()

    def cancel(self, request: _Request) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        try:
            self._queue.remove(request)
        except ValueError:
            raise RuntimeError(f"{request!r} is not waiting on this resource") from None

    def _trigger_pending(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.popleft()
            self._users.append(request)
            request.succeed()


class _Get(Event):
    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.sim)
        store._getters.append(self)
        store._dispatch()


class Store:
    """An unbounded FIFO item buffer with blocking retrieval.

    ``put`` never blocks; ``get`` returns an event firing with the next
    item (possibly immediately).
    """

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[_Get] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> _Get:
        """Return an event that fires with the next available item."""
        return _Get(self)

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.popleft()
            getter.succeed(self._items.popleft())
