"""The discrete-event simulation engine.

:class:`Simulation` owns the virtual clock and the event queue.  Events
are processed in ``(time, priority, sequence)`` order, so simultaneous
events fire deterministically in scheduling order.

The :meth:`Simulation.run` loop is the kernel's hot path: it inlines
:meth:`Simulation.step` with the heap, the ``heappop`` function and the
processed-sentinel bound to locals, so each event costs one heap pop,
one sentinel store and the callback calls — no method dispatch and no
allocation.  ``step()`` remains the single-event reference
implementation (and the API for manual stepping); the two must stay
semantically identical.
"""

from __future__ import annotations

import gc
import heapq
import time
from functools import partial
from typing import Any, Generator, Optional

from repro.sim.events import _PROCESSED, NORMAL, URGENT, URGENT_BIAS, Event, Timeout
from repro.sim.process import Process

__all__ = [
    "EmptySchedule",
    "NORMAL",
    "Simulation",
    "StopSimulation",
    "URGENT",
]


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulation.run` early."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event value."""
        if event.ok:
            raise cls(event.value)
        raise event.value


class EmptySchedule(Exception):
    """Raised when the event queue has run dry."""


class Simulation:
    """A single, self-contained discrete-event simulation.

    Parameters
    ----------
    start:
        Initial value of the simulation clock (default 0).

    Examples
    --------
    >>> sim = Simulation()
    >>> def proc(sim):
    ...     yield sim.timeout(3)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now
    3.0
    """

    #: Kernel backend identifier; :class:`~repro.sim.vector.VectorSimulation`
    #: overrides this with ``"vector"``.  Components that need a
    #: kernel-specific fast path (e.g. the replay cursor) branch on it.
    kernel = "reference"

    __slots__ = (
        "_now", "_queue", "_seq", "_active_process", "_marker",
        "timeout", "telemetry",
    )

    def __init__(self, start: float = 0.0, telemetry=None) -> None:
        self._now = float(start)
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Pooled ``run(until=<number>)`` deadline marker, recycled
        #: across runs once processed (see :meth:`_until_marker`).
        self._marker: Optional[Event] = None
        #: Create an event firing ``delay`` time units from now:
        #: ``sim.timeout(delay, value=None)``.  Bound as a C-level
        #: ``partial`` so the hottest event factory skips one Python
        #: frame per call.
        self.timeout = partial(Timeout, self)
        #: Optional :class:`~repro.telemetry.sink.TelemetrySink`.
        #: Instrumented components (block devices, scrubbers, ...) pick
        #: it up from here, so one constructor argument threads
        #: observability through the whole stack.  ``None`` or a
        #: disabled sink leaves the hot event loop untouched.
        self.telemetry = telemetry

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this simulation."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue (engine-internal)."""
        self._seq = seq = self._seq + 1
        key = seq if priority else seq - URGENT_BIAS
        heapq.heappush(self._queue, (self._now + delay, key, event))

    def schedule_interrupt(self, event: Event) -> None:
        """Queue ``event`` ahead of same-time normal events."""
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (self._now, seq - URGENT_BIAS, event))

    def _until_marker(self, deadline: float) -> Event:
        """Push the ``run(until=<number>)`` stop marker at ``deadline``.

        The marker event is pooled: one is allocated on first use and
        recycled on every later numeric-``until`` run whose previous
        marker was actually processed.  A marker that never fired (the
        run ended early through an exception) is still sitting in the
        heap, so it must not be re-armed — that run allocates afresh.
        Sequence-number consumption is identical either way.
        """
        marker = self._marker
        if marker is None or marker._callbacks is not _PROCESSED:
            marker = self._marker = Event(self)
            marker._ok = True
            marker._value = None
        else:
            marker._defused = False
        marker._callbacks = StopSimulation.callback
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (deadline, seq - URGENT_BIAS, marker))
        return marker

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, event = heapq.heappop(self._queue)
        callbacks = event._callbacks
        event._callbacks = _PROCESSED
        if callbacks is not None:
            if callbacks.__class__ is list:
                for callback in callbacks:
                    callback(event)
            else:
                callbacks(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[Any] = None, gc_pause: bool = True) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or queue-empty).

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event is processed and returns its value.
        gc_pause:
            Pause the cyclic garbage collector while the event loop
            runs (restored, with a collection, on exit).  Kernel
            objects are acyclic once popped from the queue, so
            reference counting reclaims them; the cycle collector only
            rescans the pending-event heap over and over, which can
            double the cost of allocation-heavy simulations.  Pass
            ``False`` for workloads that create many cyclic structures
            per event and must bound memory mid-run.
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    # Already processed: nothing to run.
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                self._until_marker(deadline)
        # Hot loop: step() inlined with everything bound to locals.  A
        # telemetry sink selects the instrumented twin of the loop once
        # per run() call — the disabled path is byte-for-byte the PR 1
        # fast path, so a NullSink (or no sink) costs nothing per event.
        sink = self.telemetry
        if sink is not None and not sink.enabled:
            sink = None
        queue = self._queue
        heappop = heapq.heappop
        processed = _PROCESSED
        unpause = gc_pause and gc.isenabled()
        if unpause:
            gc.disable()
        try:
            try:
                if sink is None:
                    while queue:
                        item = heappop(queue)
                        self._now = item[0]
                        event = item[2]
                        callbacks = event._callbacks
                        event._callbacks = processed
                        if callbacks is not None:
                            if callbacks.__class__ is list:
                                for callback in callbacks:
                                    callback(event)
                            else:
                                callbacks(event)
                        if not event._ok and not event._defused:
                            raise event._value
                else:
                    self._run_instrumented(sink)
            except StopSimulation as stop:
                return stop.args[0] if stop.args else None
        finally:
            if unpause:
                gc.enable()
                gc.collect(0)
        if isinstance(until, Event) and not until.triggered:
            raise RuntimeError(
                "simulation ran out of events before the awaited event fired"
            )
        return stop_value

    def _run_instrumented(self, sink) -> None:
        """The run() hot loop plus telemetry: semantically identical event
        processing, with a popped-event count and wall-clock duration
        reported to ``sink.engine_run`` on exit (normal, ``until``, or
        exception).  Telemetry only observes — it never schedules,
        reorders, or consumes randomness — so a run records the same
        event sequence with or without it.
        """
        queue = self._queue
        heappop = heapq.heappop
        processed = _PROCESSED
        events = 0
        wall_start = time.perf_counter()
        try:
            while queue:
                item = heappop(queue)
                self._now = item[0]
                event = item[2]
                callbacks = event._callbacks
                event._callbacks = processed
                events += 1
                if callbacks is not None:
                    if callbacks.__class__ is list:
                        for callback in callbacks:
                            callback(event)
                    else:
                        callbacks(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            sink.engine_run(
                events, self._now, time.perf_counter() - wall_start
            )
