"""The discrete-event simulation engine.

:class:`Simulation` owns the virtual clock and the event queue.  Events
are processed in ``(time, priority, sequence)`` order, so simultaneous
events fire deterministically in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

#: Default event priority.  Lower fires first among same-time events.
NORMAL = 1
#: Priority for urgent events (e.g. interrupts).
URGENT = 0


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulation.run` early."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event value."""
        if event.ok:
            raise cls(event.value)
        raise event.value


class EmptySchedule(Exception):
    """Raised when the event queue has run dry."""


class Simulation:
    """A single, self-contained discrete-event simulation.

    Parameters
    ----------
    start:
        Initial value of the simulation clock (default 0).

    Examples
    --------
    >>> sim = Simulation()
    >>> def proc(sim):
    ...     yield sim.timeout(3)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now
    3.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event` bound to this simulation."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process driving ``generator``."""
        return Process(self, generator)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue (engine-internal)."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_interrupt(self, event: Event) -> None:
        """Queue ``event`` ahead of same-time normal events."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now, URGENT, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event.value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (a time, an :class:`Event`, or queue-empty).

        Parameters
        ----------
        until:
            ``None`` runs until no events remain.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: nothing to run.
                    return until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                deadline = float(until)
                if deadline < self._now:
                    raise ValueError(
                        f"until={deadline} lies in the past (now={self._now})"
                    )
                marker = Event(self)
                marker._ok = True
                marker._value = None
                marker.callbacks.append(StopSimulation.callback)
                self._seq += 1
                heapq.heappush(self._queue, (deadline, URGENT, self._seq, marker))
        try:
            while True:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "simulation ran out of events before the awaited event fired"
                ) from None
        return stop_value
