"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait
on events by ``yield``\\ ing them; arbitrary callbacks may also be
attached.  :class:`Timeout` is an event scheduled a fixed delay in the
future.  :class:`AnyOf` / :class:`AllOf` compose events.

Performance notes
-----------------
Events are the unit of allocation in every simulation, so this module
is written for the interpreter rather than for elegance:

* every event class declares ``__slots__`` (no per-instance dict);
* the callback list is allocated lazily — the common fire-and-forget
  :class:`Timeout` never observes its callbacks, so it never pays for
  the list (``_callbacks`` is ``None`` until first use and the
  ``_PROCESSED`` sentinel afterwards); a single waiter (a process
  blocked on a timeout) is stored as the bare callable, so the
  dominant wait pattern allocates no list either;
* :class:`Timeout` schedules itself with one inlined ``heappush``
  instead of going through ``succeed()``/``Simulation._enqueue``.

The public surface (``event.callbacks`` as an appendable list while
pending, ``None`` once processed) is unchanged; the ``callbacks``
property maps the lazy representation back to that contract.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional

#: Sentinel for "event has no value yet".
_PENDING = object()
#: Sentinel replacing the callback list once the engine has fired it.
_PROCESSED = object()

#: Default event priority.  Lower fires first among same-time events.
NORMAL = 1
#: Priority for urgent events (e.g. interrupts).
URGENT = 0

#: Queue entries are ``(time, key, event)`` 3-tuples where ``key``
#: folds (priority, sequence) into one integer: normal events use the
#: bare sequence number, urgent events subtract this bias, so every
#: urgent key sorts before every normal key at equal times while
#: sequence order is preserved within each class.  One int comparison
#: replaces two tuple elements on the heap hot path, and the common
#: (normal) keys stay single-digit PyLongs — urgent events, which are
#: rare, carry the multi-digit negative keys.
URGENT_BIAS = 1 << 62


class Event:
    """A one-shot event that can succeed or fail exactly once.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulation`.

    Notes
    -----
    The lifecycle is ``pending -> triggered -> processed``:

    * *pending*: freshly created, may have callbacks attached;
    * *triggered*: :meth:`succeed` or :meth:`fail` has been called and the
      event sits in the simulation queue;
    * *processed*: the engine has popped the event and run its callbacks.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821
        self.sim = sim
        self._callbacks: Any = None  # lazily allocated list
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure value was retrieved or handled, used to
        #: surface unhandled simulation-time exceptions.
        self._defused = False

    # -- callback storage ------------------------------------------------
    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """The pending callback list, or ``None`` once processed.

        The backing list is allocated on first access, so events whose
        callbacks are never touched stay allocation-free.  A lone
        internal waiter (stored as a bare callable) is promoted to a
        list transparently.
        """
        cbs = self._callbacks
        if cbs is None:
            cbs = self._callbacks = []
            return cbs
        if cbs is _PROCESSED:
            return None
        if cbs.__class__ is not list:
            cbs = self._callbacks = [cbs]
        return cbs

    @callbacks.setter
    def callbacks(self, value: Optional[list]) -> None:
        self._callbacks = _PROCESSED if value is None else value

    # -- state predicates ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the engine has already run this event's callbacks."""
        return self._callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event._defused = True
            self.fail(event.value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        delay = float(delay)
        # Inlined Event.__init__ + Simulation._enqueue: a timeout is born
        # triggered, and this constructor dominates event churn.
        self.sim = sim
        self._callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self))


class ReusableTimeout(Event):
    """A pooled timeout event that can be re-armed after processing.

    Long-lived processes that sleep in a loop (the scrubber's
    inter-request delay, the block device's idle recheck) burn one
    :class:`Timeout` allocation per sleep.  A ``ReusableTimeout`` is
    armed like a fresh ``sim.timeout(delay)`` — identical sequence
    number consumption and heap tuple, so pooling is invisible to the
    differential oracle — but recycles the event object.

    Only re-arm an instance whose previous firing was *processed*
    (check :attr:`Event.processed`): a timer that lost an ``AnyOf``
    race still sits in the heap, and re-arming it would fire the new
    incarnation's callbacks at the stale due time.  Instances are born
    processed so the guard admits first use.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821
        self.sim = sim
        self._callbacks = _PROCESSED
        self._value = None
        self._ok = True
        self._defused = False
        self.delay = 0.0

    def arm(self, delay: float, value: Any = None) -> "ReusableTimeout":
        """Re-schedule this event ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        delay = float(delay)
        sim = self.sim
        self._callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now + delay, seq, self))
        return self


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulations")
        #: Number of constituent events already *processed* successfully.
        self._count = 0
        check = self._check
        for event in self.events:
            cbs = event._callbacks
            if cbs is _PROCESSED:
                check(event)
            elif cbs is None:
                event._callbacks = check
            elif cbs.__class__ is list:
                cbs.append(check)
            else:
                event._callbacks = [cbs, check]
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self.events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event has been processed.

    An ``AnyOf`` over zero events fires immediately (vacuous truth
    mirrors :class:`AllOf`'s behaviour for symmetry with SimPy).
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1 or not self.events


class AllOf(_Condition):
    """Fires once every constituent event has been processed."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
