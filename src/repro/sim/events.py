"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence with a value.  Processes wait
on events by ``yield``\\ ing them; arbitrary callbacks may also be
attached.  :class:`Timeout` is an event scheduled a fixed delay in the
future.  :class:`AnyOf` / :class:`AllOf` compose events.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

#: Sentinel for "event has no value yet".
_PENDING = object()


class Event:
    """A one-shot event that can succeed or fail exactly once.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulation`.

    Notes
    -----
    The lifecycle is ``pending -> triggered -> processed``:

    * *pending*: freshly created, may have callbacks attached;
    * *triggered*: :meth:`succeed` or :meth:`fail` has been called and the
      event sits in the simulation queue;
    * *processed*: the engine has popped the event and run its callbacks.
    """

    def __init__(self, sim: "Simulation") -> None:  # noqa: F821
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure value was retrieved or handled, used to
        #: surface unhandled simulation-time exceptions.
        self._defused = False

    # -- state predicates ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """Whether the engine has already run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event.ok:
            self.succeed(event.value)
        else:
            event._defused = True
            self.fail(event.value)

    # -- composition -----------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=self.delay)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    def __init__(self, sim: "Simulation", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("cannot mix events from different simulations")
        #: Number of constituent events already *processed* successfully.
        self._count = 0
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            event: event.value
            for event in self.events
            if event.processed and event.ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event._defused = True
            return
        if not event.ok:
            event._defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event has been processed.

    An ``AnyOf`` over zero events fires immediately (vacuous truth
    mirrors :class:`AllOf`'s behaviour for symmetry with SimPy).
    """

    def _satisfied(self) -> bool:
        return self._count >= 1 or not self.events


class AllOf(_Condition):
    """Fires once every constituent event has been processed."""

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
