"""Fan independent sweep tasks across worker processes.

:class:`SweepRunner` executes a batch of keyword-argument dicts against
one task function, optionally across a ``ProcessPoolExecutor`` and
optionally backed by a :class:`~repro.parallel.cache.ResultCache`.
Results always come back in input order, and a parallel run is
bit-identical to a serial one: every task is independent, seeds are
derived deterministically per task *index* (not per worker), and no
worker-local state leaks into results.

Tasks that cannot be pickled (lambdas, closures, open handles in the
parameters) transparently fall back to in-process serial execution, so
callers never need two code paths.

Trace parameters ship zero-copy: any top-level
:class:`~repro.traces.record.Trace` value in a task's kwargs is
exported once per distinct trace into a shared-memory segment
(:class:`~repro.traces.shm.TraceArrays`) and replaced by its small
:class:`~repro.traces.shm.TraceHandle` for the trip through the pool;
the worker trampoline re-materialises a zero-copy view before calling
the task function.  Cache keys are computed on the *original*
parameters (the trace canonicalizes to its content digest), segments
are only created for cache misses, and a ``try/finally`` around the
pool guarantees every segment is unlinked on success, worker crash,
and ``KeyboardInterrupt``.

A worker that *dies* (segfault, OOM kill, ``os._exit``) poisons the
whole ``ProcessPoolExecutor``: every outstanding future raises
``BrokenProcessPool`` and, naively, a single bad parameter set aborts
the entire sweep with no indication of which task was at fault.
:meth:`SweepRunner.map` instead retries each affected task on a fresh
single-worker pool — tasks that merely shared the poisoned pool
succeed there — under a configurable
:class:`~repro.parallel.supervise.RetryPolicy` (max attempts,
exponential backoff, seeded jitter; the default reproduces the legacy
single immediate retry), and raises a structured
:class:`SweepTaskError` naming the reproducibly-fatal parameter sets
once a task has exhausted its attempts.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.parallel.cache import ResultCache


class SweepTaskError(RuntimeError):
    """Sweep tasks crashed their worker process on every attempt.

    Raised only after every victim of a broken pool got clean retries
    on fresh workers (one per attempt allowed by the retry policy); the
    tasks listed here killed each of those workers too, so the crash is
    attributable to their parameters.
    """

    def __init__(self, failures: List[Tuple[int, dict]]) -> None:
        self.failures = list(failures)
        detail = "; ".join(
            f"task {index} {params!r}" for index, params in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep task(s) crashed their worker "
            f"after a retry on a fresh process: {detail}"
        )


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed per-task seed.

    Hash-derived (SHA-256 of ``base_seed:index``) rather than
    ``base_seed + index`` so neighbouring tasks get statistically
    independent streams; identical for a given (base, index) pair on
    every platform and process, which is what makes parallel sweeps
    reproducible.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{int(index)}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1  # non-negative int64


def _call(fn: Callable, kwargs: dict) -> Any:
    """Top-level trampoline (must be picklable for the process pool).

    Resolves any :class:`TraceHandle` values back into zero-copy
    :class:`Trace` views, and any
    :class:`~repro.traces.store.StoredTraceRef` into an opened
    :class:`~repro.traces.store.StoredTrace` (the file page cache is
    the shared memory there — workers map the same chunk pages), before
    calling the task; shm attachments are unmapped afterwards
    (tolerating results that pin the buffers — see
    :mod:`repro.traces.shm`).
    """
    from repro.traces.shm import TraceArrays, TraceHandle
    from repro.traces.store import StoredTraceRef

    attachments = []
    resolved = kwargs
    try:
        for key, value in kwargs.items():
            if isinstance(value, TraceHandle):
                arrays = TraceArrays.attach(value)
                attachments.append(arrays)
                if resolved is kwargs:
                    resolved = dict(kwargs)
                resolved[key] = arrays.as_trace()
            elif isinstance(value, StoredTraceRef):
                if resolved is kwargs:
                    resolved = dict(kwargs)
                resolved[key] = value.open()
        return fn(**resolved)
    finally:
        del resolved
        for arrays in attachments:
            arrays.close()


def _picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class SweepRunner:
    """Runs independent sweep tasks, in parallel and/or from cache.

    Parameters
    ----------
    workers:
        Process count.  ``None`` uses ``os.cpu_count()``; ``0`` or
        ``1`` runs serially in-process (still using the cache).
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely.
    base_seed:
        When set, :meth:`map` can inject ``derive_seed(base_seed, i)``
        into each task (see ``seed_param``).
    share_traces:
        Ship :class:`Trace` parameters to pool workers through shared
        memory (default).  ``False`` falls back to pickling them with
        the rest of the parameters — the pre-shared-memory behaviour,
        kept as an escape hatch and for A/B benchmarks.
    retry:
        :class:`~repro.parallel.supervise.RetryPolicy` governing how
        broken-pool victims are retried on fresh workers.  Default:
        :data:`~repro.parallel.supervise.LEGACY_RETRY` (two attempts,
        no backoff) — the pre-PR 7 behaviour.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        base_seed: Optional[int] = None,
        telemetry=None,
        share_traces: bool = True,
        retry=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 0:
            raise ValueError(f"workers must be >= 0: {workers}")
        if retry is None:
            from repro.parallel.supervise import LEGACY_RETRY as retry
        self.retry = retry
        self.workers = int(workers)
        self.cache = cache
        self.base_seed = base_seed
        self.share_traces = share_traces
        #: Tasks actually executed (cache misses) over this runner's life.
        self.executed = 0
        #: Extra attempts spent re-running broken-pool victims.
        self.retries = 0
        #: Optional telemetry sink metering the sweep itself (tasks
        #: mapped/executed/cache-served).  Task-internal telemetry rides
        #: inside the results — see :meth:`merge_task_telemetry`.
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    @staticmethod
    def _substitute_traces(pending: List[tuple], exported: List) -> List[tuple]:
        """Replace top-level ``Trace`` kwargs with shared-memory handles.

        One segment per *distinct* trace object (an 8-task sweep over
        one trace exports it once, not 8 times); every created
        :class:`TraceArrays` is appended to ``exported`` for the
        caller's ``finally`` teardown.  Only runs for tasks headed to
        the pool — cache hits never reach here, so a fully-cached
        sweep creates no segments at all.
        """
        from repro.traces.record import Trace
        from repro.traces.shm import TraceArrays
        from repro.traces.store import StoredTrace

        handles = {}  # id(trace) -> TraceHandle | StoredTraceRef
        substituted = []
        for index, key, params in pending:
            shipped = None
            for name, value in params.items():
                if isinstance(value, Trace):
                    handle = handles.get(id(value))
                    if handle is None:
                        arrays = TraceArrays.from_trace(value)
                        exported.append(arrays)
                        handle = handles[id(value)] = arrays.handle
                    if shipped is None:
                        shipped = dict(params)
                    shipped[name] = handle
                elif isinstance(value, StoredTrace):
                    # Already on disk: no segment to export — the tiny
                    # picklable ref crosses the pool and workers mmap
                    # the same chunk files (page cache is the sharing).
                    if shipped is None:
                        shipped = dict(params)
                    shipped[name] = value.ref()
            substituted.append((index, key, shipped if shipped is not None else params))
        return substituted

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    def map(
        self,
        fn: Callable,
        param_sets: Sequence[dict],
        seed_param: Optional[str] = None,
    ) -> List[Any]:
        """Return ``[fn(**params) for params in param_sets]``, accelerated.

        Parameters
        ----------
        fn:
            The task function.  Must be a module-level callable for the
            process pool (and for stable cache keys); anything else
            still works but runs serially and uncached-by-identity.
        param_sets:
            One kwargs dict per task.  Dicts are copied, never mutated.
            Flat picklable values only — which is also how the engine
            backend travels: tasks that take a ``kernel`` key (e.g.
            ``detection_sweep_task``, ``replay_slowdown_task``) carry it
            here like any other parameter, and it participates in cache
            keys the same way.  Because both backends are bit-identical,
            a cache entry produced under one kernel is equally valid for
            the other; the key still separates them so an A/B sweep
            never serves one side from the other's cache.
        seed_param:
            When given (and ``base_seed`` is set), each task that does
            not already carry this key gets
            ``params[seed_param] = derive_seed(base_seed, index)``.
            The injected seed participates in the cache key, so cached
            and fresh runs see identical randomness.
        """
        tasks: List[dict] = []
        for index, params in enumerate(param_sets):
            params = dict(params)
            if (
                seed_param is not None
                and self.base_seed is not None
                and seed_param not in params
            ):
                params[seed_param] = derive_seed(self.base_seed, index)
            tasks.append(params)

        results: List[Any] = [None] * len(tasks)
        previous_retries = self.retries
        pending: List[tuple] = []  # (index, cache key, params)
        for index, params in enumerate(tasks):
            if self.cache is not None:
                key = self.cache.key(fn, params)
                hit, value = self.cache.get(key)
                if hit:
                    results[index] = value
                    continue
            else:
                key = None
            pending.append((index, key, params))

        if not pending:
            return results

        exported: List = []  # TraceArrays segments owned by this map() call
        try:
            if (
                self.share_traces
                and self.workers > 1
                and len(pending) > 1
            ):
                pending = self._substitute_traces(pending, exported)
            use_pool = (
                self.workers > 1
                and len(pending) > 1
                and _picklable(fn)
                and all(_picklable(params) for _, _, params in pending)
            )
            if use_pool:
                max_workers = min(self.workers, len(pending))
                outcomes = []
                victims: List[tuple] = []  # (index, key, params) hit by a broken pool
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        (index, key, params, pool.submit(_call, fn, params))
                        for index, key, params in pending
                    ]
                    for index, key, params, future in futures:
                        try:
                            outcomes.append((index, key, future.result()))
                        except BrokenProcessPool:
                            victims.append((index, key, params))
                failures: List[Tuple[int, dict]] = []
                for index, key, params in victims:
                    # Retries isolated on fresh workers, governed by the
                    # retry policy: a task that only *shared* the poisoned
                    # pool completes on its first clean worker, while a
                    # genuinely fatal parameter set kills every private
                    # worker the policy grants it.  The pool run above
                    # was attempt 1.
                    attempt = 1
                    while True:
                        if attempt >= self.retry.max_attempts:
                            failures.append((index, params))
                            break
                        delay = self.retry.delay(attempt, index)
                        if delay > 0:
                            time.sleep(delay)
                        attempt += 1
                        self.retries += 1
                        try:
                            with ProcessPoolExecutor(max_workers=1) as pool:
                                outcomes.append(
                                    (index, key, pool.submit(_call, fn, params).result())
                                )
                        except BrokenProcessPool:
                            continue
                        break
                if failures:
                    raise SweepTaskError(sorted(failures))
            else:
                outcomes = [
                    (index, key, _call(fn, params)) for index, key, params in pending
                ]
        finally:
            # Unconditional segment teardown: success, SweepTaskError,
            # an ordinary task exception, or KeyboardInterrupt — the
            # shared pages must never outlive the sweep.
            for arrays in exported:
                arrays.cleanup()

        self.executed += len(outcomes)
        for index, key, value in outcomes:
            results[index] = value
            if self.cache is not None and key is not None:
                self.cache.put(key, value)
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("parallel.tasks").inc(len(tasks))
            metrics.counter("parallel.executed").inc(len(outcomes))
            metrics.counter("parallel.cache_served").inc(
                len(tasks) - len(pending)
            )
            # Attempt accounting: every executed task cost one attempt,
            # plus whatever the broken-pool retry loop spent on top.
            metrics.counter("parallel.attempts").inc(
                len(outcomes) + self.retries - previous_retries
            )
            metrics.counter("parallel.retries").inc(
                self.retries - previous_retries
            )
            metrics.gauge("parallel.workers").set(self.workers)
        return results

    @staticmethod
    def merge_task_telemetry(results: Sequence[Any]) -> dict:
        """Fleet-level metrics summary from per-task result telemetry.

        Each result may carry a ``telemetry`` attribute (or key) holding
        ``{"metrics": <snapshot>, ...}`` — the bundle
        :meth:`repro.telemetry.Recorder.export` produces.  Snapshots are
        merged in **input order**, and
        :func:`~repro.telemetry.metrics.merge_snapshots` is
        order-independent besides, so the summary of a parallel sweep is
        bit-identical to the serial one.
        """
        from repro.telemetry.metrics import merge_snapshots

        snapshots = []
        for result in results:
            bundle = getattr(result, "telemetry", None)
            if bundle is None and isinstance(result, dict):
                bundle = result.get("telemetry")
            if bundle:
                snapshots.append(bundle.get("metrics"))
        return merge_snapshots(snapshots)
