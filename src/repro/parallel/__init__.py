"""Parallel sweep execution with persistent result caching.

The repo's expensive artifacts are all *embarrassingly parallel*
parameter sweeps — optimizer size grids, Fig. 14 policy matrices,
Fig. 15 sizing curves.  This package provides:

* :class:`SweepRunner` — fans tasks across a process pool with
  deterministic per-task seeds; parallel output is bit-identical to
  serial;
* :class:`SupervisedRunner` — the fault-tolerant execution layer for
  long campaigns: one supervised process per task attempt, heartbeat
  and hung-task detection, :class:`RetryPolicy` backoff with seeded
  jitter, straggler re-dispatch, and per-task :class:`TaskOutcome`
  reporting instead of batch-poisoning failures;
* :class:`ResultCache` — on-disk memoisation keyed on (task function,
  canonicalized parameters, library version) with self-verifying
  entries (corrupt checkpoints are evicted, not fatal), so re-running
  a sweep with unchanged inputs never re-simulates;
* :func:`derive_seed` / :func:`canonicalize` — the deterministic
  building blocks, exported for tests and custom sweeps.
"""

from repro.parallel.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    canonicalize,
    default_cache_dir,
)
from repro.parallel.runner import SweepRunner, SweepTaskError, derive_seed
from repro.parallel.supervise import RetryPolicy, SupervisedRunner, TaskOutcome

__all__ = [
    "CACHE_DIR_ENV",
    "ResultCache",
    "RetryPolicy",
    "SupervisedRunner",
    "SweepRunner",
    "SweepTaskError",
    "TaskOutcome",
    "canonicalize",
    "default_cache_dir",
    "derive_seed",
]
