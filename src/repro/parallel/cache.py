"""On-disk result cache for parameter sweeps.

A sweep task is a pure function of its keyword arguments, so its result
can be cached on disk and reused across processes and sessions.  The
cache key is a SHA-256 over three components:

* the task function's identity (``module.qualname``);
* the *canonicalized* parameters (see :func:`canonicalize`);
* the library version (``repro.__version__``), so any release — which
  may change simulation semantics — invalidates every prior entry.

Entries are pickle files under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro/sweeps``), written atomically via a temp file and
``os.replace`` so concurrent writers can never leave a torn entry.

Entries written since PR 7 are *self-verifying*: the payload is
prefixed with a header carrying its SHA-256, so a truncated, bit-rotted
or torn entry is detected on read, **evicted** from disk (rather than
poisoning every future run with a crash or a silent wrong value), and
counted — in :attr:`ResultCache.evictions` and, when a telemetry sink
is attached, in the ``cache.evictions`` counter.  Pre-PR 7 entries
(bare pickles) are still readable; ones that fail to unpickle are
evicted the same way.  Fleet campaign journals
(:mod:`repro.fleet.journal`) lean on this: a corrupt shard checkpoint
degrades to recomputing that shard, never to a crashed resume.

Since PR 9 the cache can also carry an on-disk **size budget**
(``max_bytes``): corpus-scale tuning memoizes per-workload baselines
whose total would otherwise grow without bound, so writes past the
budget evict the least-recently-*read* entries first (reads refresh
atime explicitly) and count them in :attr:`ResultCache.lru_evictions`
/ the ``cache.lru_evictions`` telemetry counter.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.traces.record import Trace
from repro.traces.store import StoredTrace, StoredTraceRef

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Header magic for self-verifying entries: magic + hex SHA-256 of the
#: payload + newline, then the pickle payload itself.
_ENTRY_MAGIC = b"RPRC1\n"
_DIGEST_LEN = 64  # hex sha256


def default_cache_dir() -> Path:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "sweeps"


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, repr-hashable canonical form.

    The form must be identical for semantically identical parameters
    regardless of construction order or container identity:

    * dicts are sorted by key;
    * floats use ``float.hex`` (exact, round-trip safe);
    * NumPy arrays become ``(dtype, shape, sha256-of-bytes)`` so large
      trace vectors hash in one pass without repr'ing elements;
    * a :class:`~repro.traces.record.Trace` becomes its *content
      digest* (:meth:`Trace.digest`): two regenerated synthetic traces
      that share a name but not data get different keys, while the
      same data parsed, generated, or viewed through shared memory
      gets the same one — and the digest is memoised on the trace, so
      a 64-task sweep hashes its columns once, not 64 times;
    * objects are ``(qualified class name, canonicalized attributes)``,
      covering dataclasses like ``ScrubServiceModel`` and schedules.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, Trace):
        return ("trace", obj.digest())
    if isinstance(obj, StoredTrace):
        # Same form as an in-memory Trace with the same content: a task
        # keyed on a trace gets cache hits regardless of which
        # representation it was invoked with — and the stored digest
        # comes from the header, so no data is read at all.
        return ("trace", obj.digest())
    if isinstance(obj, StoredTraceRef):
        return ("trace", obj.digest)
    if isinstance(obj, float):
        return ("f", obj.hex())
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return ("f", float(obj).hex())
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonicalize(item) for item in obj))
    if isinstance(obj, dict):
        return (
            "map",
            tuple(sorted((str(k), canonicalize(v)) for k, v in obj.items())),
        )
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        digest = hashlib.sha256(data.tobytes()).hexdigest()
        return ("ndarray", str(data.dtype), data.shape, digest)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonicalize(item)) for item in obj)))
    if callable(obj) and hasattr(obj, "__qualname__"):
        return ("fn", getattr(obj, "__module__", ""), obj.__qualname__)
    state = getattr(obj, "__dict__", None)
    if state is not None:
        cls = type(obj)
        return ("obj", f"{cls.__module__}.{cls.__qualname__}", canonicalize(state))
    return ("repr", repr(obj))


class ResultCache:
    """Persistent (task function, params, version) -> result store.

    Parameters
    ----------
    root:
        Cache directory; default :func:`default_cache_dir`.
    version:
        Invalidation tag mixed into every key; defaults to the library
        version, so upgrading the library abandons stale entries
        in place (they are never read again).
    telemetry:
        Optional telemetry sink; corrupt-entry evictions are counted in
        its ``cache.evictions`` metric and budget evictions in
        ``cache.lru_evictions``.
    max_bytes:
        On-disk size budget.  When set, every :meth:`put` that pushes
        the cache past the budget evicts entries oldest-access first
        (LRU by atime; reads :meth:`touch <get>` their entry, so mounts
        with ``relatime``/``noatime`` still order correctly) until the
        total fits again.  ``None`` (default) means unbounded —
        corpus-scale baseline memoization should always set a budget.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        version: Optional[str] = None,
        telemetry=None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if version is None:
            from repro import __version__ as version
        self.version = version
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive: {max_bytes}")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        #: Corrupt or truncated entries deleted from disk on read.
        self.evictions = 0
        #: Entries deleted to keep the cache within :attr:`max_bytes`.
        self.lru_evictions = 0
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )

    def key(self, fn: Callable, params: dict) -> str:
        """Cache key for calling ``fn(**params)`` under this version."""
        identity = (
            getattr(fn, "__module__", ""),
            getattr(fn, "__qualname__", repr(fn)),
            self.version,
            canonicalize(params),
        )
        return hashlib.sha256(repr(identity).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _evict(self, path: Path, reason: str) -> None:
        """Delete a corrupt entry so it can never poison another run."""
        try:
            path.unlink()
        except OSError:
            pass
        self.evictions += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("cache.evictions").inc()
            self.telemetry.metrics.counter(f"cache.evictions.{reason}").inc()

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; bad entries are evicted and miss.

        A load failure is always a miss, but it is also a *detection*:
        digest-mismatched (truncated, bit-flipped) and unpicklable
        entries are deleted on the spot and counted in
        :attr:`evictions` / the ``cache.evictions`` telemetry counter,
        so corruption degrades to one recomputation instead of a crash
        or a stale read on every later run.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        header = len(_ENTRY_MAGIC) + _DIGEST_LEN + 1
        if data.startswith(_ENTRY_MAGIC):
            payload = data[header:]
            recorded = data[len(_ENTRY_MAGIC):header - 1]
            if (
                len(data) < header
                or hashlib.sha256(payload).hexdigest().encode() != recorded
            ):
                self._evict(path, "digest")
                self.misses += 1
                return False, None
        else:
            payload = data  # pre-PR 7 bare-pickle entry
        try:
            # A corrupted payload can make pickle raise nearly anything
            # (e.g. ValueError from a garbage opcode argument).
            value = pickle.loads(payload)
        except Exception:
            self._evict(path, "unpicklable")
            self.misses += 1
            return False, None
        self.hits += 1
        # Refresh the access time explicitly: relatime (the common
        # mount default) only updates atime once a day, which would
        # make LRU ordering effectively insertion order.
        try:
            os.utime(path)
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (temp file + ``os.replace``)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode()
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_ENTRY_MAGIC + digest + b"\n" + payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            self._enforce_budget(keep=path)

    def _enforce_budget(self, keep: Optional[Path] = None) -> int:
        """Evict oldest-atime entries until the cache fits ``max_bytes``.

        The just-written entry (``keep``) is never evicted, so a put
        always makes progress even when one result exceeds the whole
        budget.  Returns the number of entries evicted; races with
        concurrent writers are benign (a vanished file is skipped, and
        whichever process runs last enforces the budget it observes).
        """
        entries = []
        total = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries.append((stat.st_atime, stat.st_size, entry))
            total += stat.st_size
        evicted = 0
        if total <= self.max_bytes:
            return evicted
        entries.sort(key=lambda item: (item[0], str(item[2])))
        for _, size, entry in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and entry == keep:
                continue
            try:
                entry.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            self.lru_evictions += 1
            if self.telemetry is not None:
                self.telemetry.metrics.counter("cache.lru_evictions").inc()
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
