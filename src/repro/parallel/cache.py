"""On-disk result cache for parameter sweeps.

A sweep task is a pure function of its keyword arguments, so its result
can be cached on disk and reused across processes and sessions.  The
cache key is a SHA-256 over three components:

* the task function's identity (``module.qualname``);
* the *canonicalized* parameters (see :func:`canonicalize`);
* the library version (``repro.__version__``), so any release — which
  may change simulation semantics — invalidates every prior entry.

Entries are pickle files under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro/sweeps``), written atomically via a temp file and
``os.replace`` so concurrent writers can never leave a torn entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Tuple, Union

import numpy as np

from repro.traces.record import Trace

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The sweep cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweeps``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "sweeps"


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, repr-hashable canonical form.

    The form must be identical for semantically identical parameters
    regardless of construction order or container identity:

    * dicts are sorted by key;
    * floats use ``float.hex`` (exact, round-trip safe);
    * NumPy arrays become ``(dtype, shape, sha256-of-bytes)`` so large
      trace vectors hash in one pass without repr'ing elements;
    * a :class:`~repro.traces.record.Trace` becomes its *content
      digest* (:meth:`Trace.digest`): two regenerated synthetic traces
      that share a name but not data get different keys, while the
      same data parsed, generated, or viewed through shared memory
      gets the same one — and the digest is memoised on the trace, so
      a 64-task sweep hashes its columns once, not 64 times;
    * objects are ``(qualified class name, canonicalized attributes)``,
      covering dataclasses like ``ScrubServiceModel`` and schedules.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return obj
    if isinstance(obj, Trace):
        return ("trace", obj.digest())
    if isinstance(obj, float):
        return ("f", obj.hex())
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return ("f", float(obj).hex())
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonicalize(item) for item in obj))
    if isinstance(obj, dict):
        return (
            "map",
            tuple(sorted((str(k), canonicalize(v)) for k, v in obj.items())),
        )
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        digest = hashlib.sha256(data.tobytes()).hexdigest()
        return ("ndarray", str(data.dtype), data.shape, digest)
    if isinstance(obj, (set, frozenset)):
        return ("set", tuple(sorted(repr(canonicalize(item)) for item in obj)))
    if callable(obj) and hasattr(obj, "__qualname__"):
        return ("fn", getattr(obj, "__module__", ""), obj.__qualname__)
    state = getattr(obj, "__dict__", None)
    if state is not None:
        cls = type(obj)
        return ("obj", f"{cls.__module__}.{cls.__qualname__}", canonicalize(state))
    return ("repr", repr(obj))


class ResultCache:
    """Persistent (task function, params, version) -> result store.

    Parameters
    ----------
    root:
        Cache directory; default :func:`default_cache_dir`.
    version:
        Invalidation tag mixed into every key; defaults to the library
        version, so upgrading the library abandons stale entries
        in place (they are never read again).
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        version: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if version is None:
            from repro import __version__ as version
        self.version = version
        self.hits = 0
        self.misses = 0

    def key(self, fn: Callable, params: dict) -> str:
        """Cache key for calling ``fn(**params)`` under this version."""
        identity = (
            getattr(fn, "__module__", ""),
            getattr(fn, "__qualname__", repr(fn)),
            self.version,
            canonicalize(params),
        )
        return hashlib.sha256(repr(identity).encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses.

        Any load failure is a miss: besides the usual pickle errors, a
        corrupted entry can make ``pickle.load`` raise nearly anything
        (e.g. ``ValueError`` from a garbage opcode argument), and a
        cache must degrade to recomputation rather than propagate that.
        """
        try:
            with open(self._path(key), "rb") as fh:
                value = pickle.load(fh)
        except Exception:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (temp file + ``os.replace``)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
