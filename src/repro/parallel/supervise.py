"""Fault-tolerant task supervision: heartbeats, retries, stragglers.

:class:`~repro.parallel.runner.SweepRunner` assumes workers mostly
behave: a crashed process gets one clean retry and everything else is
trusted to finish.  Fleet campaigns (:mod:`repro.fleet`) run long
enough that the execution layer itself must be as fault-tolerant as
the storage it models — workers get SIGKILLed by the OOM killer,
wedge in uninterruptible sleep, or straggle an order of magnitude
behind their peers.  :class:`SupervisedRunner` runs one process per
task attempt and supervises it end to end:

* **worker-death detection** — each worker holds a pipe to the
  supervisor; a killed worker closes it, and the EOF is observed on
  the next poll, not after a batch barrier;
* **heartbeats** — a daemon thread in the worker beats every
  ``heartbeat_interval`` seconds, so a worker that is alive-but-frozen
  (SIGSTOP, D-state) is distinguished from one that is merely slow and
  is declared lost after ``heartbeat_grace`` missed beats;
* **hung-task deadline** — a task that exceeds ``task_timeout``
  wall-clock seconds (e.g. an accidental sleep-forever) is terminated
  and treated like any other failed attempt;
* **retries with seeded backoff** — every failure mode feeds one
  :class:`RetryPolicy`: exponential backoff with *deterministic*
  per-(task, attempt) jitter, so a thundering herd of retries spreads
  out identically on every run;
* **straggler re-dispatch** — once half the tasks have finished, a
  task running longer than ``straggler_factor`` times the median
  completion time is speculatively duplicated on a free slot; the
  first copy to finish wins and the loser is terminated.  Tasks are
  pure functions of their parameters, so speculation can never change
  a result, only its arrival time;
* **graceful degradation** — a task that exhausts its attempts is
  reported as a failed :class:`TaskOutcome` instead of poisoning the
  batch; callers salvage the completed remainder (see the campaign
  completeness fraction in :mod:`repro.fleet.campaign`).

Determinism contract: supervision affects *when* results arrive, never
*what* they are.  Task functions must be pure functions of their
kwargs (the :mod:`repro.parallel` rule), which makes retries and
speculative duplicates observationally free.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.worker import PROBE
from repro.parallel.runner import derive_seed

__all__ = ["RetryPolicy", "SupervisedRunner", "TaskOutcome"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``max_attempts`` counts *all* attempts, the first included; the
    delay before attempt ``k+1`` is ``backoff_base *
    backoff_multiplier**(k-1)`` capped at ``backoff_max`` and shrunk by
    up to ``jitter`` (a fraction) using a hash of ``(seed, task,
    attempt)`` — the same task retries at the same instants on every
    run, but different tasks never retry in lockstep.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def delay(self, attempt: int, task_index: int = 0) -> float:
        """Backoff before retrying after ``attempt`` failed tries (>= 1)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1: {attempt}")
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )
        if base == 0.0 or self.jitter == 0.0:
            return base
        unit = derive_seed(self.seed, attempt * 1_000_003 + task_index) / float(
            1 << 63
        )
        return base * (1.0 - self.jitter * unit)


#: Retry policy reproducing the pre-PR 7 SweepRunner behaviour: one
#: immediate retry on a fresh worker, nothing else.
LEGACY_RETRY = RetryPolicy(
    max_attempts=2, backoff_base=0.0, backoff_max=0.0, jitter=0.0
)


@dataclass
class TaskOutcome:
    """What supervision observed for one task, success or not."""

    index: int
    ok: bool = False
    value: Any = None
    error: Optional[str] = None
    #: Attempts actually started (1 for a clean first-try success).
    attempts: int = 0
    #: Attempts terminated by the hung-task deadline.
    timeouts: int = 0
    #: Attempts that ended with the worker process dying.
    worker_deaths: int = 0
    #: Attempts whose heartbeats stopped while the task kept running.
    stalls: int = 0
    #: Wall-clock duration of the winning (or final failing) attempt.
    duration: float = 0.0
    #: Speculative duplicates launched for this task.
    speculated: int = 0
    #: Last progress sample shipped with a heartbeat (the worker-side
    #: :data:`repro.obs.worker.PROBE` payload), if any arrived.
    last_progress: Optional[dict] = None
    #: Wall-clock (``time.time``) moment the task last *advanced* —
    #: not merely beat — so a degraded campaign can say when a shard
    #: actually wedged, not when supervision gave up on it.
    last_progress_time: Optional[float] = None
    #: Peak resident set size across this task's attempts, if the
    #: worker platform reports it.
    peak_rss_kb: Optional[int] = None


def _supervised_worker(conn, fn, kwargs, heartbeat_interval) -> None:
    """Worker entry point: run the task, beating while it runs.

    The heartbeat thread and the result send share ``lock`` because
    ``Connection.send`` is not thread-safe; the thread exits as soon as
    the event is set or the pipe breaks (supervisor gone).
    """
    lock = threading.Lock()
    done = threading.Event()

    def beat() -> None:
        while not done.wait(heartbeat_interval):
            try:
                with lock:
                    conn.send(("hb", PROBE.payload()))
            except Exception:
                return

    if heartbeat_interval and heartbeat_interval > 0:
        threading.Thread(target=beat, daemon=True).start()
    try:
        try:
            value = fn(**kwargs)
        except BaseException as exc:  # report, don't kill the pipe silently
            message = ("err", f"{type(exc).__name__}: {exc}")
        else:
            message = ("ok", value)
        done.set()
        with lock:
            conn.send(message)
    except Exception:
        pass  # supervisor already gone or result unpicklable; EOF tells it
    finally:
        done.set()
        conn.close()


class _Attempt:
    """One running worker process for one task."""

    __slots__ = (
        "index", "params", "attempt", "process", "conn",
        "started", "last_beat", "speculative",
    )

    def __init__(self, index, params, attempt, process, conn, now, speculative):
        self.index = index
        self.params = params
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.started = now
        self.last_beat = now
        self.speculative = speculative


@dataclass
class _Pending:
    """A task attempt waiting for a slot (possibly in backoff)."""

    index: int
    params: dict
    attempt: int
    ready_at: float = 0.0


class SupervisedRunner:
    """Run pure tasks under full supervision (see module docstring).

    Parameters
    ----------
    workers:
        Maximum concurrently running worker processes (default: CPU
        count).  ``0``/``1`` still supervises — one worker at a time —
        because supervision, not parallelism, is the point here.
    task_timeout:
        Hung-task deadline in wall-clock seconds per attempt
        (``None`` disables).
    heartbeat_interval:
        Worker heartbeat period in seconds (``0`` disables heartbeats
        and stall detection).
    heartbeat_grace:
        Missed-beat multiplier: a worker silent for
        ``heartbeat_grace * heartbeat_interval`` seconds is lost.
    retry:
        :class:`RetryPolicy`; default three attempts with jittered
        exponential backoff.
    straggler_factor:
        Speculative re-dispatch threshold as a multiple of the median
        completed duration (``None`` disables speculation).
    telemetry:
        Optional telemetry sink; supervision counters land in its
        metrics registry under ``supervise.*``.
    """

    _POLL = 0.05  # max seconds between supervision sweeps

    def __init__(
        self,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_grace: float = 5.0,
        retry: Optional[RetryPolicy] = None,
        straggler_factor: Optional[float] = None,
        telemetry=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive: {task_timeout}")
        self.task_timeout = task_timeout
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_grace = float(heartbeat_grace)
        self.retry = retry if retry is not None else RetryPolicy()
        if straggler_factor is not None and straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must exceed 1: {straggler_factor}"
            )
        self.straggler_factor = straggler_factor
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        # Fork keeps task functions defined in __main__ usable and skips
        # re-importing the world per attempt; spawn-only platforms fall
        # back to their default.
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)

    # -- internals -----------------------------------------------------------

    def _spawn(self, fn, pending: _Pending, now: float, speculative: bool):
        parent, child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_supervised_worker,
            args=(child, fn, pending.params, self.heartbeat_interval),
            daemon=True,
        )
        process.start()
        child.close()
        return _Attempt(
            pending.index, pending.params, pending.attempt + 1,
            process, parent, now, speculative,
        )

    @staticmethod
    def _terminate(attempt: _Attempt) -> None:
        try:
            attempt.process.terminate()
            attempt.process.join(timeout=2.0)
            if attempt.process.is_alive():
                attempt.process.kill()
                attempt.process.join(timeout=2.0)
        finally:
            attempt.conn.close()

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    # -- the supervision loop ------------------------------------------------

    def map(
        self,
        fn: Callable,
        param_sets: Sequence[dict],
        on_result: Optional[Callable[[TaskOutcome], None]] = None,
        on_event: Optional[Callable[[str, int, dict], None]] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> List[TaskOutcome]:
        """Supervise ``fn(**params)`` for every parameter set.

        Returns one :class:`TaskOutcome` per input, in input order;
        failed tasks come back with ``ok=False`` and the last error
        rather than raising, so a batch always completes.  ``on_result``
        fires once per task the moment its outcome is final (completion
        order, not input order) — campaigns use it to checkpoint shards
        as they land rather than after a barrier.

        ``on_event`` is a purely observational stream for monitors:
        ``(kind, task_index, info)`` with kinds ``attempt_started``,
        ``heartbeat``, ``attempt_failed`` and ``attempt_ok``.  It is
        exception-isolated — a broken observer degrades monitoring,
        never supervision.

        ``should_stop`` is a cooperative cancellation probe, polled
        once per supervision sweep (so within ``_POLL`` seconds).  When
        it returns ``True`` every in-flight attempt is terminated, the
        queue is abandoned, and each unfinished task's outcome comes
        back ``ok=False`` with ``error="cancelled"`` — ``on_result`` is
        *not* fired for them, so checkpointing callers never journal a
        cancelled task.  Already-finished tasks keep their results.
        """
        outcomes = [TaskOutcome(index=i) for i in range(len(param_sets))]

        def emit(kind: str, index: int, info: dict) -> None:
            if on_event is None:
                return
            try:
                on_event(kind, index, info)
            except Exception:
                pass
        queue: deque = deque(
            _Pending(i, dict(params), 0) for i, params in enumerate(param_sets)
        )
        running: Dict[Any, _Attempt] = {}  # conn -> attempt
        done: set = set()
        durations: List[float] = []
        self._count("supervise.tasks", len(param_sets))

        def finish(outcome: TaskOutcome) -> None:
            done.add(outcome.index)
            if not outcome.ok:
                self._count("supervise.failed")
            if on_result is not None:
                on_result(outcome)

        def retire(attempt: _Attempt, now: float, kind: str, error: str) -> None:
            """An attempt failed; retry with backoff or finalise."""
            self._terminate(attempt)
            if attempt.index in done:
                return  # a speculative twin already won
            emit(
                "attempt_failed", attempt.index,
                {
                    "attempt": attempt.attempt,
                    "kind": kind,
                    "error": error,
                    "duration": now - attempt.started,
                },
            )
            outcome = outcomes[attempt.index]
            outcome.error = error
            outcome.duration = now - attempt.started
            if kind == "timeout":
                outcome.timeouts += 1
                self._count("supervise.timeouts")
            elif kind == "stall":
                outcome.stalls += 1
                self._count("supervise.stalls")
            elif kind == "death":
                outcome.worker_deaths += 1
                self._count("supervise.worker_deaths")
            else:
                self._count("supervise.errors")
            # Another in-flight copy of the same task keeps its chance.
            if any(a.index == attempt.index for a in running.values()):
                return
            if attempt.attempt >= self.retry.max_attempts:
                finish(outcome)
                return
            self._count("supervise.retries")
            queue.append(
                _Pending(
                    attempt.index,
                    attempt.params,
                    attempt.attempt,
                    ready_at=now + self.retry.delay(attempt.attempt, attempt.index),
                )
            )

        def succeed(attempt: _Attempt, now: float, value: Any) -> None:
            self._terminate(attempt)
            if attempt.index in done:
                return
            emit(
                "attempt_ok", attempt.index,
                {"attempt": attempt.attempt, "duration": now - attempt.started},
            )
            outcome = outcomes[attempt.index]
            outcome.ok = True
            outcome.value = value
            outcome.error = None
            outcome.duration = now - attempt.started
            durations.append(outcome.duration)
            # Cancel twins (speculation) and queued retries of this task.
            for conn, twin in list(running.items()):
                if twin.index == attempt.index and twin is not attempt:
                    self._terminate(twin)
                    del running[conn]
            for entry in [p for p in queue if p.index == attempt.index]:
                queue.remove(entry)
            finish(outcome)

        stopped = False
        try:
            while queue or running:
                if should_stop is not None and should_stop():
                    stopped = True
                    self._count("supervise.cancelled_sweeps")
                    break
                now = time.monotonic()
                # Launch everything ready while slots are free.
                while len(running) < self.workers and queue:
                    ready = [p for p in queue if p.ready_at <= now]
                    if not ready:
                        break
                    pending = ready[0]
                    queue.remove(pending)
                    if pending.index in done:
                        continue
                    attempt = self._spawn(fn, pending, now, speculative=False)
                    outcomes[pending.index].attempts += 1
                    self._count("supervise.attempts")
                    running[attempt.conn] = attempt
                    emit(
                        "attempt_started", pending.index,
                        {
                            "attempt": attempt.attempt,
                            "speculative": False,
                            "pid": attempt.process.pid,
                        },
                    )
                # Speculative straggler re-dispatch.
                if (
                    self.straggler_factor is not None
                    and len(running) < self.workers
                    and not queue
                    and len(durations) * 2 >= len(param_sets)
                    and durations
                ):
                    median = sorted(durations)[len(durations) // 2]
                    threshold = self.straggler_factor * max(median, self._POLL)
                    for attempt in list(running.values()):
                        if len(running) >= self.workers:
                            break
                        if attempt.speculative or now - attempt.started < threshold:
                            continue
                        copies = sum(
                            1 for a in running.values() if a.index == attempt.index
                        )
                        if copies > 1:
                            continue
                        twin = self._spawn(
                            fn,
                            _Pending(attempt.index, attempt.params, attempt.attempt - 1),
                            now,
                            speculative=True,
                        )
                        outcomes[attempt.index].attempts += 1
                        outcomes[attempt.index].speculated += 1
                        self._count("supervise.speculative")
                        running[twin.conn] = twin
                        emit(
                            "attempt_started", attempt.index,
                            {
                                "attempt": twin.attempt,
                                "speculative": True,
                                "pid": twin.process.pid,
                            },
                        )
                if not running:
                    if queue:
                        wake = min(p.ready_at for p in queue)
                        time.sleep(min(max(wake - now, 0.0), self._POLL) or 0.001)
                    continue
                for conn in mp_connection.wait(list(running), timeout=self._POLL):
                    attempt = running.get(conn)
                    if attempt is None:
                        continue
                    now = time.monotonic()
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        del running[conn]
                        retire(
                            attempt, now, "death",
                            f"worker pid={attempt.process.pid} died "
                            f"(attempt {attempt.attempt})",
                        )
                        continue
                    if kind == "hb":
                        attempt.last_beat = now
                        outcome = outcomes[attempt.index]
                        if isinstance(payload, dict):
                            previous = (outcome.last_progress or {}).get(
                                "done", -1
                            )
                            if payload.get("done", 0) > previous:
                                outcome.last_progress_time = time.time()
                            outcome.last_progress = payload
                            rss = payload.get("rss_kb")
                            if rss is not None:
                                outcome.peak_rss_kb = max(
                                    outcome.peak_rss_kb or 0, int(rss)
                                )
                        emit(
                            "heartbeat", attempt.index,
                            {"attempt": attempt.attempt, "payload": payload},
                        )
                    elif kind == "ok":
                        del running[conn]
                        succeed(attempt, now, payload)
                    else:
                        del running[conn]
                        retire(attempt, now, "error", str(payload))
                # Deadline / heartbeat sweeps.
                now = time.monotonic()
                for conn, attempt in list(running.items()):
                    if (
                        self.task_timeout is not None
                        and now - attempt.started > self.task_timeout
                    ):
                        del running[conn]
                        retire(
                            attempt, now, "timeout",
                            f"task exceeded {self.task_timeout:.3g}s deadline "
                            f"(attempt {attempt.attempt})",
                        )
                    elif (
                        self.heartbeat_interval > 0
                        and now - attempt.last_beat
                        > self.heartbeat_grace * self.heartbeat_interval
                    ):
                        del running[conn]
                        progress = outcomes[attempt.index].last_progress
                        note = (
                            f", last progress {progress.get('done')}"
                            f"/{progress.get('total')}"
                            if progress
                            else ""
                        )
                        retire(
                            attempt, now, "stall",
                            f"no heartbeat for "
                            f"{now - attempt.last_beat:.3g}s "
                            f"(attempt {attempt.attempt}{note})",
                        )
        finally:
            # KeyboardInterrupt or an on_result exception must not leak
            # worker processes.
            for attempt in running.values():
                self._terminate(attempt)
        if stopped:
            for outcome in outcomes:
                if outcome.index in done:
                    continue
                outcome.ok = False
                outcome.error = "cancelled"
                self._count("supervise.cancelled")
        return outcomes
