"""Rebuild-risk analysis: from MLET to data-loss probability.

The paper argues (Section I) that a scrubber's value is the reduction
of the Mean Latent Error Time, because an LSE that survives until a
RAID rebuild loses data.  :class:`RebuildRiskModel` quantifies that
link with a Monte-Carlo model over the scrub schedule:

* LSE bursts arrive on each member disk as a Poisson process;
* the scrubber repairs a sector at its next scheduled visit (per the
  :func:`repro.core.mlet.sector_visit_times` schedule);
* a disk failure at a random time triggers a rebuild, which reads all
  surviving sectors; the rebuild is *exposed* to every LSE whose
  occurrence-to-repair window covers the failure time.

The estimator returns the expected number of unrecoverable sectors per
rebuild and the probability that a rebuild encounters at least one —
directly comparable across scrub orders and rates.

PR 7 adds the *closed-form* side of the same story (Thomasian's RAID
reliability tutorial, Gray & van Ingen's empirical rates):
:func:`group_reliability` predicts MTTDL and mission loss probability
for an n-disk redundancy group from first principles — whole-drive
failure rate, rebuild window, and the scrub-policy-dependent latent
error window — so the fleet Monte-Carlo engine
(:mod:`repro.fleet.montecarlo`) has an analytic model to calibrate
against.  Both share the cycle model::

    OK --(drive failure, rate n*lam)--> degraded/rebuilding
       --(second failure within spare_delay+mttr)--------> data loss
       --(latent error met by the rebuild read, p_lse)---> data loss
       --(otherwise)-------------------------------------> OK again

and the scrub policy enters exactly where the paper says it should:
through the mean latent error time, which sets how many unrepaired
LSEs a rebuild read is exposed to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.mlet import generate_bursts


@dataclass(frozen=True)
class RebuildRisk:
    """Monte-Carlo estimate of rebuild exposure."""

    expected_exposed_sectors: float
    loss_probability: float
    trials: int
    bursts_per_trial: float


class RebuildRiskModel:
    """Risk of a rebuild meeting an unrepaired LSE, per scrub schedule.

    Parameters
    ----------
    visit_times, pass_duration:
        The scrub schedule from
        :func:`repro.core.mlet.sector_visit_times` — when each sector
        of the (surviving) disk is verified within a repeating pass.
    burst_rate:
        LSE bursts per second per disk.
    mean_burst_length, max_burst_length:
        Spatial burst extent (sectors).
    """

    def __init__(
        self,
        visit_times: np.ndarray,
        pass_duration: float,
        burst_rate: float,
        mean_burst_length: float = 32.0,
        max_burst_length: int = 4096,
    ) -> None:
        if pass_duration <= 0:
            raise ValueError(f"pass_duration must be positive: {pass_duration}")
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be positive: {burst_rate}")
        self.visit_times = np.asarray(visit_times, dtype=float)
        self.pass_duration = pass_duration
        self.burst_rate = burst_rate
        self.mean_burst_length = mean_burst_length
        self.max_burst_length = max_burst_length

    def simulate(
        self,
        rng: np.random.Generator,
        trials: int = 500,
        horizon: float = None,
        burst_repair: bool = True,
    ) -> RebuildRisk:
        """Monte-Carlo over failure times and LSE arrivals.

        Each trial: LSEs arrive over ``horizon`` seconds (default ten
        scrub passes), a failure hits at a uniform time, and every bad
        sector not yet repaired is exposed.

        ``burst_repair=True`` (default) models what real systems do on
        detection: the first verified bad sector of a burst triggers
        reconstruction of the whole neighbourhood, so a burst is
        repaired at its *earliest-visited* sector — this is where
        staggered scrubbing's early-probing pays off.  With
        ``burst_repair=False`` each sector waits for its own visit.
        """
        if trials <= 0:
            raise ValueError(f"trials must be positive: {trials}")
        if horizon is None:
            horizon = 10 * self.pass_duration
        total_sectors = len(self.visit_times)
        exposed_counts = np.zeros(trials)
        bursts_seen = 0
        for trial in range(trials):
            count = rng.poisson(self.burst_rate * horizon)
            if count == 0:
                continue
            bursts = generate_bursts(
                rng,
                total_sectors,
                count,
                horizon,
                mean_length=self.mean_burst_length,
                max_length=self.max_burst_length,
            )
            bursts_seen += count
            failure_time = rng.random() * horizon
            exposed = 0
            for burst in bursts:
                if burst.time > failure_time:
                    continue  # occurred after the failure
                visits = self.visit_times[
                    burst.start_sector : burst.start_sector + burst.length
                ]
                phase = burst.time % self.pass_duration
                repair_delay = (visits - phase) % self.pass_duration
                if burst_repair:
                    detection = burst.time + float(repair_delay.min())
                    if detection > failure_time:
                        exposed += burst.length
                else:
                    repair_times = burst.time + repair_delay
                    exposed += int(
                        np.count_nonzero(repair_times > failure_time)
                    )
            exposed_counts[trial] = exposed
        return RebuildRisk(
            expected_exposed_sectors=float(exposed_counts.mean()),
            loss_probability=float((exposed_counts > 0).mean()),
            trials=trials,
            bursts_per_trial=bursts_seen / trials,
        )


# -- closed-form fleet calibration (PR 7) -----------------------------------

#: Hours in a (365-day) year, the fleet layer's time unit conversion.
HOURS_PER_YEAR = 8760.0


def lse_exposure_probability(
    surviving_disks: int,
    lse_burst_rate_per_hour: float,
    latent_window_hours: float,
) -> float:
    """Probability a rebuild read meets >= 1 unrepaired latent error.

    LSE bursts arrive on each disk as a Poisson process; a burst stays
    latent (undetected, unrepaired) for the scrub policy's mean latent
    error time.  By PASTA, the number of latent bursts standing on the
    ``surviving_disks`` drives a rebuild must read is Poisson with mean
    ``surviving_disks * rate * window``; data loss needs at least one.
    """
    if surviving_disks < 0:
        raise ValueError(f"surviving_disks must be >= 0: {surviving_disks}")
    if lse_burst_rate_per_hour < 0 or latent_window_hours < 0:
        raise ValueError("rate and latent window must be non-negative")
    mean = surviving_disks * lse_burst_rate_per_hour * latent_window_hours
    return 1.0 - math.exp(-mean)


@dataclass(frozen=True)
class GroupReliability:
    """Closed-form reliability of one redundancy group."""

    #: Mean time to data loss of the group, hours.
    mttdl_hours: float
    #: 1 / MTTDL — the group's long-run data-loss rate per hour.
    loss_rate_per_hour: float
    #: Probability of >= 1 data-loss event over the mission.
    p_loss_mission: float
    #: Probability a triggered rebuild ends in data loss (either mode).
    p_rebuild_failure: float
    #: ... via a second whole-drive failure inside the rebuild window.
    p_double_failure: float
    #: ... via a latent sector error met by the rebuild read.
    p_lse_exposure: float


def group_reliability(
    disks: int,
    mttf_hours: float,
    mttr_hours: float,
    mission_hours: float,
    spare_delay_hours: float = 0.0,
    lse_burst_rate_per_hour: float = 0.0,
    latent_window_hours: float = 0.0,
    redundancy: int = 1,
) -> GroupReliability:
    """Closed-form MTTDL for an n-disk group tolerating one failure.

    The renewal-cycle model (Thomasian): the group waits
    ``Exp(disks/mttf)`` for a failure, sits exposed for
    ``spare_delay + mttr`` while a spare attaches and rebuilds, and
    loses data if a second drive fails inside that window *or* the
    rebuild read trips an unrepaired LSE
    (:func:`lse_exposure_probability`); otherwise the cycle restarts.
    With per-rebuild failure probability ``P`` and mean cycle length
    ``1/(n*lam) + spare_delay + mttr``::

        MTTDL = cycle / P
        P(loss over mission) = 1 - exp(-mission / MTTDL)

    ``redundancy=0`` (a single drive, or RAID-0) degenerates to
    ``MTTDL = mttf / disks``.  Valid in the ``mttr << mttf`` regime the
    fleet simulates; the Monte-Carlo cross-check
    (``tests/test_fleet_reliability.py``) holds it to the simulator's
    confidence interval.
    """
    if disks < 1:
        raise ValueError(f"disks must be >= 1: {disks}")
    if mttf_hours <= 0 or mttr_hours < 0 or mission_hours <= 0:
        raise ValueError("mttf/mission must be positive, mttr non-negative")
    lam = 1.0 / mttf_hours
    if redundancy == 0 or disks == 1:
        rate = disks * lam
        mttdl = 1.0 / rate
        return GroupReliability(
            mttdl_hours=mttdl,
            loss_rate_per_hour=rate,
            p_loss_mission=1.0 - math.exp(-mission_hours * rate),
            p_rebuild_failure=1.0,
            p_double_failure=0.0,
            p_lse_exposure=0.0,
        )
    window = spare_delay_hours + mttr_hours
    p_double = 1.0 - math.exp(-(disks - 1) * lam * window)
    p_lse = lse_exposure_probability(
        disks - 1, lse_burst_rate_per_hour, latent_window_hours
    )
    p_fail = p_double + (1.0 - p_double) * p_lse
    cycle = 1.0 / (disks * lam) + window
    if p_fail <= 0.0:
        mttdl = math.inf
        return GroupReliability(
            mttdl_hours=mttdl,
            loss_rate_per_hour=0.0,
            p_loss_mission=0.0,
            p_rebuild_failure=0.0,
            p_double_failure=0.0,
            p_lse_exposure=0.0,
        )
    mttdl = cycle / p_fail
    return GroupReliability(
        mttdl_hours=mttdl,
        loss_rate_per_hour=1.0 / mttdl,
        p_loss_mission=1.0 - math.exp(-mission_hours / mttdl),
        p_rebuild_failure=p_fail,
        p_double_failure=p_double,
        p_lse_exposure=p_lse,
    )
