"""Rebuild-risk analysis: from MLET to data-loss probability.

The paper argues (Section I) that a scrubber's value is the reduction
of the Mean Latent Error Time, because an LSE that survives until a
RAID rebuild loses data.  :class:`RebuildRiskModel` quantifies that
link with a Monte-Carlo model over the scrub schedule:

* LSE bursts arrive on each member disk as a Poisson process;
* the scrubber repairs a sector at its next scheduled visit (per the
  :func:`repro.core.mlet.sector_visit_times` schedule);
* a disk failure at a random time triggers a rebuild, which reads all
  surviving sectors; the rebuild is *exposed* to every LSE whose
  occurrence-to-repair window covers the failure time.

The estimator returns the expected number of unrecoverable sectors per
rebuild and the probability that a rebuild encounters at least one —
directly comparable across scrub orders and rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mlet import generate_bursts


@dataclass(frozen=True)
class RebuildRisk:
    """Monte-Carlo estimate of rebuild exposure."""

    expected_exposed_sectors: float
    loss_probability: float
    trials: int
    bursts_per_trial: float


class RebuildRiskModel:
    """Risk of a rebuild meeting an unrepaired LSE, per scrub schedule.

    Parameters
    ----------
    visit_times, pass_duration:
        The scrub schedule from
        :func:`repro.core.mlet.sector_visit_times` — when each sector
        of the (surviving) disk is verified within a repeating pass.
    burst_rate:
        LSE bursts per second per disk.
    mean_burst_length, max_burst_length:
        Spatial burst extent (sectors).
    """

    def __init__(
        self,
        visit_times: np.ndarray,
        pass_duration: float,
        burst_rate: float,
        mean_burst_length: float = 32.0,
        max_burst_length: int = 4096,
    ) -> None:
        if pass_duration <= 0:
            raise ValueError(f"pass_duration must be positive: {pass_duration}")
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be positive: {burst_rate}")
        self.visit_times = np.asarray(visit_times, dtype=float)
        self.pass_duration = pass_duration
        self.burst_rate = burst_rate
        self.mean_burst_length = mean_burst_length
        self.max_burst_length = max_burst_length

    def simulate(
        self,
        rng: np.random.Generator,
        trials: int = 500,
        horizon: float = None,
        burst_repair: bool = True,
    ) -> RebuildRisk:
        """Monte-Carlo over failure times and LSE arrivals.

        Each trial: LSEs arrive over ``horizon`` seconds (default ten
        scrub passes), a failure hits at a uniform time, and every bad
        sector not yet repaired is exposed.

        ``burst_repair=True`` (default) models what real systems do on
        detection: the first verified bad sector of a burst triggers
        reconstruction of the whole neighbourhood, so a burst is
        repaired at its *earliest-visited* sector — this is where
        staggered scrubbing's early-probing pays off.  With
        ``burst_repair=False`` each sector waits for its own visit.
        """
        if trials <= 0:
            raise ValueError(f"trials must be positive: {trials}")
        if horizon is None:
            horizon = 10 * self.pass_duration
        total_sectors = len(self.visit_times)
        exposed_counts = np.zeros(trials)
        bursts_seen = 0
        for trial in range(trials):
            count = rng.poisson(self.burst_rate * horizon)
            if count == 0:
                continue
            bursts = generate_bursts(
                rng,
                total_sectors,
                count,
                horizon,
                mean_length=self.mean_burst_length,
                max_length=self.max_burst_length,
            )
            bursts_seen += count
            failure_time = rng.random() * horizon
            exposed = 0
            for burst in bursts:
                if burst.time > failure_time:
                    continue  # occurred after the failure
                visits = self.visit_times[
                    burst.start_sector : burst.start_sector + burst.length
                ]
                phase = burst.time % self.pass_duration
                repair_delay = (visits - phase) % self.pass_duration
                if burst_repair:
                    detection = burst.time + float(repair_delay.min())
                    if detection > failure_time:
                        exposed += burst.length
                else:
                    repair_times = burst.time + repair_delay
                    exposed += int(
                        np.count_nonzero(repair_times > failure_time)
                    )
            exposed_counts[trial] = exposed
        return RebuildRisk(
            expected_exposed_sectors=float(exposed_counts.mean()),
            loss_probability=float((exposed_counts > 0).mean()),
            trials=trials,
            bursts_per_trial=bursts_seen / trials,
        )
