"""Latent-sector-error bookkeeping for array members.

An :class:`ErrorMap` tracks, per disk, which sectors currently hold
latent errors.  LSEs are *latent*: they are only discovered when the
sector is read or verified.  A scrubber's ``VERIFY`` that covers a bad
sector detects it, after which the array repairs it from redundancy
(we model repair as instantaneous relative to scrub pass times, which
matches how per-sector reconstruction costs compare to full passes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple


class ErrorMap:
    """Bad-sector sets for every member disk of an array."""

    def __init__(self, disks: int) -> None:
        if disks <= 0:
            raise ValueError(f"disks must be positive: {disks}")
        self._bad: List[Set[int]] = [set() for _ in range(disks)]
        self.injected = 0
        self.repaired = 0

    def inject(self, disk: int, lbn: int, sectors: int = 1) -> None:
        """Mark ``sectors`` sectors starting at ``lbn`` as latent errors."""
        self._check_disk(disk)
        if lbn < 0 or sectors <= 0:
            raise ValueError(f"bad extent: lbn={lbn} sectors={sectors}")
        before = len(self._bad[disk])
        self._bad[disk].update(range(lbn, lbn + sectors))
        self.injected += len(self._bad[disk]) - before

    def scan(self, disk: int, lbn: int, sectors: int) -> List[int]:
        """Bad sectors of ``disk`` within ``[lbn, lbn+sectors)``.

        This is what a READ or VERIFY discovers.
        """
        self._check_disk(disk)
        bad = self._bad[disk]
        if len(bad) <= sectors:
            return sorted(s for s in bad if lbn <= s < lbn + sectors)
        return [s for s in range(lbn, lbn + sectors) if s in bad]

    def repair(self, disk: int, sectors: Iterable[int]) -> None:
        """Clear repaired sectors (reconstructed from redundancy)."""
        self._check_disk(disk)
        for sector in sectors:
            if sector in self._bad[disk]:
                self._bad[disk].discard(sector)
                self.repaired += 1

    def clear_disk(self, disk: int) -> None:
        """Forget a disk's errors (it was replaced)."""
        self._check_disk(disk)
        self._bad[disk].clear()

    def bad_count(self, disk: int = None) -> int:
        if disk is None:
            return sum(len(b) for b in self._bad)
        self._check_disk(disk)
        return len(self._bad[disk])

    def _check_disk(self, disk: int) -> None:
        if not 0 <= disk < len(self._bad):
            raise ValueError(f"disk index out of range: {disk}")
