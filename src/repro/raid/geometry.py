"""RAID striping geometry: logical extents to per-disk extents.

Supports the three layouts relevant to scrubbing studies:

* **RAID-0** — plain striping (no redundancy; useful as a baseline);
* **RAID-1** — mirroring over two disks;
* **RAID-5** — block-rotated parity (left-symmetric): in stripe ``s``,
  the parity chunk lives on disk ``(n-1) - (s mod n)`` and data chunks
  fill the remaining disks in order.

All mappings are pure functions so they can be tested exhaustively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class RaidLevel(enum.Enum):
    RAID0 = "raid0"
    RAID1 = "raid1"
    RAID5 = "raid5"


@dataclass(frozen=True)
class ChunkLocation:
    """One physical chunk backing part of a logical extent."""

    disk: int
    lbn: int
    sectors: int
    #: Offset of this chunk's first sector within the logical extent.
    logical_offset: int


class RaidGeometry:
    """Striping arithmetic for an array of ``disks`` equal-size members.

    Parameters
    ----------
    level:
        RAID level.
    disks:
        Member count (RAID-1 requires exactly 2; RAID-5 at least 3).
    chunk_sectors:
        Stripe unit in sectors.
    disk_sectors:
        Usable sectors per member disk.
    """

    def __init__(
        self,
        level: RaidLevel,
        disks: int,
        chunk_sectors: int,
        disk_sectors: int,
    ) -> None:
        if chunk_sectors <= 0 or disk_sectors <= 0:
            raise ValueError("chunk_sectors and disk_sectors must be positive")
        if disk_sectors % chunk_sectors:
            raise ValueError("disk_sectors must be a multiple of chunk_sectors")
        if level is RaidLevel.RAID1 and disks != 2:
            raise ValueError("RAID-1 here means a 2-way mirror")
        if level is RaidLevel.RAID5 and disks < 3:
            raise ValueError("RAID-5 needs at least 3 disks")
        if level is RaidLevel.RAID0 and disks < 2:
            raise ValueError("RAID-0 needs at least 2 disks")
        self.level = level
        self.disks = disks
        self.chunk_sectors = chunk_sectors
        self.disk_sectors = disk_sectors

    # -- capacity -----------------------------------------------------------
    @property
    def data_disks(self) -> int:
        if self.level is RaidLevel.RAID0:
            return self.disks
        if self.level is RaidLevel.RAID1:
            return 1
        return self.disks - 1

    @property
    def stripes(self) -> int:
        return self.disk_sectors // self.chunk_sectors

    @property
    def total_data_sectors(self) -> int:
        return self.stripes * self.data_disks * self.chunk_sectors

    # -- RAID-5 layout ---------------------------------------------------------
    def parity_disk(self, stripe: int) -> int:
        """Disk holding the parity chunk of ``stripe`` (RAID-5 only)."""
        if self.level is not RaidLevel.RAID5:
            raise ValueError(f"{self.level} has no rotating parity")
        return (self.disks - 1) - (stripe % self.disks)

    def _data_disk(self, stripe: int, index: int) -> int:
        """Disk holding data chunk ``index`` of ``stripe`` (RAID-5)."""
        parity = self.parity_disk(stripe)
        # Left-symmetric: data starts just after the parity disk, wrapping.
        return (parity + 1 + index) % self.disks

    # -- mapping ------------------------------------------------------------------
    def map_read(self, lbn: int, sectors: int) -> List[ChunkLocation]:
        """Physical chunks to read for logical extent ``[lbn, lbn+sectors)``.

        For RAID-1 reads, the primary (disk 0) copy is returned; callers
        balancing across mirrors can flip the disk index.
        """
        self._check_extent(lbn, sectors)
        chunks = []
        offset = 0
        while sectors > 0:
            chunk_index, within = divmod(lbn, self.chunk_sectors)
            take = min(sectors, self.chunk_sectors - within)
            stripe, data_index = divmod(chunk_index, self.data_disks)
            disk, physical = self._locate(stripe, data_index, within)
            chunks.append(
                ChunkLocation(
                    disk=disk, lbn=physical, sectors=take, logical_offset=offset
                )
            )
            lbn += take
            offset += take
            sectors -= take
        return chunks

    def map_write(self, lbn: int, sectors: int) -> List[ChunkLocation]:
        """Physical chunks *written* for a logical write (data + parity +
        mirror copies).  Parity chunks carry ``logical_offset=-1``."""
        self._check_extent(lbn, sectors)
        writes = list(self.map_read(lbn, sectors))
        if self.level is RaidLevel.RAID1:
            writes += [
                ChunkLocation(1, c.lbn, c.sectors, c.logical_offset)
                for c in self.map_read(lbn, sectors)
            ]
        elif self.level is RaidLevel.RAID5:
            seen = set()
            for chunk in self.map_read(lbn, sectors):
                stripe = chunk.lbn // self.chunk_sectors
                within = chunk.lbn % self.chunk_sectors
                key = (stripe, within, chunk.sectors)
                if key in seen:
                    continue
                seen.add(key)
                writes.append(
                    ChunkLocation(
                        disk=self.parity_disk(stripe),
                        lbn=chunk.lbn,
                        sectors=chunk.sectors,
                        logical_offset=-1,
                    )
                )
        return writes

    def stripe_members(self, stripe: int) -> List[ChunkLocation]:
        """All physical chunks of ``stripe`` (used by rebuild)."""
        if not 0 <= stripe < self.stripes:
            raise ValueError(f"stripe out of range: {stripe}")
        base = stripe * self.chunk_sectors
        if self.level is RaidLevel.RAID1:
            return [
                ChunkLocation(d, base, self.chunk_sectors, 0) for d in (0, 1)
            ]
        return [
            ChunkLocation(d, base, self.chunk_sectors, -1)
            for d in range(self.disks)
        ]

    def _locate(
        self, stripe: int, data_index: int, within: int
    ) -> Tuple[int, int]:
        physical = stripe * self.chunk_sectors + within
        if physical >= self.disk_sectors:
            raise ValueError("logical address beyond array capacity")
        if self.level is RaidLevel.RAID0:
            return data_index, physical
        if self.level is RaidLevel.RAID1:
            return 0, physical
        return self._data_disk(stripe, data_index), physical

    def _check_extent(self, lbn: int, sectors: int) -> None:
        if lbn < 0 or sectors <= 0:
            raise ValueError(f"bad extent: lbn={lbn} sectors={sectors}")
        if lbn + sectors > self.total_data_sectors:
            raise ValueError(
                f"extent [{lbn}, {lbn + sectors}) exceeds array capacity "
                f"{self.total_data_sectors}"
            )
