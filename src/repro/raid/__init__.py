"""RAID substrate: the context that makes scrubbing matter.

The paper's motivation (Section I): latent sector errors are harmless
while redundancy holds, but an LSE *discovered during a RAID rebuild*
— after a disk failure has already consumed the redundancy — loses
data.  Scrubbing shrinks the window between an LSE's occurrence and
its repair (the MLET), and therefore the probability that a rebuild
trips over one.

This package provides:

* :class:`~repro.raid.geometry.RaidGeometry` — logical-to-physical
  striping for RAID-0/1/5;
* :class:`~repro.raid.array.RaidArray` — a simulated array over
  multiple :class:`~repro.sched.device.BlockDevice`\\ s with per-disk
  latent-error maps, scrub-repair hooks, degraded reads and rebuilds;
* :mod:`repro.raid.reliability` — Monte-Carlo estimation of the
  probability a rebuild encounters an unrepaired LSE, as a function of
  the scrub order and rate (connecting the paper's MLET argument to
  data loss).
"""

from repro.raid.array import DataLossError, RaidArray
from repro.raid.errors import ErrorMap
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.raid.reliability import (
    HOURS_PER_YEAR,
    GroupReliability,
    RebuildRiskModel,
    group_reliability,
    lse_exposure_probability,
)

__all__ = [
    "DataLossError",
    "ErrorMap",
    "GroupReliability",
    "HOURS_PER_YEAR",
    "RaidArray",
    "RaidGeometry",
    "RaidLevel",
    "RebuildRiskModel",
    "group_reliability",
    "lse_exposure_probability",
]
