"""A simulated RAID array over multiple block devices.

:class:`RaidArray` stripes logical I/O over member
:class:`~repro.sched.device.BlockDevice`\\ s, keeps an
:class:`~repro.raid.errors.ErrorMap` of latent sector errors, and —
via device observers — makes *any* scrubber attached to a member
device detect and repair the LSEs its ``VERIFY`` requests cover (as
long as redundancy is available).  A disk failure puts the array in
degraded mode; :meth:`rebuild` reconstructs the failed member and
counts the unrecoverable errors it trips over, which is exactly the
data-loss mechanism the paper's introduction describes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.disk.commands import DiskCommand, Opcode
from repro.raid.errors import ErrorMap
from repro.raid.geometry import RaidGeometry, RaidLevel
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import AllOf, Simulation


class DataLossError(Exception):
    """Raised when data is lost with no redundancy left to recover it."""


class RaidArray:
    """A RAID-0/1/5 array with latent-error tracking.

    Parameters
    ----------
    sim:
        Owning simulation.
    devices:
        Member block devices (all the same size, >= geometry.disk_sectors).
    geometry:
        Striping layout.
    strict:
        If ``True``, unrecoverable reads raise :class:`DataLossError`;
        otherwise they are counted in :attr:`data_loss_events` (the mode
        reliability studies use).
    """

    def __init__(
        self,
        sim: Simulation,
        devices: List[BlockDevice],
        geometry: RaidGeometry,
        strict: bool = False,
    ) -> None:
        if len(devices) != geometry.disks:
            raise ValueError(
                f"geometry expects {geometry.disks} disks, got {len(devices)}"
            )
        for device in devices:
            if device.drive.total_sectors < geometry.disk_sectors:
                raise ValueError(
                    "member device smaller than geometry.disk_sectors"
                )
        self.sim = sim
        self.devices = devices
        self.geometry = geometry
        self.errors = ErrorMap(geometry.disks)
        self.strict = strict
        self.failed: Optional[int] = None

        self.errors_detected_by_scrub = 0
        self.errors_detected_by_read = 0
        self.errors_repaired = 0
        self.data_loss_events = 0

        for index, device in enumerate(devices):
            device.observers.append(self._make_observer(index))

    # -- error plumbing ---------------------------------------------------------
    def _make_observer(self, disk: int):
        def observe(kind: str, request: IORequest, now: float) -> None:
            if kind != "complete":
                return
            if request.source == "rebuild":
                return  # the rebuild process does its own error handling
            if request.command.opcode not in (Opcode.READ, Opcode.VERIFY):
                return
            bad = self.errors.scan(
                disk, request.command.lbn, request.command.sectors
            )
            if not bad:
                return
            if request.command.opcode is Opcode.VERIFY:
                self.errors_detected_by_scrub += len(bad)
            else:
                self.errors_detected_by_read += len(bad)
            self._handle_detected(disk, bad)

        return observe

    def _handle_detected(self, disk: int, sectors: List[int]) -> None:
        """Repair from redundancy, or record/raise data loss."""
        if self._redundancy_available(disk):
            self.errors.repair(disk, sectors)
            self.errors_repaired += len(sectors)
        else:
            self.data_loss_events += len(sectors)
            if self.strict:
                raise DataLossError(
                    f"unrecoverable sectors {sectors[:4]}... on disk {disk}"
                )

    def _redundancy_available(self, disk: int) -> bool:
        if self.geometry.level is RaidLevel.RAID0:
            return False
        return self.failed is None or self.failed == disk

    # -- failure / rebuild -----------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Take a member out of service (its contents are gone)."""
        if not 0 <= disk < self.geometry.disks:
            raise ValueError(f"disk index out of range: {disk}")
        if self.failed is not None:
            raise RuntimeError("array already degraded")
        if self.geometry.level is RaidLevel.RAID0:
            raise RuntimeError("RAID-0 cannot survive a disk failure")
        self.failed = disk
        self.errors.clear_disk(disk)

    def rebuild(self, request_sectors: int = 256):
        """Reconstruct the failed disk onto itself (hot spare model).

        Returns a process whose value is the number of *unrecoverable*
        sectors encountered — stripes where a surviving member held an
        undetected LSE when the rebuild read it.
        """
        if self.failed is None:
            raise RuntimeError("no failed disk to rebuild")
        return self.sim.process(self._rebuild(request_sectors))

    def _rebuild(self, request_sectors: int):
        failed = self.failed
        unrecoverable = 0
        survivors = [
            d for d in range(self.geometry.disks) if d != failed
        ]
        step = max(self.geometry.chunk_sectors, request_sectors)
        for start in range(0, self.geometry.disk_sectors, step):
            sectors = min(step, self.geometry.disk_sectors - start)
            reads = []
            for disk in survivors:
                reads.append(
                    self._submit(
                        disk, DiskCommand.read(start, sectors), "rebuild"
                    )
                )
            yield AllOf(self.sim, reads)
            # Any latent error on a survivor in this range is fatal for
            # the corresponding reconstructed sectors.
            for disk in survivors:
                bad = self.errors.scan(disk, start, sectors)
                if bad:
                    unrecoverable += len(bad)
                    self.data_loss_events += len(bad)
                    self.errors.repair(disk, bad)  # remapped afterwards
            yield self._submit(
                failed, DiskCommand.write(start, sectors), "rebuild"
            )
        self.failed = None
        return unrecoverable

    # -- logical I/O -------------------------------------------------------------------
    def read(self, lbn: int, sectors: int, source: str = "array"):
        """Logical read; returns a process completing when data is ready."""
        return self.sim.process(self._read(lbn, sectors, source))

    def write(self, lbn: int, sectors: int, source: str = "array"):
        """Logical write (data + parity/mirror chunks)."""
        return self.sim.process(self._write(lbn, sectors, source))

    def _read(self, lbn: int, sectors: int, source: str):
        pending = []
        for chunk in self.geometry.map_read(lbn, sectors):
            if chunk.disk == self.failed:
                # Degraded read: reconstruct from the other members.
                stripe = chunk.lbn // self.geometry.chunk_sectors
                for member in self.geometry.stripe_members(stripe):
                    if member.disk == self.failed:
                        continue
                    pending.append(
                        self._submit(
                            member.disk,
                            DiskCommand.read(chunk.lbn, chunk.sectors),
                            source,
                        )
                    )
            else:
                pending.append(
                    self._submit(
                        chunk.disk,
                        DiskCommand.read(chunk.lbn, chunk.sectors),
                        source,
                    )
                )
        if pending:
            yield AllOf(self.sim, pending)

    def _write(self, lbn: int, sectors: int, source: str):
        pending = []
        for chunk in self.geometry.map_write(lbn, sectors):
            if chunk.disk == self.failed:
                continue  # degraded: the failed member's share is skipped
            pending.append(
                self._submit(
                    chunk.disk,
                    DiskCommand.write(chunk.lbn, chunk.sectors),
                    source,
                )
            )
            # A write refreshes the sectors it covers: any latent error
            # underneath is overwritten.
            self.errors.repair(
                chunk.disk, range(chunk.lbn, chunk.lbn + chunk.sectors)
            )
        if pending:
            yield AllOf(self.sim, pending)

    def _submit(self, disk: int, command: DiskCommand, source: str):
        request = IORequest(command, priority=PriorityClass.BE, source=source)
        return self.devices[disk].submit(request)
