"""The scrubbing framework (paper Section III-C, Fig. 2).

The paper implements scrubbing inside the Linux block layer: one
scrubber thread per block device sleeps until activated, then walks
the disk issuing ``VERIFY`` commands according to a pluggable
algorithm, going back to sleep between requests.  New algorithms take
"approx. 50 LoC" — the same is true here: an algorithm is a small
iterator class over ``(lbn, sectors)`` extents.

Two integration styles mirror the paper's kernel/user comparison:

* **kernel style** (default): scrub requests are disguised as ordinary
  reads so the I/O scheduler can sort them and apply priority classes;
* **user style** (``soft_barrier=True``): requests behave like
  pass-through ``ioctl`` commands — soft barriers that no scheduler
  optimisation applies to and whose priority class is ignored.

Rate limiting supports the two timing disciplines observed in the
paper's Fig. 3: ``delay_mode="gap"`` sleeps ``delay`` seconds after a
request *completes* (the kernel scrubber), while
``delay_mode="interval"`` issues one request every ``delay`` seconds
measured issue-to-issue (the user-level scrubber's timer loop), which
is why a delayed user scrubber sustains the full ``size/delay``
throughput while the kernel scrubber pays ``size/(delay + service)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.disk.commands import SECTOR_SIZE, CommandStatus, DiskCommand
from repro.faults.remediation import (
    RemediationPolicy,
    RemediationStats,
    remediate_extent,
)
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import Interrupt, Process, ReusableTimeout, Simulation

#: One scrub extent: starting LBN and sector count.
Extent = Tuple[int, int]


class ScrubAlgorithm:
    """Order in which a full disk pass visits its sectors.

    Subclasses implement :meth:`reset` and :meth:`next_extent`; the
    framework calls ``reset`` at the start of every pass.
    """

    def reset(self, total_sectors: int, request_sectors: int) -> None:
        raise NotImplementedError

    def next_extent(self) -> Optional[Extent]:
        """The next extent to verify, or ``None`` when the pass is done."""
        raise NotImplementedError


class Scrubber:
    """A per-device background scrubbing thread.

    Parameters
    ----------
    sim, device:
        Simulation context and the device to scrub.
    algorithm:
        Scrub order (:class:`~repro.core.sequential.SequentialScrub`,
        :class:`~repro.core.staggered.StaggeredScrub`, ...).
    request_bytes:
        Scrub request size (the paper's key tunable, 64 KB – 4 MB).
    priority:
        CFQ class for kernel-style requests (``IDLE`` or ``BE``).
    soft_barrier:
        ``True`` selects user-style pass-through semantics.
    delay / delay_mode:
        Rate limiting between requests; see module docstring.
    max_passes:
        Stop after this many full-disk passes (``None`` = run forever).
    remediation:
        Error-lifecycle policy.  When set and a scrub ``VERIFY`` comes
        back ``MEDIUM_ERROR``, the scrubber localises the bad sector by
        splitting the extent (bounded backoff between probes), remaps
        it to the spare pool, and re-verifies the remap — the full
        detection-to-repair lifecycle.  ``None`` counts errors but
        leaves the sectors bad.
    """

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        algorithm: ScrubAlgorithm,
        request_bytes: int = 64 * 1024,
        priority: PriorityClass = PriorityClass.IDLE,
        soft_barrier: bool = False,
        delay: float = 0.0,
        delay_mode: str = "gap",
        max_passes: Optional[int] = None,
        source: str = "scrubber",
        remediation: Optional[RemediationPolicy] = None,
    ) -> None:
        if request_bytes % SECTOR_SIZE:
            raise ValueError(
                f"request_bytes must be a multiple of {SECTOR_SIZE}: {request_bytes}"
            )
        if delay < 0:
            raise ValueError(f"delay must be non-negative: {delay}")
        if delay_mode not in ("gap", "interval"):
            raise ValueError(f"unknown delay_mode: {delay_mode!r}")
        if max_passes is not None and max_passes <= 0:
            raise ValueError(f"max_passes must be positive: {max_passes}")
        self.sim = sim
        self.device = device
        self.algorithm = algorithm
        self.request_sectors = request_bytes // SECTOR_SIZE
        self.priority = priority
        self.soft_barrier = soft_barrier
        self.delay = delay
        self.delay_mode = delay_mode
        self.max_passes = max_passes
        self.source = source
        self.remediation = remediation

        self.requests_issued = 0
        self.bytes_scrubbed = 0
        self.passes_completed = 0
        #: Scrub VERIFY requests the drive failed (detections, not sectors).
        self.errors_seen = 0
        #: Lifecycle counters (splits, remaps, failures).
        self.remediation_stats = RemediationStats()
        self._process: Optional[Process] = None
        self._draining = False
        #: Pooled rate-limit sleep timer: one event recycled across the
        #: pass loop instead of one Timeout allocation per request.  A
        #: timer abandoned mid-sleep (the scrubber was interrupted) is
        #: not yet processed, so the ``.processed`` guard falls back to
        #: a fresh allocation for that sleep.
        self._sleep = ReusableTimeout(sim)
        sink = sim.telemetry
        self._telemetry = sink if sink is not None and sink.enabled else None

    def start(self) -> Process:
        """Activate scrubbing for this device."""
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("scrubber already running")
        self._draining = False
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        """Deactivate the scrubber (it exits at its next wait point)."""
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")

    def request_stop(self) -> None:
        """Graceful stop: finish the in-flight extent (and any error
        remediation it triggered), then exit — nothing is interrupted
        mid-lifecycle, so every detected error still ends remapped."""
        self._draining = True

    def throughput(self, duration: float) -> float:
        """Scrubbed bytes/second over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        return self.bytes_scrubbed / duration

    @property
    def sectors_remapped(self) -> int:
        """Bad sectors this scrubber localised, remapped and re-verified."""
        return self.remediation_stats.sectors_remapped

    # -- the scrubber thread ----------------------------------------------------
    def _run(self):
        total = self.device.drive.total_sectors
        sink = self._telemetry
        pass_bytes = total * SECTOR_SIZE
        try:
            while self.max_passes is None or self.passes_completed < self.max_passes:
                self.algorithm.reset(total, self.request_sectors)
                if sink is not None:
                    sink.scrub_pass_started(
                        self.sim.now, self.source, self.passes_completed
                    )
                while True:
                    if self._draining:
                        return
                    extent = self.algorithm.next_extent()
                    if extent is None:
                        break
                    issue_time = self.sim.now
                    request = yield self._verify(*extent)
                    if sink is not None:
                        within = self.bytes_scrubbed - (
                            self.passes_completed * pass_bytes
                        )
                        sink.scrub_progress(
                            self.sim.now,
                            self.source,
                            min(1.0, within / pass_bytes) if pass_bytes else 1.0,
                        )
                    if request.breakdown.status is CommandStatus.MEDIUM_ERROR:
                        self.errors_seen += 1
                        if sink is not None:
                            sink.fault_event(
                                self.sim.now,
                                "scrub_detection",
                                request.breakdown.error_lbn,
                                source=self.source,
                            )
                        if self.remediation is not None:
                            yield from remediate_extent(
                                self.sim,
                                self.device,
                                extent[0],
                                extent[1],
                                self.remediation,
                                self._verify,
                                self.remediation_stats,
                            )
                    if self.delay > 0:
                        if self.delay_mode == "gap":
                            wait = self.delay
                        else:
                            due = issue_time + self.delay
                            wait = due - self.sim.now if due > self.sim.now else None
                        if wait is not None:
                            sleep = self._sleep
                            yield (
                                sleep.arm(wait)
                                if sleep.processed
                                else self.sim.timeout(wait)
                            )
                self.passes_completed += 1
                if sink is not None:
                    sink.scrub_pass_completed(
                        self.sim.now,
                        self.source,
                        self.passes_completed - 1,
                        self.bytes_scrubbed,
                    )
        except Interrupt:
            return

    def _verify(self, lbn: int, sectors: int):
        request = IORequest(
            DiskCommand.verify(lbn, sectors),
            priority=self.priority,
            source=self.source,
            soft_barrier=self.soft_barrier,
        )
        completion = self.device.submit(request)
        self.requests_issued += 1
        self.bytes_scrubbed += sectors * SECTOR_SIZE
        return completion
