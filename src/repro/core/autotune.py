"""Online re-tuning of Waiting-scrubber parameters (Section V-D).

The paper: "the simulations can be repeated to adapt the parameter
values if the workload changes substantially."  :class:`AutoTuner`
automates that: it observes the device's foreground traffic, keeps a
sliding window of recent idle intervals, and periodically re-runs the
:class:`~repro.core.optimizer.ScrubParameterOptimizer` against the
administrator's slowdown goal, applying the new (wait threshold,
request size) pair to a live
:class:`~repro.core.policies.device.WaitingScrubber` in place.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.analysis.service_model import ScrubServiceModel
from repro.core.optimizer import OptimalParameters, ScrubParameterOptimizer
from repro.core.policies.device import WaitingScrubber
from repro.disk.commands import SECTOR_SIZE
from repro.sim import Interrupt, Process, Simulation


class AutoTuner:
    """Periodically re-optimises a running Waiting scrubber.

    Parameters
    ----------
    sim:
        Owning simulation.
    scrubber:
        The live scrubber whose ``threshold`` and ``request_sectors``
        are retuned in place.
    service_model:
        Scrub service times for the drive.
    slowdown_goal:
        Mean tolerable slowdown per foreground request (seconds).
    retune_interval:
        How often to re-run the optimisation.
    window:
        Length of the sliding observation window (seconds).
    min_samples:
        Idle intervals required before a retune is attempted.
    method:
        ``"grid"`` (default) re-runs the exhaustive optimiser;
        ``"search"`` uses the successive-halving tuner
        (:class:`~repro.core.search.SuccessiveHalvingSearch`) — the
        right choice when the observation window holds many intervals
        and retunes are frequent.
    search_seed:
        Root seed for the ``"search"`` method's rung subsamples.
    """

    def __init__(
        self,
        sim: Simulation,
        scrubber: WaitingScrubber,
        service_model: ScrubServiceModel,
        slowdown_goal: float,
        retune_interval: float = 600.0,
        window: float = 3600.0,
        min_samples: int = 200,
        runner=None,
        method: str = "grid",
        search_seed: int = 0,
    ) -> None:
        if slowdown_goal <= 0:
            raise ValueError(f"slowdown_goal must be positive: {slowdown_goal}")
        if retune_interval <= 0 or window <= 0:
            raise ValueError("retune_interval and window must be positive")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2: {min_samples}")
        if method not in ("grid", "search"):
            raise ValueError(f"method must be 'grid' or 'search': {method!r}")
        self.method = method
        self.search_seed = search_seed
        self.sim = sim
        self.scrubber = scrubber
        self.service_model = service_model
        self.slowdown_goal = slowdown_goal
        self.retune_interval = retune_interval
        self.window = window
        self.min_samples = min_samples
        #: Optional :class:`~repro.parallel.SweepRunner` fanning each
        #: retune's per-size threshold searches out (and caching them,
        #: so a stable workload's repeat retunes are free).
        self.runner = runner

        #: (end_time, duration) of observed idle intervals.
        self._idle: Deque[Tuple[float, float]] = deque()
        #: Completion times of foreground requests.
        self._request_times: Deque[float] = deque()
        self._fg_outstanding = 0
        self._idle_since: Optional[float] = sim.now
        self.retunes = 0
        self.history: List[OptimalParameters] = []
        self._process: Optional[Process] = None

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> Process:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("auto-tuner already running")
        self.scrubber.device.observers.append(self._observe)
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")
        try:
            self.scrubber.device.observers.remove(self._observe)
        except ValueError:
            pass

    # -- observation ----------------------------------------------------------------
    def _observe(self, kind: str, request, now: float) -> None:
        if request.source == self.scrubber.source:
            return
        if kind == "submit":
            if self._fg_outstanding == 0 and self._idle_since is not None:
                duration = now - self._idle_since
                if duration > 0:
                    self._idle.append((now, duration))
            self._idle_since = None
            self._fg_outstanding += 1
        elif kind == "complete":
            self._fg_outstanding -= 1
            self._request_times.append(now)
            if self._fg_outstanding == 0:
                self._idle_since = now

    def _trim(self, now: float) -> None:
        horizon = now - self.window
        while self._idle and self._idle[0][0] < horizon:
            self._idle.popleft()
        while self._request_times and self._request_times[0] < horizon:
            self._request_times.popleft()

    # -- the retune loop -----------------------------------------------------------------
    def _run(self):
        try:
            while True:
                yield self.sim.timeout(self.retune_interval)
                self.retune()
        except Interrupt:
            return

    def retune(self) -> Optional[OptimalParameters]:
        """Re-optimise now; returns the parameters applied (or ``None``
        if there is not yet enough data)."""
        now = self.sim.now
        self._trim(now)
        if len(self._idle) < self.min_samples or not self._request_times:
            return None
        durations = np.array([d for _, d in self._idle])
        span = min(self.window, now) or self.window
        try:
            if self.method == "search":
                from repro.core.search import SuccessiveHalvingSearch

                best = SuccessiveHalvingSearch(
                    durations,
                    total_requests=len(self._request_times),
                    span=span,
                    service_model=self.service_model,
                    seed=self.search_seed,
                ).search(self.slowdown_goal, runner=self.runner).best
            else:
                optimizer = ScrubParameterOptimizer(
                    durations,
                    total_requests=len(self._request_times),
                    span=span,
                    service_model=self.service_model,
                )
                best = optimizer.optimize(self.slowdown_goal, runner=self.runner)
        except ValueError:
            return None  # goal unattainable on this window: keep settings
        self.scrubber.threshold = best.threshold
        self.scrubber.request_sectors = max(
            1, best.request_bytes // SECTOR_SIZE
        )
        self.retunes += 1
        self.history.append(best)
        return best
