"""Latent sector errors and Mean Latent Error Time (MLET).

The paper motivates staggered scrubbing with Oprea & Juels' result
that LSEs arrive in spatial/temporal *bursts*, so probing the whole
disk quickly detects a burst much sooner than a sequential sweep.
This module closes the loop: it models bursty LSE arrivals, computes
when each scrub order visits each sector, and measures the MLET — the
mean time from an error's occurrence to its detection.

For a periodic scrubber, a sector visited at time ``v`` within each
pass of length ``T`` detects an error occurring at time ``t`` after
``(v - t) mod T``.  A burst is detected at its *earliest-visited*
sector; sequential scrubbing visits a contiguous burst all at once
(detection ~ U(0, T), MLET ~ T/2), while staggered scrubbing spreads a
burst's sectors over the staggering rounds, driving the minimum down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.scrubber import ScrubAlgorithm
from repro.disk.commands import SECTOR_SIZE


@dataclass(frozen=True)
class LSEBurst:
    """One burst of latent sector errors."""

    time: float
    start_sector: int
    length: int


def sector_visit_times(
    algorithm: ScrubAlgorithm,
    total_sectors: int,
    request_sectors: int,
    scrub_rate: float,
) -> Tuple[np.ndarray, float]:
    """When, within one pass, each sector is verified.

    Parameters
    ----------
    algorithm:
        Scrub order; consumed for one full pass.
    scrub_rate:
        Sustained scrub throughput in bytes/second (e.g. measured via
        :func:`repro.analysis.throughput.standalone_scrub_throughput`).

    Returns
    -------
    (visit_times, pass_duration)
    """
    if scrub_rate <= 0:
        raise ValueError(f"scrub_rate must be positive: {scrub_rate}")
    visits = np.full(total_sectors, -1.0)
    algorithm.reset(total_sectors, request_sectors)
    now = 0.0
    while True:
        extent = algorithm.next_extent()
        if extent is None:
            break
        lbn, sectors = extent
        duration = sectors * SECTOR_SIZE / scrub_rate
        visits[lbn : lbn + sectors] = now
        now += duration
    if np.any(visits < 0):
        missing = int(np.count_nonzero(visits < 0))
        raise ValueError(f"scrub order left {missing} sectors unvisited")
    return visits, now


def generate_bursts(
    rng: np.random.Generator,
    total_sectors: int,
    count: int,
    horizon: float,
    mean_length: float = 32.0,
    max_length: int = 4096,
) -> list:
    """Bursty LSE sample: geometric lengths at uniform times/locations.

    Bairavasundaram et al. observe that LSEs cluster tightly in space;
    a geometric length with a cap is the simplest faithful stand-in.
    """
    if count <= 0 or horizon <= 0:
        raise ValueError("count and horizon must be positive")
    if not 1 <= mean_length:
        raise ValueError(f"mean_length must be >= 1: {mean_length}")
    lengths = np.minimum(
        rng.geometric(min(1.0, 1.0 / mean_length), size=count), max_length
    )
    starts = rng.integers(0, total_sectors, size=count)
    lengths = np.minimum(lengths, total_sectors - starts)
    times = rng.random(count) * horizon
    return [
        LSEBurst(time=float(t), start_sector=int(s), length=int(max(1, n)))
        for t, s, n in zip(times, starts, lengths)
    ]


def mean_latent_error_time(
    visit_times: np.ndarray, pass_duration: float, bursts: list
) -> float:
    """MLET over a burst sample for a periodic scrubber.

    Detection of a burst is the first subsequent visit to *any* of its
    sectors; the scrubber repeats every ``pass_duration``.
    """
    if pass_duration <= 0:
        raise ValueError(f"pass_duration must be positive: {pass_duration}")
    if not bursts:
        raise ValueError("empty burst sample")
    delays = np.empty(len(bursts))
    for i, burst in enumerate(bursts):
        visits = visit_times[burst.start_sector : burst.start_sector + burst.length]
        phase = burst.time % pass_duration
        delays[i] = np.min((visits - phase) % pass_duration)
    return float(delays.mean())
