"""Full-stack Waiting scrubber (the paper's "our approach", Table III).

:class:`WaitingScrubber` implements the Waiting policy against a live
:class:`~repro.sched.device.BlockDevice`: it observes foreground
submissions/completions, arms a timer whenever the disk drains, and —
if the disk stays quiet for ``threshold`` seconds — fires fixed-size
``VERIFY`` requests back to back until the next foreground request
arrives.  The request that arrives mid-verify is the *collision*; its
extra wait is the slowdown the optimiser budgets for.

The scrubber self-schedules, so it does not rely on scheduler priority
support; pair it with :class:`~repro.sched.noop.NoopScheduler` to model
the paper's replacement of CFQ's gating logic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scrubber import ScrubAlgorithm
from repro.disk.commands import SECTOR_SIZE, CommandStatus, DiskCommand
from repro.faults.remediation import (
    RemediationPolicy,
    RemediationStats,
    remediate_extent,
)
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import AnyOf, Interrupt, Process, Simulation


class WaitingScrubber:
    """Waiting-policy scrubber bound to a block device.

    Parameters
    ----------
    sim, device, algorithm:
        As for :class:`~repro.core.scrubber.Scrubber`.
    threshold:
        Idle time (seconds) after the last foreground completion before
        firing begins.
    request_bytes:
        Fixed scrub request size (Section V-C: fixed beats adaptive).
    """

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        algorithm: ScrubAlgorithm,
        threshold: float = 0.1,
        request_bytes: int = 64 * 1024,
        priority: PriorityClass = PriorityClass.BE,
        source: str = "scrubber",
        remediation: Optional[RemediationPolicy] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative: {threshold}")
        if request_bytes % SECTOR_SIZE:
            raise ValueError(
                f"request_bytes must be a multiple of {SECTOR_SIZE}: {request_bytes}"
            )
        self.sim = sim
        self.device = device
        self.algorithm = algorithm
        self.threshold = threshold
        self.request_sectors = request_bytes // SECTOR_SIZE
        self.priority = priority
        self.source = source

        self.remediation = remediation

        self.requests_issued = 0
        self.bytes_scrubbed = 0
        self.passes_completed = 0
        self.collisions = 0
        #: Scrub VERIFY requests the drive failed (detections, not sectors).
        self.errors_seen = 0
        #: Lifecycle counters (splits, remaps, failures).
        self.remediation_stats = RemediationStats()

        self._fg_outstanding = 0
        self._last_fg_completion = 0.0
        self._activity = sim.event()
        self._process: Optional[Process] = None
        self._draining = False
        sink = sim.telemetry
        self._telemetry = sink if sink is not None and sink.enabled else None

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> Process:
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("waiting scrubber already running")
        self._draining = False
        self.device.observers.append(self._observe)
        self.algorithm.reset(self.device.drive.total_sectors, self.request_sectors)
        if self._telemetry is not None:
            self._telemetry.scrub_pass_started(self.sim.now, self.source, 0)
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")
        try:
            self.device.observers.remove(self._observe)
        except ValueError:
            pass

    def request_stop(self) -> None:
        """Graceful stop: finish the in-flight verify (and any error
        remediation it triggered), then exit — nothing is interrupted
        mid-lifecycle, so every detected error still ends remapped."""
        self._draining = True
        if not self._activity.triggered:
            self._activity.succeed()

    def throughput(self, duration: float) -> float:
        """Scrubbed bytes/second over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        return self.bytes_scrubbed / duration

    # -- observation ---------------------------------------------------------------
    def _observe(self, kind: str, request: IORequest, now: float) -> None:
        if request.source == self.source:
            return
        if kind == "submit":
            self._fg_outstanding += 1
        elif kind == "complete":
            self._fg_outstanding -= 1
            if self._fg_outstanding == 0:
                self._last_fg_completion = now
        if not self._activity.triggered:
            self._activity.succeed()

    def _fresh_activity(self):
        if self._activity.triggered:
            self._activity = self.sim.event()
        return self._activity

    # -- control loop ---------------------------------------------------------------
    def _run(self):
        sim = self.sim
        try:
            while True:
                if self._draining:
                    break
                if self._fg_outstanding > 0:
                    yield self._fresh_activity()
                    continue
                fire_at = max(self._last_fg_completion, 0.0) + self.threshold
                if sim.now < fire_at:
                    yield AnyOf(
                        sim,
                        [sim.timeout(fire_at - sim.now), self._fresh_activity()],
                    )
                    continue  # re-evaluate: either gate passed or fg arrived
                # Disk has been idle for the full threshold: fire until a
                # foreground request shows up.
                while self._fg_outstanding == 0:
                    if self._draining:
                        break
                    lbn, sectors = self._next_extent()
                    request = yield self._submit_verify(lbn, sectors)
                    if self._telemetry is not None:
                        self._report_progress()
                    if request.breakdown.status is CommandStatus.MEDIUM_ERROR:
                        self.errors_seen += 1
                        if self._telemetry is not None:
                            self._telemetry.fault_event(
                                sim.now,
                                "scrub_detection",
                                request.breakdown.error_lbn,
                                source=self.source,
                            )
                        if self.remediation is not None:
                            yield from remediate_extent(
                                sim,
                                self.device,
                                lbn,
                                sectors,
                                self.remediation,
                                self._submit_verify,
                                self.remediation_stats,
                            )
                    if self._fg_outstanding > 0:
                        self.collisions += 1
        except Interrupt:
            return
        finally:
            try:
                self.device.observers.remove(self._observe)
            except ValueError:
                pass

    @property
    def sectors_remapped(self) -> int:
        """Bad sectors this scrubber localised, remapped and re-verified."""
        return self.remediation_stats.sectors_remapped

    def _report_progress(self) -> None:
        pass_bytes = self.device.drive.total_sectors * SECTOR_SIZE
        within = self.bytes_scrubbed - self.passes_completed * pass_bytes
        self._telemetry.scrub_progress(
            self.sim.now,
            self.source,
            min(1.0, within / pass_bytes) if pass_bytes else 1.0,
        )

    def _next_extent(self):
        extent = self.algorithm.next_extent()
        if extent is None:
            self.passes_completed += 1
            if self._telemetry is not None:
                self._telemetry.scrub_pass_completed(
                    self.sim.now,
                    self.source,
                    self.passes_completed - 1,
                    self.bytes_scrubbed,
                )
            self.algorithm.reset(
                self.device.drive.total_sectors, self.request_sectors
            )
            if self._telemetry is not None:
                self._telemetry.scrub_pass_started(
                    self.sim.now, self.source, self.passes_completed
                )
            extent = self.algorithm.next_extent()
            if extent is None:
                raise RuntimeError("scrub algorithm yielded an empty pass")
        return extent

    def _submit_verify(self, lbn, sectors):
        request = IORequest(
            DiskCommand.verify(lbn, sectors),
            priority=self.priority,
            source=self.source,
        )
        completion = self.device.submit(request)
        self.requests_issued += 1
        self.bytes_scrubbed += sectors * SECTOR_SIZE
        return completion
