"""Scrub-scheduling policies (paper Section V-B).

Trace-driven policies decide, for every idle interval, whether and
when to start firing scrub requests; they are evaluated on idle
interval samples by :mod:`repro.analysis.collision` (Fig. 14):

* :class:`~repro.core.policies.waiting.WaitingPolicy` — fire after the
  disk has been idle for ``threshold`` seconds (the winner);
* :class:`~repro.core.policies.waiting.LosslessWaitingPolicy` — the
  hypothetical variant that also gets the waited-out time;
* :class:`~repro.core.policies.ar.ARPolicy` — fire from the start of
  an interval the AR(p) model predicts to be longer than ``c``;
* :class:`~repro.core.policies.combined.ARWaitingPolicy` — both;
* :class:`~repro.core.policies.oracle.OraclePolicy` — clairvoyantly
  use exactly the longest intervals (the upper bound).

:class:`~repro.core.policies.device.WaitingScrubber` is the full-stack
implementation of the Waiting policy: a scrubber that watches a
:class:`~repro.sched.device.BlockDevice` and self-schedules.
"""

from repro.core.policies.ar import ARPolicy
from repro.core.policies.base import IdlePolicy
from repro.core.policies.combined import ARWaitingPolicy
from repro.core.policies.device import WaitingScrubber
from repro.core.policies.oracle import OraclePolicy
from repro.core.policies.waiting import LosslessWaitingPolicy, WaitingPolicy

__all__ = [
    "ARPolicy",
    "ARWaitingPolicy",
    "IdlePolicy",
    "LosslessWaitingPolicy",
    "OraclePolicy",
    "WaitingPolicy",
    "WaitingScrubber",
]
