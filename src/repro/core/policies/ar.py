"""The Auto-Regression policy (Section V-B.1).

At the start of each idle interval, predict its length from the
previous ``p`` intervals with an AR(p) model (fitted by Yule–Walker,
order chosen by AIC) and fire immediately — from offset zero — if the
prediction exceeds the threshold ``c``.

The paper finds this the *worst* of its policies: AR predictions of
heavy-tailed durations hover near the process mean, so thresholding
them separates long from short intervals far less sharply than simply
observing that an interval has already lasted a while.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policies.base import IdlePolicy, validate_durations
from repro.stats.ar import ARModel, select_ar_order


class ARPolicy(IdlePolicy):
    """Fire from an interval's start when the AR prediction exceeds ``c``.

    Parameters
    ----------
    threshold:
        Minimum predicted interval length ``c`` to fire.
    model:
        A fitted :class:`~repro.stats.ar.ARModel`; if omitted, one is
        fitted (with AIC order selection up to ``max_order``) on the
        duration sequence itself at evaluation time, matching the
        paper's setup.
    max_order:
        AIC search bound when fitting at evaluation time.
    """

    name = "auto-regression"

    def __init__(
        self,
        threshold: float,
        model: Optional[ARModel] = None,
        max_order: int = 12,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative: {threshold}")
        if max_order < 1:
            raise ValueError(f"max_order must be >= 1: {max_order}")
        self.threshold = threshold
        self.model = model
        self.max_order = max_order

    def predictions(self, durations: np.ndarray) -> np.ndarray:
        """One-step-ahead predicted length of each interval."""
        durations = validate_durations(durations)
        model = self.model
        if model is None:
            model = select_ar_order(durations, max_order=self.max_order)
        return model.predict_series(durations)

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        durations = validate_durations(durations)
        offsets = np.full(len(durations), np.inf)
        offsets[self.predictions(durations) > self.threshold] = 0.0
        return offsets

    def __repr__(self) -> str:
        return f"ARPolicy(threshold={self.threshold!r})"
