"""Policy interface for trace-driven idle-time scheduling.

A policy maps a sequence of idle-interval durations to *fire offsets*:
for interval ``i`` of length ``D_i``, ``offsets[i]`` is the time into
the interval at which the policy starts issuing scrub requests
(``inf`` = the policy skips the interval).  Once firing, every policy
keeps issuing requests until the interval ends (the paper's Section
V-A conclusion: with decreasing hazard rates there is no sensible
stopping criterion other than the next foreground arrival), so the
offsets fully determine utilisation and collisions:

* utilised idle time in interval ``i``: ``max(0, D_i - offsets[i])``
* a collision occurs in every interval the policy fires in.

Offsets may exceed ``D_i``; such intervals are treated as not fired
(the foreground request returned before the policy acted).
"""

from __future__ import annotations

import numpy as np


class IdlePolicy:
    """Base class for idle-interval policies."""

    name = "policy"

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        """Per-interval fire offsets (``inf`` for skipped intervals)."""
        raise NotImplementedError

    # -- shared derived quantities ------------------------------------------
    def fired_mask(self, durations: np.ndarray) -> np.ndarray:
        """Boolean mask of intervals in which the policy fires."""
        durations = np.asarray(durations, dtype=float)
        offsets = self.fire_offsets(durations)
        return offsets < durations

    def utilised_time(self, durations: np.ndarray) -> np.ndarray:
        """Idle time actually used for scrubbing per interval."""
        durations = np.asarray(durations, dtype=float)
        offsets = self.fire_offsets(durations)
        return np.where(offsets < durations, durations - offsets, 0.0)


def validate_durations(durations: np.ndarray) -> np.ndarray:
    """Common input validation for policies."""
    durations = np.asarray(durations, dtype=float)
    if durations.ndim != 1:
        raise ValueError("durations must be one-dimensional")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    return durations
