"""The Waiting policy and its lossless hypothetical (Section V-B.2).

Waiting exploits decreasing hazard rates directly: if the disk has
already been idle for ``threshold`` seconds, the interval is very
likely one of the long ones, so start firing.  The cost is the
threshold itself — that idle time is spent waiting.  Lossless Waiting
is the paper's diagnostic construct that "magically" recovers the
waited time; its near-coincidence with the Oracle (Fig. 14) shows that
*which* intervals Waiting picks is essentially optimal, and only the
waiting cost separates it from clairvoyance.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import IdlePolicy, validate_durations


class WaitingPolicy(IdlePolicy):
    """Fire after the interval has lasted ``threshold`` seconds."""

    name = "waiting"

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative: {threshold}")
        self.threshold = threshold

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        durations = validate_durations(durations)
        return np.full(len(durations), self.threshold)

    def __repr__(self) -> str:
        return f"WaitingPolicy(threshold={self.threshold!r})"


class LosslessWaitingPolicy(IdlePolicy):
    """Waiting's selection with zero waiting cost (hypothetical)."""

    name = "lossless-waiting"

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative: {threshold}")
        self.threshold = threshold

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        durations = validate_durations(durations)
        offsets = np.full(len(durations), np.inf)
        offsets[durations > self.threshold] = 0.0
        return offsets

    def __repr__(self) -> str:
        return f"LosslessWaitingPolicy(threshold={self.threshold!r})"
