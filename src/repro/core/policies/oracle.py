"""The clairvoyant Oracle policy (Section V-B, Fig. 14).

Given a collision budget of ``k`` intervals, the optimal choice is to
fully use exactly the ``k`` longest intervals: each used interval
costs one collision regardless of length, so utilisation per collision
is maximised by picking the longest.  This gives the upper bound every
implementable policy is compared against.
"""

from __future__ import annotations

import numpy as np

from repro.core.policies.base import IdlePolicy, validate_durations


class OraclePolicy(IdlePolicy):
    """Use exactly the ``budget_fraction`` longest intervals, in full.

    ``budget_fraction`` is the fraction of *intervals* the oracle may
    fire in (its collision budget expressed over intervals).
    """

    name = "oracle"

    def __init__(self, budget_fraction: float) -> None:
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError(
                f"budget_fraction must lie in [0, 1]: {budget_fraction}"
            )
        self.budget_fraction = budget_fraction

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        durations = validate_durations(durations)
        offsets = np.full(len(durations), np.inf)
        count = int(round(self.budget_fraction * len(durations)))
        if count > 0:
            # Indices of the `count` longest intervals.
            chosen = np.argpartition(durations, -count)[-count:]
            offsets[chosen] = 0.0
        return offsets

    def __repr__(self) -> str:
        return f"OraclePolicy(budget_fraction={self.budget_fraction!r})"
