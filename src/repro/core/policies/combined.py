"""The AR+Waiting policy (Section V-B.3).

Wait ``threshold`` seconds; if the disk is still idle *and* the AR
prediction made at the interval's start exceeds ``c``, begin firing.
The AR veto only ever removes intervals the Waiting component would
have used, so at equal wait thresholds it trades utilisation for
fewer collisions — the paper shows the trade is unfavourable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.policies.ar import ARPolicy
from repro.core.policies.base import IdlePolicy, validate_durations
from repro.stats.ar import ARModel


class ARWaitingPolicy(IdlePolicy):
    """Fire at ``wait_threshold`` if the AR prediction exceeds ``ar_threshold``."""

    name = "ar+waiting"

    def __init__(
        self,
        wait_threshold: float,
        ar_threshold: float,
        model: Optional[ARModel] = None,
        max_order: int = 12,
    ) -> None:
        if wait_threshold < 0:
            raise ValueError(
                f"wait_threshold must be non-negative: {wait_threshold}"
            )
        self.wait_threshold = wait_threshold
        self._ar = ARPolicy(ar_threshold, model=model, max_order=max_order)

    @property
    def ar_threshold(self) -> float:
        return self._ar.threshold

    def fire_offsets(self, durations: np.ndarray) -> np.ndarray:
        durations = validate_durations(durations)
        offsets = np.full(len(durations), np.inf)
        approved = self._ar.predictions(durations) > self.ar_threshold
        offsets[approved] = self.wait_threshold
        return offsets

    def __repr__(self) -> str:
        return (
            f"ARWaitingPolicy(wait_threshold={self.wait_threshold!r}, "
            f"ar_threshold={self.ar_threshold!r})"
        )
