"""Successive-halving search for Waiting-policy parameters.

The Table III tuning question — which (request size, wait threshold)
pair maximises scrub throughput under a mean-slowdown goal — is an
optimisation over ~64 candidate sizes, each needing a threshold
bisection of ~40 full-trace simulations.  The exhaustive grid spends
that effort uniformly; at corpus scale almost all of it goes to sizes
that a glance at a small idle-interval subsample already rules out.

:class:`SuccessiveHalvingSearch` spends simulation effort where the
optimum might be instead:

* **Rungs of increasing trace-horizon budget.**  Rung ``r`` evaluates
  the surviving sizes on a seeded stratified subsample of the idle
  durations (default fractions 1/64, 1/16, 1/4 of the full sample)
  with a short bisection, scores each size by its achieved scrub
  throughput, and keeps the top ``1/eta``.
* **Seeded rung assignment.**  Subsamples come from
  ``numpy.random.default_rng([seed, rung])``, so a search is a pure
  function of ``(inputs, seed)`` — reruns are bit-identical.
* **Deterministic tie-breaking.**  Ranking sorts by (throughput
  descending, size ascending); infeasible sizes rank last.
* **Exact final rung.**  The survivors get the grid's own
  full-sample 40-iteration search — literally the same
  :func:`~repro.core.optimizer._best_threshold_task` with the same
  task parameters — so the chosen parameters are exact, and when both
  the grid and the search run (e.g. the differential check), the final
  rung is served from the :class:`~repro.parallel.cache.ResultCache`.

Cost: with defaults, ≈220–340 interval-evaluations per idle interval
against the exhaustive grid's ≈2700 — an 8–12x reduction on the
seeded catalog suite, measured by
:data:`repro.analysis.slowdown.SIM_METER` and gated (≥5x per
workload) by ``make bench-corpus``.  The safety contract is
:func:`repro.verify.search.check_search_vs_grid`: on the seeded suite
the searched optimum's throughput must be within a documented
tolerance (default 1%) of the exhaustive grid's, with the slowdown
goal still met exactly (the final rung simulates on the full sample).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import SIM_METER
from repro.core.optimizer import (
    DEFAULT_MAX_SLOWDOWN,
    OptimalParameters,
    ScrubParameterOptimizer,
    _best_threshold_task,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import SweepRunner

#: Subsample fractions for the elimination rungs (final rung is always
#: the full sample).
DEFAULT_RUNG_FRACTIONS = (1 / 64, 1 / 16, 1 / 4)

#: Never subsample below this many idle intervals.  Because the rung
#: subsample is stratified over the duration-sorted order (every
#: quantile represented in proportion — see :meth:`_rung_sample`), a
#: modest floor suffices: 512 stratified intervals rank the true
#: optimum into the survivor set on every seeded catalog workload.
MIN_RUNG_SAMPLE = 512


@dataclass(frozen=True)
class RungReport:
    """What one elimination rung did (for reports and benchmarks)."""

    index: int
    sample: int
    iterations: int
    arms: Tuple[int, ...]
    survivors: Tuple[int, ...]
    sims: int
    interval_evals: int


@dataclass(frozen=True)
class SearchOutcome:
    """Search result plus its effort accounting.

    ``sims``/``interval_evals`` are :data:`SIM_METER` deltas observed
    in *this* process — exact for serial searches; with a runner the
    final rung's work happens in workers (or not at all, on cache
    hits) and is not included.
    """

    best: OptimalParameters
    seed: int
    rungs: Tuple[RungReport, ...]
    sims: int
    interval_evals: int


class SuccessiveHalvingSearch:
    """Budgeted replacement for the exhaustive Table III grid.

    Constructor parameters mirror
    :class:`~repro.core.optimizer.ScrubParameterOptimizer` (same idle
    sample, same candidate sizes, same admissibility cap), plus the
    search schedule:

    Parameters
    ----------
    seed:
        Root seed for the rung subsamples; the search is a pure
        function of its inputs and this seed.
    rung_fractions:
        Increasing idle-sample fractions for the elimination rungs.
    eta:
        Keep the top ``1/eta`` of arms per rung.
    keep_min:
        Never eliminate below this many arms before the final rung —
        the safety margin that lets a subsample mis-rank the true
        optimum without losing it.
    rung_iterations:
        Bisection iterations at elimination rungs (the final rung uses
        ``final_iterations``, the grid's default).  This must stay
        deep enough to resolve the threshold: a coarse bisection
        leaves an overshoot proportional to ``max_duration * 2**-k``
        that systematically penalises threshold-sensitive large sizes
        and mis-ranks them out of the survivor set.  20 iterations
        resolve the threshold to ~1e-6 of the longest idle interval,
        which keeps every seeded catalog workload within tolerance.
    """

    def __init__(
        self,
        durations: np.ndarray,
        total_requests: int,
        span: float,
        service_model: ScrubServiceModel,
        sizes: Optional[Sequence[int]] = None,
        max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
        seed: int = 0,
        rung_fractions: Sequence[float] = DEFAULT_RUNG_FRACTIONS,
        eta: int = 3,
        keep_min: int = 3,
        rung_iterations: int = 20,
        final_iterations: int = 40,
        min_sample: int = MIN_RUNG_SAMPLE,
    ) -> None:
        self._full = ScrubParameterOptimizer(
            durations, total_requests, span, service_model,
            sizes=sizes, max_slowdown=max_slowdown,
        )
        if eta < 2:
            raise ValueError(f"eta must be >= 2: {eta}")
        if keep_min < 1:
            raise ValueError(f"keep_min must be >= 1: {keep_min}")
        if rung_iterations < 1 or final_iterations < 1:
            raise ValueError("iteration counts must be >= 1")
        fractions = tuple(float(f) for f in rung_fractions)
        if any(not 0.0 < f <= 1.0 for f in fractions) or (
            list(fractions) != sorted(fractions)
        ):
            raise ValueError(
                f"rung_fractions must be increasing in (0, 1]: {fractions}"
            )
        self.seed = int(seed)
        self.rung_fractions = fractions
        self.eta = eta
        self.keep_min = keep_min
        self.rung_iterations = rung_iterations
        self.final_iterations = final_iterations
        self.min_sample = min_sample

    # -- rungs -------------------------------------------------------------------
    def _rung_sample(self, rung: int, fraction: float) -> np.ndarray:
        """The seeded idle-duration subsample for one rung.

        Stratified, not uniform: indices stride the *duration-sorted*
        sample at a seeded offset, so every quantile of the idle
        distribution — the long tail above all — is represented in
        proportion.  An arm's throughput is an integral over that
        distribution (large request sizes live almost entirely in the
        few longest intervals), so a uniform draw that misses a couple
        of tail intervals mis-ranks big arms wholesale; a stratified
        draw cannot.  The seed only moves the stride offset, keeping
        reruns bit-identical and distinct seeds honestly different.
        """
        durations = self._full.durations
        n = len(durations)
        m = min(n, max(self.min_sample, math.ceil(n * fraction)))
        if m >= n:
            return durations
        order = np.argsort(durations, kind="stable")
        rng = np.random.default_rng([self.seed, rung])
        # m evenly spaced positions in [0, n), phase-shifted by the
        # seed; floor keeps every position in range.
        offset = float(rng.random())
        positions = ((np.arange(m) + offset) * (n / m)).astype(np.intp)
        indices = order[positions]
        indices.sort()  # original time order: stable float summation
        return durations[indices]

    def _run_rung(
        self,
        rung: int,
        fraction: float,
        arms: Sequence[int],
        slowdown_goal: float,
    ) -> RungReport:
        sample = self._rung_sample(rung, fraction)
        full = self._full
        scale = len(sample) / len(full.durations)
        rung_opt = ScrubParameterOptimizer(
            sample,
            total_requests=max(1, round(full.total_requests * scale)),
            span=full.span * scale,
            service_model=full.service_model,
            sizes=arms,
            max_slowdown=full.max_slowdown,
        )
        before = SIM_METER.snapshot()
        scores: Dict[int, float] = {}
        for size in arms:
            result = rung_opt.best_threshold(
                size, slowdown_goal, iterations=self.rung_iterations
            )
            scores[size] = -math.inf if result is None else result.throughput
        after = SIM_METER.snapshot()
        ranked = sorted(arms, key=lambda s: (-scores[s], s))
        if len(set(scores.values())) <= 1:
            # The rung produced no signal (e.g. an extreme goal drives
            # every arm's subsample throughput to the same value):
            # eliminating on the tie-break alone would be arbitrary, so
            # keep every arm and let a bigger budget discriminate.
            keep = len(arms)
        else:
            keep = min(
                len(arms), max(self.keep_min, math.ceil(len(arms) / self.eta))
            )
        return RungReport(
            index=rung,
            sample=len(sample),
            iterations=self.rung_iterations,
            arms=tuple(arms),
            survivors=tuple(sorted(ranked[:keep])),
            sims=after["sims"] - before["sims"],
            interval_evals=after["interval_evals"] - before["interval_evals"],
        )

    # -- the headline call -------------------------------------------------------
    def search(
        self, slowdown_goal: float, runner: Optional["SweepRunner"] = None
    ) -> SearchOutcome:
        """Maximise scrub throughput subject to the mean-slowdown goal.

        Same contract as
        :meth:`~repro.core.optimizer.ScrubParameterOptimizer.optimize`
        (raises :class:`ValueError` when no size can meet the goal),
        but spends a fraction of its simulation budget.  With a
        ``runner`` the final rung fans out — and cache-shares — the
        grid's own per-size tasks.
        """
        start = SIM_METER.snapshot()
        arms = list(self._full.admissible_sizes())
        rungs = []
        for rung, fraction in enumerate(self.rung_fractions):
            if len(arms) <= self.keep_min:
                break
            report = self._run_rung(rung, fraction, arms, slowdown_goal)
            rungs.append(report)
            arms = list(report.survivors)
        best = self._final_rung(arms, slowdown_goal, runner)
        end = SIM_METER.snapshot()
        return SearchOutcome(
            best=best,
            seed=self.seed,
            rungs=tuple(rungs),
            sims=end["sims"] - start["sims"],
            interval_evals=end["interval_evals"] - start["interval_evals"],
        )

    def _final_rung(
        self,
        arms: Sequence[int],
        slowdown_goal: float,
        runner: Optional["SweepRunner"],
    ) -> OptimalParameters:
        """Exact full-sample search over the surviving arms.

        The task parameters are built exactly as
        :meth:`ScrubParameterOptimizer._optimize_with_runner` builds
        them, so the :class:`~repro.parallel.cache.ResultCache` key of
        each survivor's search coincides with the grid's — running the
        grid then the search (or vice versa) pays for the overlap once.
        """
        full = self._full
        tasks = []
        for size in sorted(arms):
            task = dict(
                durations=full.durations,
                total_requests=full.total_requests,
                span=full.span,
                service_model=full.service_model,
                request_bytes=size,
                slowdown_goal=slowdown_goal,
                max_slowdown=full.max_slowdown,
            )
            if self.final_iterations != 40:  # non-default: must key the cache
                task["iterations"] = self.final_iterations
            tasks.append(task)
        if runner is not None:
            results = runner.map(_best_threshold_task, tasks)
        else:
            results = [_best_threshold_task(**task) for task in tasks]
        best: Optional[OptimalParameters] = None
        for task, result in zip(tasks, results):
            if result is None:
                continue
            candidate = OptimalParameters(
                slowdown_goal=slowdown_goal,
                threshold=result.threshold,
                request_bytes=task["request_bytes"],
                throughput=result.throughput,
                achieved_slowdown=result.mean_slowdown,
            )
            if (
                best is None
                or candidate.throughput > best.throughput
                or (
                    candidate.throughput == best.throughput
                    and candidate.request_bytes < best.request_bytes
                )
            ):
                best = candidate
        if best is None:
            raise ValueError(
                f"no parameters meet slowdown goal {slowdown_goal}s "
                "for this workload"
            )
        return best
