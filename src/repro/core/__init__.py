"""The paper's primary contribution: scrubbers and scrub scheduling.

* :class:`~repro.core.scrubber.Scrubber` — the scrubbing framework
  (Section III-C): a per-device background process that walks the disk
  with ``VERIFY`` requests according to a pluggable
  :class:`~repro.core.scrubber.ScrubAlgorithm`, in either kernel style
  (requests disguised as reads, participating in scheduling) or user
  style (soft-barrier pass-through).
* :class:`~repro.core.sequential.SequentialScrub` and
  :class:`~repro.core.staggered.StaggeredScrub` — the two scrub orders
  compared in Section IV.
* :mod:`repro.core.policies` — the Section V scheduling policies
  (Waiting, Auto-Regression, AR+Waiting, Oracle, CFQ-gate baseline).
* :mod:`repro.core.adaptive` — adaptive request-size strategies
  (fixed, exponential, linear, swapping; Section V-C).
* :class:`~repro.core.optimizer.ScrubParameterOptimizer` — finds the
  (request size, wait threshold) pair maximising scrub throughput under
  a mean-slowdown goal (Section V-C/D, Table III).
* :mod:`repro.core.mlet` — latent-sector-error model and Mean Latent
  Error Time analysis (the motivation from Oprea & Juels for staggered
  scrubbing).
"""

from repro.core.autotune import AutoTuner
from repro.core.manager import ScrubManager
from repro.core.scrubber import ScrubAlgorithm, Scrubber
from repro.core.search import (
    SearchOutcome,
    SuccessiveHalvingSearch,
)
from repro.core.sequential import SequentialScrub
from repro.core.staggered import StaggeredScrub

__all__ = [
    "AutoTuner",
    "ScrubAlgorithm",
    "ScrubManager",
    "Scrubber",
    "SearchOutcome",
    "SequentialScrub",
    "StaggeredScrub",
    "SuccessiveHalvingSearch",
]
