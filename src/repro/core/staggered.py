"""Staggered scrubbing (Oprea & Juels, FAST'10; paper Section II, IV).

The disk is divided into ``R`` regions, each partitioned into segments
of one request.  The scrubber reads the *first* segment of every
region in LBN order, then the *second* segment of every region, and so
on — quickly probing the whole disk surface each round so a bursty
cluster of latent sector errors is detected after roughly ``1/S`` of a
full pass instead of (on average) half of one.

Mechanically, consecutive requests jump one region forward: a short
seek plus roughly half a rotation, which for enough regions (small
jumps) is *cheaper* than the full rotation a sequential ``VERIFY``
stream pays — the paper's Fig. 5b crossover.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scrubber import Extent, ScrubAlgorithm


class StaggeredScrub(ScrubAlgorithm):
    """Region-staggered scrub order.

    Parameters
    ----------
    regions:
        Number of regions ``R``.  One region degenerates to sequential
        scrubbing (and the implementation then behaves identically).
    """

    def __init__(self, regions: int = 128) -> None:
        if regions <= 0:
            raise ValueError(f"regions must be positive: {regions}")
        self.regions = regions
        self._total = 0
        self._step = 0
        self._region_sectors = 0
        self._round = 0
        self._region = 0

    def reset(self, total_sectors: int, request_sectors: int) -> None:
        if total_sectors <= 0 or request_sectors <= 0:
            raise ValueError("sector counts must be positive")
        self._total = total_sectors
        self._step = request_sectors
        # Ceil so regions cover the disk; the last region may be short.
        self._region_sectors = -(-total_sectors // self.regions)
        self._round = 0
        self._region = 0

    @property
    def rounds_per_pass(self) -> int:
        """Number of staggering rounds in a full pass."""
        return -(-self._region_sectors // self._step) if self._step else 0

    def next_extent(self) -> Optional[Extent]:
        while self._round < self.rounds_per_pass:
            if self._region >= self.regions:
                self._region = 0
                self._round += 1
                continue
            lbn = (
                self._region * self._region_sectors + self._round * self._step
            )
            self._region += 1
            region_end = min(
                (lbn // self._region_sectors + 1) * self._region_sectors,
                self._total,
            )
            if lbn >= self._total or lbn >= region_end:
                continue  # short final region already exhausted
            sectors = min(self._step, region_end - lbn)
            return lbn, sectors
        return None
