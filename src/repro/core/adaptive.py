"""Scrub request-size schedules (paper Section V-C).

Once the Waiting policy starts firing, the scrubber must choose a size
for each request.  The paper compares:

* **fixed** — one size for the whole interval (the winner);
* **exponential** — multiply the size by ``a`` after every request
  completed without a collision;
* **linear** — multiply by ``a`` and add ``b``;
* **swapping** — start at the optimal fixed size, switch to the
  maximum allowed size after ``switch_after`` seconds of firing (the
  paper found the optimal switch time to be infinity).

All schedules are pure functions of (request index, elapsed firing
time) so the slowdown simulator can replay them deterministically.
Sizes are clamped to ``cap`` — the largest size whose service time
stays within the administrator's *maximum* tolerable slowdown — and
rounded to whole sectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.commands import SECTOR_SIZE


def _round_sectors(size_bytes: float) -> int:
    """Round a byte size to a whole positive number of sectors."""
    sectors = max(1, int(round(size_bytes / SECTOR_SIZE)))
    return sectors * SECTOR_SIZE


class SizeSchedule:
    """Base class: per-request scrub sizes within one idle interval."""

    name = "schedule"

    def size_at(self, index: int, elapsed: float) -> int:
        """Size (bytes) of request ``index`` after ``elapsed`` seconds of firing."""
        raise NotImplementedError

    @property
    def max_size(self) -> int:
        """Largest size the schedule can ever emit."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSchedule(SizeSchedule):
    """The paper's recommendation: a single fixed request size."""

    size: int
    name = "fixed"

    def __post_init__(self) -> None:
        if self.size < SECTOR_SIZE:
            raise ValueError(f"size must be at least one sector: {self.size}")

    def size_at(self, index: int, elapsed: float) -> int:
        return _round_sectors(self.size)

    @property
    def max_size(self) -> int:
        return _round_sectors(self.size)


@dataclass(frozen=True)
class ExponentialSchedule(SizeSchedule):
    """``size_k = min(start * a^k, cap)``."""

    start: int
    factor: float
    cap: int
    name = "exponential"

    def __post_init__(self) -> None:
        if self.start < SECTOR_SIZE or self.cap < self.start:
            raise ValueError("need SECTOR_SIZE <= start <= cap")
        if self.factor <= 1.0:
            raise ValueError(f"factor must exceed 1: {self.factor}")

    def size_at(self, index: int, elapsed: float) -> int:
        size = self.start * self.factor ** index
        return _round_sectors(min(size, self.cap))

    @property
    def max_size(self) -> int:
        return _round_sectors(self.cap)


@dataclass(frozen=True)
class LinearSchedule(SizeSchedule):
    """``size_{k+1} = a * size_k + b`` (closed form evaluated per index)."""

    start: int
    factor: float
    increment: int
    cap: int
    name = "linear"

    def __post_init__(self) -> None:
        if self.start < SECTOR_SIZE or self.cap < self.start:
            raise ValueError("need SECTOR_SIZE <= start <= cap")
        if self.factor < 1.0 or self.increment < 0:
            raise ValueError("factor must be >= 1 and increment >= 0")
        if self.factor == 1.0 and self.increment == 0:
            raise ValueError("degenerate schedule: use FixedSchedule")

    def size_at(self, index: int, elapsed: float) -> int:
        a, b = self.factor, self.increment
        if a == 1.0:
            size = self.start + b * index
        else:
            size = self.start * a**index + b * (a**index - 1) / (a - 1)
        return _round_sectors(min(size, self.cap))

    @property
    def max_size(self) -> int:
        return _round_sectors(self.cap)


@dataclass(frozen=True)
class SwappingSchedule(SizeSchedule):
    """Fixed ``start`` size, then the cap after ``switch_after`` seconds.

    ``switch_after=inf`` degenerates to fixed — which is exactly the
    optimum the paper found.
    """

    start: int
    cap: int
    switch_after: float
    name = "swapping"

    def __post_init__(self) -> None:
        if self.start < SECTOR_SIZE or self.cap < self.start:
            raise ValueError("need SECTOR_SIZE <= start <= cap")
        if self.switch_after < 0:
            raise ValueError(f"switch_after must be non-negative: {self.switch_after}")

    def size_at(self, index: int, elapsed: float) -> int:
        if elapsed >= self.switch_after:
            return _round_sectors(self.cap)
        return _round_sectors(self.start)

    @property
    def max_size(self) -> int:
        return _round_sectors(self.cap)
