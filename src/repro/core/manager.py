"""System-wide scrub management (the paper's Fig. 2 architecture).

The paper's kernel framework is "activated at bootstrapping, matching
scrubber threads to every block device in the system; this matching is
updated when devices are inserted/removed, e.g. due to hot swapping.
The threads remain dormant ... until scrubbing for a specific device
is activated."  :class:`ScrubManager` provides exactly that lifecycle
over simulated devices: register/unregister (hotplug), per-device
activation with an algorithm + parameters, and aggregate progress
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.scrubber import ScrubAlgorithm, Scrubber
from repro.core.sequential import SequentialScrub
from repro.faults.remediation import RemediationPolicy
from repro.sched.device import BlockDevice
from repro.sched.request import PriorityClass
from repro.sim import Simulation


@dataclass
class _Slot:
    """One managed device and its (possibly dormant) scrubber."""

    device: BlockDevice
    scrubber: Optional[Scrubber] = None


class ScrubManager:
    """Matches scrubbers to block devices, like the kernel framework.

    Parameters
    ----------
    sim:
        Owning simulation.
    algorithm_factory:
        Builds a fresh :class:`~repro.core.scrubber.ScrubAlgorithm` per
        activation (each device needs its own algorithm state).
    """

    def __init__(
        self,
        sim: Simulation,
        algorithm_factory: Callable[[], ScrubAlgorithm] = SequentialScrub,
    ) -> None:
        self.sim = sim
        self.algorithm_factory = algorithm_factory
        self._slots: Dict[str, _Slot] = {}
        sink = sim.telemetry
        self._telemetry = sink if sink is not None and sink.enabled else None

    def _record(self, event: str, device: str) -> None:
        self._telemetry.instant(
            self.sim.now, "manager", event, {"device": device}
        )
        self._telemetry.metrics.gauge("manager.devices").set(len(self._slots))

    # -- hotplug ----------------------------------------------------------------
    def register(self, name: str, device: BlockDevice) -> None:
        """A device appeared (boot enumeration or hot swap in)."""
        if name in self._slots:
            raise ValueError(f"device {name!r} already registered")
        self._slots[name] = _Slot(device=device)
        if self._telemetry is not None:
            self._record("register", name)

    def unregister(self, name: str) -> None:
        """A device disappeared; any active scrubber is stopped."""
        slot = self._slot(name)
        if slot.scrubber is not None:
            slot.scrubber.stop()
        del self._slots[name]
        if self._telemetry is not None:
            self._record("unregister", name)

    @property
    def devices(self) -> List[str]:
        return sorted(self._slots)

    # -- activation ----------------------------------------------------------------
    def activate(
        self,
        name: str,
        request_bytes: int = 64 * 1024,
        priority: PriorityClass = PriorityClass.IDLE,
        delay: float = 0.0,
        algorithm: Optional[ScrubAlgorithm] = None,
        remediation: Optional[RemediationPolicy] = None,
    ) -> Scrubber:
        """Wake the device's scrubber with the given parameters.

        ``remediation`` enables the full error lifecycle on this device:
        scrub errors are localised by splitting, remapped to the spare
        pool, and verified after the remap.
        """
        slot = self._slot(name)
        if slot.scrubber is not None and slot.scrubber._process is not None \
                and slot.scrubber._process.is_alive:
            raise RuntimeError(f"scrubbing already active on {name!r}")
        scrubber = Scrubber(
            self.sim,
            slot.device,
            algorithm if algorithm is not None else self.algorithm_factory(),
            request_bytes=request_bytes,
            priority=priority,
            delay=delay,
            source=f"scrubber:{name}",
            remediation=remediation,
        )
        scrubber.start()
        slot.scrubber = scrubber
        if self._telemetry is not None:
            self._record("activate", name)
        return scrubber

    def deactivate(self, name: str) -> None:
        """Put the device's scrubber back to sleep."""
        slot = self._slot(name)
        if slot.scrubber is not None:
            slot.scrubber.stop()
            if self._telemetry is not None:
                self._record("deactivate", name)

    def is_active(self, name: str) -> bool:
        slot = self._slot(name)
        return (
            slot.scrubber is not None
            and slot.scrubber._process is not None
            and slot.scrubber._process.is_alive
        )

    # -- accounting -------------------------------------------------------------------
    def progress(self, name: str) -> float:
        """Fraction of the current pass completed on ``name`` (0..1)."""
        slot = self._slot(name)
        if slot.scrubber is None:
            return 0.0
        capacity = slot.device.drive.capacity_bytes
        within_pass = slot.scrubber.bytes_scrubbed - (
            slot.scrubber.passes_completed * capacity
        )
        return min(1.0, max(0.0, within_pass / capacity))

    def total_bytes_scrubbed(self) -> int:
        return sum(
            slot.scrubber.bytes_scrubbed
            for slot in self._slots.values()
            if slot.scrubber is not None
        )

    def total_errors_seen(self) -> int:
        """Failed scrub verifies across every managed device."""
        return sum(
            slot.scrubber.errors_seen
            for slot in self._slots.values()
            if slot.scrubber is not None
        )

    def total_sectors_remapped(self) -> int:
        """Bad sectors remapped-and-verified across every managed device."""
        return sum(
            slot.scrubber.sectors_remapped
            for slot in self._slots.values()
            if slot.scrubber is not None
        )

    def error_log(self, name: str):
        """The device's :class:`~repro.faults.log.ErrorLog` (or ``None``)."""
        faults = self._slot(name).device.drive.faults
        return faults.log if faults is not None else None

    def _slot(self, name: str) -> _Slot:
        if name not in self._slots:
            raise KeyError(f"unknown device {name!r}")
        return self._slots[name]
