"""Finding the optimal (request size, wait threshold) pair (Section V-C/D).

The administrator specifies two numbers: the *average* and the
*maximum* tolerable slowdown per foreground request.  The optimizer
then, exactly as the paper describes:

1. caps the candidate request sizes at the largest whose service time
   fits the maximum slowdown;
2. for each candidate size, binary-searches the smallest wait
   threshold whose simulated mean slowdown still meets the average
   goal ("for a given request size, larger thresholds will always lead
   to smaller slowdowns");
3. picks the (size, threshold) pair with the highest scrub throughput.

Everything runs on the vectorised Waiting simulation, so a full
optimisation over a 64-size grid on a 100k-interval trace takes well
under a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import SlowdownResult, simulate_fixed_waiting

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel import SweepRunner

#: The paper's maximum-tolerable-slowdown default (50.4 ms — the value
#: that caps request sizes at 4 MB on its SAS drive).
DEFAULT_MAX_SLOWDOWN = 0.0504


@dataclass(frozen=True)
class OptimalParameters:
    """Optimiser output for one slowdown goal."""

    slowdown_goal: float
    threshold: float
    request_bytes: int
    throughput: float
    achieved_slowdown: float

    @property
    def throughput_mbps(self) -> float:
        return self.throughput / 1e6


class ScrubParameterOptimizer:
    """Optimises Waiting-policy parameters for one workload.

    Parameters
    ----------
    durations:
        The workload's idle interval durations (from a short
        representative trace — the paper recommends one capturing the
        workload's periodicity).
    total_requests:
        Foreground request count over the same window.
    span:
        Window length in seconds.
    service_model:
        Scrub service times for the target drive.
    sizes:
        Candidate request sizes; default 64 KB .. 4 MB in 64 KB steps.
    max_slowdown:
        Maximum tolerable per-request slowdown (caps request size).
    """

    def __init__(
        self,
        durations: np.ndarray,
        total_requests: int,
        span: float,
        service_model: ScrubServiceModel,
        sizes: Optional[Sequence[int]] = None,
        max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    ) -> None:
        self.durations = np.asarray(durations, dtype=float)
        if len(self.durations) == 0:
            raise ValueError("empty idle sample")
        if total_requests <= 0 or span <= 0:
            raise ValueError("total_requests and span must be positive")
        self.total_requests = total_requests
        self.span = span
        self.service_model = service_model
        if sizes is None:
            sizes = [k * 64 * 1024 for k in range(1, 65)]  # 64 KB .. 4 MB
        self.sizes = sorted(int(s) for s in sizes)
        if not self.sizes:
            raise ValueError("no candidate sizes")
        self.max_slowdown = max_slowdown

    # -- pieces ------------------------------------------------------------------
    def admissible_sizes(self) -> Sequence[int]:
        """Candidate sizes whose service time fits the max slowdown."""
        limit = self.service_model.max_size_for_slowdown(self.max_slowdown)
        admissible = [s for s in self.sizes if s <= limit]
        if not admissible:
            raise ValueError(
                f"no candidate size fits max_slowdown={self.max_slowdown}"
            )
        return admissible

    def simulate(self, threshold: float, request_bytes: int) -> SlowdownResult:
        return simulate_fixed_waiting(
            self.durations,
            threshold,
            request_bytes,
            self.service_model,
            self.total_requests,
            self.span,
        )

    def best_threshold(
        self,
        request_bytes: int,
        slowdown_goal: float,
        iterations: int = 40,
        at_zero: Optional[SlowdownResult] = None,
    ) -> Optional[SlowdownResult]:
        """Smallest threshold meeting ``slowdown_goal`` for one size.

        Returns ``None`` when even the largest sensible threshold cannot
        meet the goal (the size is too big for this workload).  The
        result returned is the simulation of the last *accepted*
        bisection midpoint, so convergence costs exactly one simulation
        per iteration — no final re-simulation of ``hi``.  Pass
        ``at_zero`` (the threshold-0 result) when already computed.
        """
        if slowdown_goal <= 0:
            raise ValueError(f"slowdown_goal must be positive: {slowdown_goal}")
        lo, hi = 0.0, float(self.durations.max())
        if at_zero is None:
            at_zero = self.simulate(0.0, request_bytes)
        if at_zero.mean_slowdown <= slowdown_goal:
            return at_zero
        best = self.simulate(hi, request_bytes)
        if best.mean_slowdown > slowdown_goal:
            return None
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            result = self.simulate(mid, request_bytes)
            if result.mean_slowdown <= slowdown_goal:
                hi, best = mid, result
            else:
                lo = mid
        return best

    # -- the headline call ----------------------------------------------------------
    def optimize(
        self,
        slowdown_goal: float,
        runner: Optional["SweepRunner"] = None,
        prune: bool = True,
    ) -> OptimalParameters:
        """Maximise scrub throughput subject to the mean-slowdown goal.

        With a :class:`~repro.parallel.SweepRunner` the per-size
        threshold searches fan out as independent (cacheable) tasks;
        serially, sizes are explored best-upper-bound first and any
        size whose threshold-0 throughput (its ceiling — throughput is
        non-increasing in the threshold) cannot beat the incumbent is
        pruned without a search.  ``prune=False`` disables the
        domination skip, making the serial path the true exhaustive
        grid — what the successive-halving benchmark and differential
        check compare against.  Pruning is exact (the ceiling argument
        above), so both settings return identical parameters.
        """
        if runner is not None:
            return self._optimize_with_runner(slowdown_goal, runner)
        best: Optional[OptimalParameters] = None
        sizes = self.admissible_sizes()
        # One vectorised sim per size: the threshold-0 upper bound.
        ceiling = {size: self.simulate(0.0, size) for size in sizes}
        ranked = sorted(sizes, key=lambda s: ceiling[s].throughput, reverse=True)
        for size in ranked:
            if (
                prune
                and best is not None
                and ceiling[size].throughput <= best.throughput
            ):
                continue  # dominated: cannot beat the incumbent at any threshold
            result = self.best_threshold(
                size, slowdown_goal, at_zero=ceiling[size]
            )
            if result is None:
                continue
            candidate = OptimalParameters(
                slowdown_goal=slowdown_goal,
                threshold=result.threshold,
                request_bytes=size,
                throughput=result.throughput,
                achieved_slowdown=result.mean_slowdown,
            )
            if best is None or candidate.throughput > best.throughput:
                best = candidate
        if best is None:
            raise ValueError(
                f"no parameters meet slowdown goal {slowdown_goal}s for this workload"
            )
        return best

    def _optimize_with_runner(
        self, slowdown_goal: float, runner: "SweepRunner"
    ) -> OptimalParameters:
        """Fan the per-size threshold searches across a sweep runner."""
        sizes = list(self.admissible_sizes())
        tasks = [
            dict(
                durations=self.durations,
                total_requests=self.total_requests,
                span=self.span,
                service_model=self.service_model,
                request_bytes=size,
                slowdown_goal=slowdown_goal,
                max_slowdown=self.max_slowdown,
            )
            for size in sizes
        ]
        results = runner.map(_best_threshold_task, tasks)
        best: Optional[OptimalParameters] = None
        for size, result in zip(sizes, results):
            if result is None:
                continue
            candidate = OptimalParameters(
                slowdown_goal=slowdown_goal,
                threshold=result.threshold,
                request_bytes=size,
                throughput=result.throughput,
                achieved_slowdown=result.mean_slowdown,
            )
            if best is None or candidate.throughput > best.throughput:
                best = candidate
        if best is None:
            raise ValueError(
                f"no parameters meet slowdown goal {slowdown_goal}s for this workload"
            )
        return best


def _best_threshold_task(
    durations: np.ndarray,
    total_requests: int,
    span: float,
    service_model: ScrubServiceModel,
    request_bytes: int,
    slowdown_goal: float,
    max_slowdown: float,
    iterations: int = 40,
) -> Optional[SlowdownResult]:
    """One size's threshold search as a picklable, cacheable sweep task."""
    optimizer = ScrubParameterOptimizer(
        durations,
        total_requests,
        span,
        service_model,
        sizes=[request_bytes],
        max_slowdown=max_slowdown,
    )
    return optimizer.best_threshold(
        request_bytes, slowdown_goal, iterations=iterations
    )
