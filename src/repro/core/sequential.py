"""Sequential scrubbing: scan the disk in increasing LBN order.

This is the algorithm production systems use (paper Section I): simple,
and each request is adjacent to the previous one.  Note that adjacency
does *not* make back-to-back ``VERIFY`` cheap — completion propagation
costs a missed rotation (Section IV-A) — which is exactly what the
staggered comparison in Fig. 5 demonstrates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scrubber import Extent, ScrubAlgorithm


class SequentialScrub(ScrubAlgorithm):
    """Walk LBNs from 0 to the end in fixed-size requests."""

    def __init__(self) -> None:
        self._total = 0
        self._step = 0
        self._next = 0

    def reset(self, total_sectors: int, request_sectors: int) -> None:
        if total_sectors <= 0 or request_sectors <= 0:
            raise ValueError("sector counts must be positive")
        self._total = total_sectors
        self._step = request_sectors
        self._next = 0

    def next_extent(self) -> Optional[Extent]:
        if self._next >= self._total:
            return None
        lbn = self._next
        sectors = min(self._step, self._total - lbn)
        self._next += sectors
        return lbn, sectors
