"""Closed-loop synthetic foreground workloads (paper Section IV-B).

Two generators mirror the paper's synthetic experiments:

* :class:`SequentialReader` — picks a random sector, reads the
  following ``chunk_bytes`` (default 8 MB) in ``request_bytes``
  (default 64 KB) sequential reads, then thinks for an exponentially
  distributed time (mean 100 ms by default) and repeats.
* :class:`RandomReader` — reads ``request_bytes`` from a uniformly
  random location, thinking between requests.

Both are *closed loop*: the next request is issued only after the
previous one completed plus a small host ``turnaround`` (syscall and
application processing), which is what creates the sub-millisecond
disk-idle gaps CFQ's anticipation machinery cares about.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.disk.commands import SECTOR_SIZE, DiskCommand
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import Interrupt, Process, Simulation


class _ClosedLoopWorkload:
    """Shared machinery: lifecycle, counters, think times."""

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        rng: np.random.Generator,
        request_bytes: int = 64 * 1024,
        think_mean: float = 0.100,
        turnaround: float = 0.0002,
        priority: PriorityClass = PriorityClass.BE,
        source: str = "foreground",
    ) -> None:
        if request_bytes % SECTOR_SIZE:
            raise ValueError(
                f"request_bytes must be a multiple of {SECTOR_SIZE}: {request_bytes}"
            )
        if think_mean < 0 or turnaround < 0:
            raise ValueError("think_mean and turnaround must be non-negative")
        self.sim = sim
        self.device = device
        self.rng = rng
        self.request_sectors = request_bytes // SECTOR_SIZE
        self.think_mean = think_mean
        self.turnaround = turnaround
        self.priority = priority
        self.source = source
        self.requests_issued = 0
        self.bytes_read = 0
        self._process: Optional[Process] = None

    def start(self) -> Process:
        """Launch the workload's simulation process."""
        if self._process is not None:
            raise RuntimeError("workload already started")
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        """Interrupt the workload (it exits at its next wait point)."""
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")

    def _think(self):
        if self.think_mean > 0:
            return self.sim.timeout(self.rng.exponential(self.think_mean))
        return self.sim.timeout(0)

    def _do_read(self, lbn: int):
        request = IORequest(
            DiskCommand.read(lbn, self.request_sectors),
            priority=self.priority,
            source=self.source,
        )
        completion = self.device.submit(request)
        self.requests_issued += 1
        self.bytes_read += request.bytes
        return completion

    def _run(self):
        raise NotImplementedError


class SequentialReader(_ClosedLoopWorkload):
    """Random-chunk sequential reader: 8 MB chunks of 64 KB reads.

    ``think_scope`` selects where the exponential think time applies:
    ``"chunk"`` (default, between 8 MB chunks — calibrated to the
    foreground throughput the paper reports) or ``"request"`` (between
    every read).
    """

    def __init__(self, *args, chunk_bytes: int = 8 * 1024 * 1024,
                 think_scope: str = "chunk", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if think_scope not in ("chunk", "request"):
            raise ValueError(f"unknown think_scope: {think_scope!r}")
        if chunk_bytes % (self.request_sectors * SECTOR_SIZE):
            raise ValueError("chunk_bytes must be a multiple of request_bytes")
        self.chunk_sectors = chunk_bytes // SECTOR_SIZE
        self.think_scope = think_scope
        self.chunks_read = 0

    def _run(self):
        total = self.device.drive.total_sectors
        span = total - self.chunk_sectors
        try:
            while True:
                start = int(
                    self.rng.integers(0, span // self.request_sectors)
                ) * self.request_sectors
                for offset in range(0, self.chunk_sectors, self.request_sectors):
                    yield self._do_read(start + offset)
                    if self.think_scope == "request":
                        yield self._think()
                    elif self.turnaround > 0:
                        yield self.sim.timeout(self.turnaround)
                self.chunks_read += 1
                if self.think_scope == "chunk":
                    yield self._think()
        except Interrupt:
            return


class RandomReader(_ClosedLoopWorkload):
    """Uniformly random reads with exponential think times between them."""

    def _run(self):
        total = self.device.drive.total_sectors
        span = (total - self.request_sectors) // self.request_sectors
        try:
            while True:
                lbn = int(self.rng.integers(0, span)) * self.request_sectors
                yield self._do_read(lbn)
                if self.turnaround > 0:
                    yield self.sim.timeout(self.turnaround)
                yield self._think()
        except Interrupt:
            return
