"""Open-loop trace replay (paper Section IV-C).

Replays a block I/O trace against a :class:`~repro.sched.device.BlockDevice`
preserving the original arrival times (open loop: arrivals do not slow
down when the device is overloaded, exactly like the paper's replayer).

Two feeds, one contract
-----------------------
:class:`TraceReplayer` accepts three input shapes:

* an iterable of duck-typed records (anything with ``time``, ``lbn``,
  ``sectors`` and ``is_write`` attributes, in particular
  :class:`repro.traces.TraceRecord`) — the original generator-based
  path, kept verbatim;
* a :class:`~repro.traces.record.Trace` — the batched fast path: a
  :class:`_ReplayCursor` pre-computes due times, clipped sector counts
  and wrapped LBNs block-wise with numpy (``_BLOCK`` records at a
  time) and feeds the engine from an array cursor that reuses a single
  scheduling event (a freelist of one) instead of allocating a record
  object, a generator frame and a ``Timeout`` per request;
* an iterable of :class:`Trace` chunks — the same cursor streaming
  over chunks (e.g. :func:`repro.traces.io.iter_trace_chunks`), so a
  multi-GB trace replays in bounded memory.

The two paths are **bit-identical**, including telemetry: the cursor
consumes exactly the sequence numbers the generator path would — one
for its init event, one per scheduled wait, one for the completion
event — computes due times with the same float expression, and
replicates the generator's submit-on-wakeup semantics (a record whose
wait was scheduled is submitted unconditionally on wakeup, even when
float rounding wakes the clock marginally before the nominal due
time).  A trace replayed through either feed produces the same request
stream, the same event count, and the same final state.
"""

from __future__ import annotations

from heapq import heappush
from itertools import chain
from typing import Iterable, List, Optional

import numpy as np

from repro.disk.commands import DiskCommand
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import Interrupt, Process, Simulation
from repro.sim.events import _PENDING, Event
from repro.traces.record import Trace

#: Records converted from numpy to Python scalars per batch.  Bounds
#: the Python-object footprint of a replay regardless of trace size,
#: and bounds wasted conversion when a horizon cuts the replay short.
_BLOCK = 32768


class _ReplayCursor(Event):
    """Array-fed replay driver: the batched :class:`TraceReplayer` path.

    The cursor is itself an :class:`Event` that succeeds when the trace
    is exhausted — exactly as a :class:`Process` does when its
    generator returns — so ``sim.run(until=replayer.start())`` behaves
    identically on both feeds.

    Event-for-event parity with the generator path is a hard
    invariant, relied on by the determinism tests and the benchmark's
    bit-identity gate:

    * ``_start`` pushes one init event, mirroring ``Process.__init__``;
    * each wait reschedules one reused event object (``_fire_ev``, a
      freelist of size one) through the same ``seq``/``heappush``
      sequence a ``Timeout`` would consume, at the same float time
      (``now + (due - now)``, *not* ``due`` — the generator path's
      rounding is part of the contract);
    * a record whose wait was scheduled is submitted unconditionally on
      wakeup (the generator never re-checks ``due`` after its
      ``timeout`` fires), then same-time records drain while
      ``due <= now``;
    * exhaustion pushes the cursor itself as a completion event, and a
      wrap violation fails the cursor, mirroring ``Process._resume``'s
      ``StopIteration`` / exception handling.
    """

    __slots__ = (
        "device",
        "time_scale",
        "priority",
        "source",
        "wrap_lbn",
        "count",
        "_on_fire",
        "_fire_ev",
        "_init_ev",
        "_chunks",
        "_chunk",
        "_chunk_pos",
        "_origin",
        "_start_at",
        "_last_time",
        "_total",
        "_dues",
        "_lbns",
        "_secs",
        "_writes",
        "_bad",
        "_block_len",
        "_idx",
        "_designated",
        "_done",
        "_vector",
    )

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        chunks: Iterable[Trace],
        time_scale: float,
        priority: PriorityClass,
        source: str,
        wrap_lbn: bool,
    ) -> None:
        super().__init__(sim)
        self.device = device
        self.time_scale = time_scale
        self.priority = priority
        self.source = source
        self.wrap_lbn = wrap_lbn
        #: Requests submitted so far (mirrors the legacy counter).
        self.count = 0
        self._on_fire = self._fire
        self._fire_ev: Optional[Event] = None
        self._init_ev: Optional[Event] = None
        self._chunks = iter(chunks)
        self._chunk: Optional[Trace] = None
        self._chunk_pos = 0
        self._origin: Optional[float] = None
        self._start_at: Optional[float] = None
        self._last_time: Optional[float] = None
        self._total = device.drive.total_sectors
        self._dues: List[float] = []
        self._lbns: List[int] = []
        self._secs: List[int] = []
        self._writes: List[bool] = []
        self._bad = -1
        self._block_len = 0
        self._idx = 0
        self._designated = False
        self._done = False
        #: On the vector kernel the cursor schedules its waits straight
        #: into the array queue (``sim.call_at``) with no per-event
        #: object at all — not even the reused ``_fire_ev``.  Sequence
        #: consumption and due-time floats are identical either way.
        self._vector = sim.kernel == "vector"

    @property
    def is_alive(self) -> bool:
        """``True`` until exhaustion or stop (mirrors ``Process``)."""
        return self._value is _PENDING

    # -- lifecycle ---------------------------------------------------------
    def _start(self) -> "_ReplayCursor":
        """Schedule the init event (mirrors ``Process.__init__``)."""
        sim = self.sim
        if self._vector:
            sim.call_at(sim._now, self._fire_vec)
            return self
        init = Event.__new__(Event)
        init.sim = sim
        init._callbacks = self._on_fire
        init._value = None
        init._ok = True
        init._defused = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, init))
        self._init_ev = init
        return self

    def _stop(self) -> None:
        """Interrupt-equivalent: stop replaying at the current time."""
        if self._done or not self.is_alive:
            return
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt("stop")
        ev._defused = True
        ev._callbacks = self._interrupt_fire
        self.sim.schedule_interrupt(ev)

    def _interrupt_fire(self, _event: Event) -> None:
        if self._done or not self.is_alive:
            return
        self._done = True
        # Forget the event that would have resumed us (mirrors the
        # target-detach in Process._resume): it stays in the heap and
        # pops later as a no-op.  The vector path has no event object
        # to detach — its pending array entry fires ``_fire_vec``,
        # whose ``_done`` guard makes it the same counted no-op.
        target = self._fire_ev if self._start_at is not None else self._init_ev
        if target is not None and target._callbacks is self._on_fire:
            target._callbacks = None
        if self._start_at is None:
            # Interrupted before the init event fired: the generator
            # path fails the process with the interrupt (pre-defused).
            self._defused = True
            Event.fail(self, Interrupt("stop"))
        else:
            self._finish()

    def _finish(self) -> None:
        """Completion event (mirrors the inlined succeed on StopIteration)."""
        self._done = True
        sim = self.sim
        self._ok = True
        self._value = None
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim._now, seq, self))

    # -- hot path ----------------------------------------------------------
    def _fire_vec(self) -> None:
        """Array-queue wakeup (no event argument, ``_done`` guarded)."""
        if not self._done:
            self._fire(None)

    def _fire(self, _event: Optional[Event]) -> None:
        sim = self.sim
        now = sim._now
        if self._start_at is None:
            self._start_at = now
        idx = self._idx
        if self._designated:
            # This firing was scheduled for the record at ``idx``:
            # submit it unconditionally, like the generator resuming
            # after its timeout.
            self._designated = False
            if not self._submit(idx):
                return
            idx += 1
        dues = self._dues
        n = self._block_len
        while True:
            if idx >= n:
                if not self._next_block():
                    self._idx = idx
                    self._finish()
                    return
                idx = 0
                dues = self._dues
                n = self._block_len
            if dues[idx] > now:
                break
            if not self._submit(idx):
                return
            idx += 1
        self._idx = idx
        self._designated = True
        if self._vector:
            # Same ``now + delay`` float as the Timeout below, one seq.
            sim.call_at(now + (dues[idx] - now), self._fire_vec)
            return
        ev = self._fire_ev
        if ev is None:
            ev = self._fire_ev = Event.__new__(Event)
            ev.sim = sim
            ev._value = None
            ev._ok = True
            ev._defused = False
        # Reuse the one scheduling event: same seq consumption and the
        # same ``now + delay`` float arithmetic as a fresh Timeout.
        ev._callbacks = self._on_fire
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (now + (dues[idx] - now), seq, ev))

    def _submit(self, idx: int) -> bool:
        if idx == self._bad:
            self._done = True
            Event.fail(
                self,
                ValueError(
                    f"record at LBN {self._lbns[idx]} exceeds device "
                    f"size {self._total}"
                ),
            )
            return False
        if self._writes[idx]:
            command = DiskCommand.write(self._lbns[idx], self._secs[idx])
        else:
            command = DiskCommand.read(self._lbns[idx], self._secs[idx])
        self.device.submit(
            IORequest(command, priority=self.priority, source=self.source)
        )
        self.count += 1
        return True

    # -- block conversion --------------------------------------------------
    def _next_block(self) -> bool:
        chunk = self._chunk
        pos = self._chunk_pos
        while chunk is None or pos >= len(chunk):
            chunk = next(self._chunks, None)
            if chunk is None:
                self._chunk = None
                return False
            if len(chunk) == 0:
                chunk = None
                continue
            t0 = float(chunk.times[0])
            if self._last_time is not None and t0 < self._last_time:
                raise ValueError(
                    "trace chunks must be globally time-sorted: chunk "
                    f"starts at {t0} after a record at {self._last_time}"
                )
            if self._origin is None:
                self._origin = t0
            self._chunk = chunk
            pos = 0
        end = min(pos + _BLOCK, len(chunk))
        self._chunk_pos = end
        self._convert(chunk, pos, end)
        self._last_time = float(chunk.times[end - 1])
        return True

    def _convert(self, chunk: Trace, a: int, b: int) -> None:
        # The exact float expression of the generator path —
        # due = start_at + (time - origin) * time_scale — elementwise
        # IEEE double either way, so dues are bit-identical.
        dues = (chunk.times[a:b] - self._origin) * self.time_scale + self._start_at
        secs = np.maximum(1, chunk.sectors[a:b])
        lbns = chunk.lbns[a:b]
        total = self._total
        bad = -1
        over = lbns + secs > total
        if over.any():
            if self.wrap_lbn:
                lbns = np.where(over, lbns % np.maximum(1, total - secs), lbns)
            else:
                # Lazy, like the generator: records before the first
                # violation still replay; the error fires only if the
                # cursor reaches the offending record.
                bad = int(np.argmax(over))
        self._dues = dues.tolist()
        self._lbns = lbns.tolist()
        self._secs = secs.tolist()
        self._writes = chunk.is_write[a:b].tolist()
        self._bad = bad
        self._block_len = b - a


class TraceReplayer:
    """Replay a trace open-loop.

    Parameters
    ----------
    sim, device:
        Simulation context and target device.
    records:
        A :class:`Trace` (batched fast path), a
        :class:`~repro.traces.store.StoredTrace` (streamed zero-copy
        from its memory-mapped chunk files — one chunk resident at a
        time), an iterable of :class:`Trace` chunks (streamed batched
        path), or an iterable of record-like objects sorted-or-not by
        arrival time (legacy path; sorted here).
    time_scale:
        Multiplier on inter-arrival times (e.g. 0.5 replays twice as fast).
    wrap_lbn:
        If the traced disk was larger than the simulated one, wrap LBNs
        modulo the simulated size rather than failing.
    """

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        records,
        time_scale: float = 1.0,
        priority: PriorityClass = PriorityClass.BE,
        source: str = "foreground",
        wrap_lbn: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.sim = sim
        self.device = device
        self.time_scale = time_scale
        self.priority = priority
        self.source = source
        self.wrap_lbn = wrap_lbn
        self._submitted = 0
        self._process: Optional[Process] = None
        self._cursor: Optional[_ReplayCursor] = None
        self.records: Optional[List] = None
        self._chunks: Optional[Iterable[Trace]] = None
        from repro.traces.store import StoredTrace

        if isinstance(records, Trace):
            self._chunks = (records,)
        elif isinstance(records, StoredTrace):
            # Explicit branch so no chunk is mapped (or digest-checked)
            # until the replay actually starts.
            self._chunks = records.iter_chunks()
        else:
            iterator = iter(records)
            first = next(iterator, None)
            if first is None:
                self.records = []
            elif isinstance(first, Trace):
                self._chunks = chain((first,), iterator)
            else:
                self.records = sorted(
                    chain((first,), iterator), key=lambda r: r.time
                )

    @property
    def submitted(self) -> int:
        """Requests submitted so far (either feed)."""
        if self._cursor is not None:
            return self._cursor.count
        return self._submitted

    def start(self):
        """Begin replaying; returns an event that fires on completion.

        The legacy feed returns the driving :class:`Process`; the
        batched feed returns the :class:`_ReplayCursor` (also an
        :class:`~repro.sim.events.Event`).  Both can be waited on.
        """
        if self._process is not None or self._cursor is not None:
            raise RuntimeError("replayer already started")
        if self.records is None:
            self._cursor = _ReplayCursor(
                self.sim,
                self.device,
                self._chunks,
                self.time_scale,
                self.priority,
                self.source,
                self.wrap_lbn,
            )
            return self._cursor._start()
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        if self._cursor is not None:
            self._cursor._stop()
            return
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")

    def _run(self):
        if not self.records:
            return
        total = self.device.drive.total_sectors
        origin = self.records[0].time
        start_at = self.sim.now
        try:
            for record in self.records:
                due = start_at + (record.time - origin) * self.time_scale
                if due > self.sim.now:
                    yield self.sim.timeout(due - self.sim.now)
                sectors = max(1, int(record.sectors))
                lbn = int(record.lbn)
                if lbn + sectors > total:
                    if not self.wrap_lbn:
                        raise ValueError(
                            f"record at LBN {lbn} exceeds device size {total}"
                        )
                    lbn = lbn % max(1, total - sectors)
                command = (
                    DiskCommand.write(lbn, sectors)
                    if record.is_write
                    else DiskCommand.read(lbn, sectors)
                )
                self.device.submit(
                    IORequest(command, priority=self.priority, source=self.source)
                )
                self._submitted += 1
        except Interrupt:
            return
