"""Open-loop trace replay (paper Section IV-C).

Replays a block I/O trace against a :class:`~repro.sched.device.BlockDevice`
preserving the original arrival times (open loop: arrivals do not slow
down when the device is overloaded, exactly like the paper's replayer).
Records are duck-typed: anything with ``time``, ``lbn``, ``sectors``
and ``is_write`` attributes works, in particular
:class:`repro.traces.TraceRecord`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.disk.commands import DiskCommand
from repro.sched.device import BlockDevice
from repro.sched.request import IORequest, PriorityClass
from repro.sim import Interrupt, Process, Simulation


class TraceReplayer:
    """Replay a trace open-loop.

    Parameters
    ----------
    sim, device:
        Simulation context and target device.
    records:
        Trace records sorted by arrival time.
    time_scale:
        Multiplier on inter-arrival times (e.g. 0.5 replays twice as fast).
    wrap_lbn:
        If the traced disk was larger than the simulated one, wrap LBNs
        modulo the simulated size rather than failing.
    """

    def __init__(
        self,
        sim: Simulation,
        device: BlockDevice,
        records: Iterable,
        time_scale: float = 1.0,
        priority: PriorityClass = PriorityClass.BE,
        source: str = "foreground",
        wrap_lbn: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.sim = sim
        self.device = device
        self.records: List = sorted(records, key=lambda r: r.time)
        self.time_scale = time_scale
        self.priority = priority
        self.source = source
        self.wrap_lbn = wrap_lbn
        self.submitted = 0
        self._process: Optional[Process] = None

    def start(self) -> Process:
        if self._process is not None:
            raise RuntimeError("replayer already started")
        self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        if self._process is None or not self._process.is_alive:
            return
        self._process.interrupt("stop")

    def _run(self):
        if not self.records:
            return
        total = self.device.drive.total_sectors
        origin = self.records[0].time
        start_at = self.sim.now
        try:
            for record in self.records:
                due = start_at + (record.time - origin) * self.time_scale
                if due > self.sim.now:
                    yield self.sim.timeout(due - self.sim.now)
                sectors = max(1, int(record.sectors))
                lbn = int(record.lbn)
                if lbn + sectors > total:
                    if not self.wrap_lbn:
                        raise ValueError(
                            f"record at LBN {lbn} exceeds device size {total}"
                        )
                    lbn = lbn % max(1, total - sectors)
                command = (
                    DiskCommand.write(lbn, sectors)
                    if record.is_write
                    else DiskCommand.read(lbn, sectors)
                )
                self.device.submit(
                    IORequest(command, priority=self.priority, source=self.source)
                )
                self.submitted += 1
        except Interrupt:
            return
