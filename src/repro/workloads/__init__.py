"""Foreground workload generators.

Closed-loop synthetic workloads (Section IV-B of the paper) and an
open-loop trace replayer (Section IV-C).  All workloads submit
:class:`~repro.sched.request.IORequest`\\ s to a
:class:`~repro.sched.device.BlockDevice` from inside simulation
processes.
"""

from repro.workloads.replay import TraceReplayer
from repro.workloads.synthetic import RandomReader, SequentialReader

__all__ = ["RandomReader", "SequentialReader", "TraceReplayer"]
