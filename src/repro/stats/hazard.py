"""Conditional remaining-idle-time estimators (paper Fig. 11, 12, 13).

These are the empirical quantities behind the paper's key insight —
idle-time distributions have *decreasing hazard rates*, so the longer
a disk has been idle, the longer it will stay idle:

* :func:`expected_remaining` — ``E[D - t | D > t]`` (Fig. 11);
* :func:`percentile_remaining` — the q-quantile of ``D - t | D > t``
  (Fig. 12 uses the 1st percentile);
* :func:`usable_fraction` — the fraction of total idle time still
  exploitable if scrubbing only starts after waiting ``t`` (Fig. 13);
* :func:`fraction_intervals_longer` — how many intervals a wait
  threshold actually selects (the collision-budget side of Fig. 13).

All work on a sorted copy of the duration sample with suffix sums, so
each query over a vector of thresholds is O(n log n) total.
"""

from __future__ import annotations

import numpy as np


def _prepare(durations: np.ndarray) -> tuple:
    durations = np.asarray(durations, dtype=float)
    if len(durations) == 0:
        raise ValueError("empty duration sample")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    ordered = np.sort(durations)
    suffix_sums = np.concatenate((np.cumsum(ordered[::-1])[::-1], [0.0]))
    return ordered, suffix_sums


def expected_remaining(durations: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """``E[D - tau | D > tau]`` for each threshold ``tau``.

    Returns NaN for thresholds beyond the largest observed duration.
    """
    ordered, suffix = _prepare(durations)
    taus = np.atleast_1d(np.asarray(taus, dtype=float))
    firsts = np.searchsorted(ordered, taus, side="right")
    counts = len(ordered) - firsts
    out = np.full(len(taus), np.nan)
    alive = counts > 0
    out[alive] = suffix[firsts[alive]] / counts[alive] - taus[alive]
    return out


def percentile_remaining(
    durations: np.ndarray, taus: np.ndarray, q: float = 1.0
) -> np.ndarray:
    """The ``q``-th percentile of ``D - tau | D > tau`` per threshold.

    ``q=1`` reproduces the paper's "in 99% of the cases, after waiting
    tau we still have at least this long" curve (Fig. 12).
    """
    if not 0 < q < 100:
        raise ValueError(f"q must be a percentile in (0, 100): {q}")
    ordered, _ = _prepare(durations)
    taus = np.atleast_1d(np.asarray(taus, dtype=float))
    firsts = np.searchsorted(ordered, taus, side="right")
    counts = len(ordered) - firsts
    out = np.full(len(taus), np.nan)
    alive = counts > 0
    # np.percentile's "linear" rule on the already-sorted survivor
    # suffix: value = a[floor(pos)] + frac * (a[floor(pos)+1] - a[floor(pos)])
    # with pos = q/100 * (n-1), evaluated for every tau at once.
    pos = (q / 100.0) * (counts[alive] - 1)
    lower = np.floor(pos).astype(np.intp)
    frac = pos - lower
    base = firsts[alive] + lower
    upper = np.minimum(base + 1, len(ordered) - 1)
    values = ordered[base] + frac * (ordered[upper] - ordered[base])
    out[alive] = values - taus[alive]
    return np.maximum(out, 0.0, where=~np.isnan(out), out=out)


def usable_fraction(durations: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Fraction of total idle time left after waiting ``tau`` per interval.

    ``sum(D - tau for D > tau) / sum(D)`` — Fig. 13's y-axis.
    """
    ordered, suffix = _prepare(durations)
    total = suffix[0]
    if total <= 0:
        raise ValueError("total idle time is zero")
    taus = np.atleast_1d(np.asarray(taus, dtype=float))
    firsts = np.searchsorted(ordered, taus, side="right")
    counts = len(ordered) - firsts
    return (suffix[firsts] - taus * counts) / total


def fraction_intervals_longer(
    durations: np.ndarray, taus: np.ndarray
) -> np.ndarray:
    """Fraction of intervals longer than each threshold (the collision
    budget a Waiting policy with that threshold signs up for)."""
    ordered, _ = _prepare(durations)
    taus = np.atleast_1d(np.asarray(taus, dtype=float))
    firsts = np.searchsorted(ordered, taus, side="right")
    return (len(ordered) - firsts) / len(ordered)
