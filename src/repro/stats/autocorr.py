"""Autocorrelation and long-range dependence estimators.

The paper reports that 44 of its 63 busiest traces show strong
autocorrelation in idle-interval lengths, and cites prior Hurst
parameter evidence (H > 0.5) for disk workloads.  Both estimators are
implemented here: the sample ACF (FFT-based, so million-sample series
are fine) and an aggregated-variance Hurst estimator.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats


def acf(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation function for lags ``0..max_lag``.

    Uses the FFT (Wiener–Khinchin) with the biased normalisation, the
    standard choice that keeps the estimated sequence positive
    semi-definite.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    if not 0 <= max_lag < n:
        raise ValueError(f"max_lag must lie in [0, {n}): {max_lag}")
    centred = x - x.mean()
    size = int(2 ** np.ceil(np.log2(2 * n - 1)))
    spectrum = np.fft.rfft(centred, size)
    autocov = np.fft.irfft(spectrum * np.conj(spectrum), size)[: max_lag + 1]
    autocov /= n
    if autocov[0] == 0:
        raise ValueError("series has zero variance")
    return autocov / autocov[0]


def has_significant_autocorrelation(
    x: np.ndarray,
    lags: int = 10,
    threshold_sigma: float = 2.0,
    method: str = "rank",
) -> bool:
    """Whether early ACF values exceed the white-noise confidence band.

    For white noise the ACF at non-zero lags is ~N(0, 1/n); we call the
    series autocorrelated if the mean of the first ``lags`` absolute
    autocorrelations exceeds ``threshold_sigma / sqrt(n)``.

    ``method="rank"`` (default) computes the ACF of the rank-transformed
    series (a lag-wise Spearman correlation).  Idle-time samples have
    CoVs of 10–200, and the linear ACF of such heavy-tailed data is
    dominated by a handful of extreme values — the rank ACF is the
    standard robust alternative.
    """
    x = np.asarray(x, dtype=float)
    if len(x) <= lags:
        raise ValueError("series too short for the requested lags")
    if method == "rank":
        x = sp_stats.rankdata(x)
    elif method != "linear":
        raise ValueError(f"unknown method: {method!r}")
    values = acf(x, lags)[1:]
    band = threshold_sigma / np.sqrt(len(x))
    return bool(np.mean(np.abs(values)) > band)


def hurst_exponent(
    x: np.ndarray, min_block: int = 8, num_scales: int = 12
) -> float:
    """Aggregated-variance Hurst estimator.

    For a self-similar process, the variance of block means over blocks
    of size ``m`` scales as ``m^(2H-2)``; ``H`` is recovered from the
    slope of ``log Var(m)`` against ``log m``.  ``H = 0.5`` is
    short-range dependence; ``H > 0.5`` indicates long-range dependence.
    """
    x = np.asarray(x, dtype=float)
    n = len(x)
    if n < 4 * min_block:
        raise ValueError(f"series too short for Hurst estimation: {n}")
    max_block = n // 4
    blocks = np.unique(
        np.geomspace(min_block, max_block, num_scales).astype(int)
    )
    log_m, log_var = [], []
    for m in blocks:
        usable = (n // m) * m
        means = x[:usable].reshape(-1, m).mean(axis=1)
        if len(means) < 2:
            continue
        variance = means.var()
        if variance <= 0:
            continue
        log_m.append(np.log(m))
        log_var.append(np.log(variance))
    if len(log_m) < 3:
        raise ValueError("not enough usable scales for Hurst estimation")
    slope = np.polyfit(log_m, log_var, 1)[0]
    hurst = 1.0 + slope / 2.0
    return float(np.clip(hurst, 0.0, 1.0))
