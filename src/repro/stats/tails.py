"""Idle-time tail concentration (paper Fig. 10).

Fig. 10 plots, for each trace, the fraction of total idle time
contributed by the x% largest idle intervals.  The paper's headline:
typically more than 80% of the idle time sits in fewer than 15% of the
intervals, which is why targeting only the few long intervals loses
almost nothing.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def tail_concentration(durations: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Concentration curve of a duration sample.

    Returns ``(interval_fraction, idle_fraction)`` where
    ``idle_fraction[i]`` is the share of total idle time contained in
    the ``interval_fraction[i]`` largest intervals.  Both arrays are
    monotonically increasing with ``idle_fraction >= interval_fraction``
    pointwise (largest-first ordering).
    """
    durations = np.asarray(durations, dtype=float)
    if len(durations) == 0:
        raise ValueError("empty duration sample")
    if np.any(durations < 0):
        raise ValueError("durations must be non-negative")
    total = durations.sum()
    if total <= 0:
        raise ValueError("total idle time is zero")
    descending = np.sort(durations)[::-1]
    idle_fraction = np.cumsum(descending) / total
    interval_fraction = np.arange(1, len(durations) + 1) / len(durations)
    return interval_fraction, idle_fraction


def idle_share_of_largest(durations: np.ndarray, interval_share: float) -> float:
    """Share of idle time in the largest ``interval_share`` of intervals.

    ``idle_share_of_largest(d, 0.15)`` answers the paper's "what do the
    15% largest intervals hold?" question directly.
    """
    if not 0 < interval_share <= 1:
        raise ValueError(f"interval_share must be in (0, 1]: {interval_share}")
    fractions, idle = tail_concentration(durations)
    index = int(np.searchsorted(fractions, interval_share, side="right")) - 1
    if index < 0:
        return 0.0
    return float(idle[index])
