"""ANOVA-based period detection (paper Fig. 9).

The paper identifies "the time interval with the strongest periodic
behavior" per trace using analysis of variance at hour granularity:
for a candidate period of ``p`` hours, the hourly request counts are
grouped by phase (hour mod p); if arrival intensity really repeats
with period ``p``, between-phase variance is large relative to
within-phase variance, giving a large F statistic.  The detected
period is the significant candidate with the largest F; a result of
one hour means "no periodicity detected", exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np
from scipy import stats as sp_stats


@dataclass(frozen=True)
class PeriodResult:
    """Outcome of period detection."""

    #: Detected period in bins (hours); 1 = no periodicity found.
    period: int
    #: F statistic of the winning period (0 when period == 1).
    f_statistic: float
    #: p-value of the winning period (1 when period == 1).
    p_value: float
    #: (period, F, p) per candidate, for inspection.
    candidates: Tuple[Tuple[int, float, float], ...]


def _anova_f(counts: np.ndarray, period: int) -> Tuple[float, float]:
    """One-way ANOVA F and p grouping ``counts`` by ``index mod period``."""
    groups = [counts[phase::period] for phase in range(period)]
    # Each phase needs at least two observations for a within-variance.
    if any(len(g) < 2 for g in groups):
        return 0.0, 1.0
    f, p = sp_stats.f_oneway(*groups)
    if not np.isfinite(f):
        return 0.0, 1.0
    return float(f), float(p)


def anova_period(
    counts: np.ndarray,
    max_period: Optional[int] = None,
    candidates: Optional[Iterable[int]] = None,
    alpha: float = 0.01,
    stabilise: bool = True,
) -> PeriodResult:
    """Detect the strongest period in a series of per-bin counts.

    Parameters
    ----------
    counts:
        Requests per bin (per hour, for the paper's granularity).
    max_period:
        Largest candidate period, default ``len(counts) // 3`` (each
        phase needs several repetitions).
    candidates:
        Explicit candidate periods (overrides ``max_period``).
    alpha:
        Significance level; candidates with ``p >= alpha`` are ignored.
    stabilise:
        Apply ``log1p`` first — request counts are heavy-tailed, and
        ANOVA assumes roughly homoskedastic groups.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 1:
        raise ValueError("counts must be one-dimensional")
    if len(counts) < 6:
        raise ValueError(
            f"need at least 6 bins to detect a period, got {len(counts)}"
        )
    if stabilise:
        counts = np.log1p(counts)
    if candidates is None:
        limit = max_period if max_period is not None else len(counts) // 3
        limit = max(2, min(limit, len(counts) // 2))
        candidates = range(2, limit + 1)

    results = []
    for period in candidates:
        if period < 2:
            raise ValueError(f"candidate periods must be >= 2: {period}")
        f, p = _anova_f(counts, period)
        results.append((int(period), f, p))

    significant = [r for r in results if r[2] < alpha]
    if not significant:
        return PeriodResult(
            period=1, f_statistic=0.0, p_value=1.0, candidates=tuple(results)
        )
    best = max(significant, key=lambda r: r[1])
    return PeriodResult(
        period=best[0],
        f_statistic=best[1],
        p_value=best[2],
        candidates=tuple(results),
    )
