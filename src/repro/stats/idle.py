"""Idle-interval summary statistics (paper Table II).

The paper characterises each trace's idle-interval duration
distribution by its mean, variance and coefficient of variation; a CoV
far above 1 (the exponential distribution's CoV) signals the heavy
tails and decreasing hazard rates that make wait-based scheduling
work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class IdleStats:
    """Summary of an idle-interval duration sample."""

    count: int
    mean: float
    variance: float
    cov: float
    total_idle: float
    #: Fraction of the observation span spent idle (None if span unknown).
    idle_fraction: Optional[float] = None

    @property
    def is_memoryless_like(self) -> bool:
        """CoV close to 1, as an exponential distribution would give."""
        return 0.5 <= self.cov <= 1.5


def summarize_idle(
    durations: np.ndarray, span: Optional[float] = None
) -> IdleStats:
    """Compute Table II statistics for a sample of idle durations.

    Parameters
    ----------
    durations:
        Idle interval lengths (seconds), all positive.
    span:
        Total observation time, for the idle fraction (optional).
    """
    durations = np.asarray(durations, dtype=float)
    if len(durations) == 0:
        raise ValueError("cannot summarise an empty idle sample")
    if np.any(durations <= 0):
        raise ValueError("idle durations must be positive")
    if span is not None and span <= 0:
        raise ValueError(f"span must be positive: {span}")
    mean = float(durations.mean())
    variance = float(durations.var())
    total = float(durations.sum())
    return IdleStats(
        count=len(durations),
        mean=mean,
        variance=variance,
        cov=float(np.sqrt(variance) / mean),
        total_idle=total,
        idle_fraction=None if span is None else min(1.0, total / span),
    )
