"""Autoregressive models of inter-arrival durations (paper Section V-B).

The paper's AR policy fits an AR(p) model

    X_t = mu + sum_i a_i (X_{t-i} - mu) + eps_t

to the sequence of request inter-arrival (idle interval) durations,
selecting ``p`` by Akaike's Information Criterion, then predicts the
length of the current idle interval from the previous ``p`` at the
moment the interval begins.  The paper notes AR(p) via Yule–Walker is
the only model cheap enough to fit "to the millions of samples that
need to be factored at the I/O level" — ACD and ARIMA were too slow —
so that is what we implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import solve_toeplitz

from repro.stats.autocorr import acf


@dataclass(frozen=True)
class ARModel:
    """A fitted AR(p) model."""

    mean: float
    coefficients: Tuple[float, ...]  # a_1 .. a_p
    noise_variance: float
    #: AIC of the fit (lower is better).
    aic: float
    n_samples: int

    @property
    def order(self) -> int:
        return len(self.coefficients)

    def predict(self, history: Sequence[float]) -> float:
        """One-step-ahead prediction given the most recent durations.

        ``history[-1]`` is the most recent complete interval.  Shorter
        histories are padded with the process mean.
        """
        history = np.asarray(history, dtype=float)
        prediction = self.mean
        for i, a in enumerate(self.coefficients, start=1):
            past = history[-i] if len(history) >= i else self.mean
            prediction += a * (past - self.mean)
        return float(prediction)

    def predict_series(self, x: np.ndarray) -> np.ndarray:
        """One-step-ahead predictions for every position in ``x``.

        ``out[t]`` predicts ``x[t]`` from ``x[t-p:t]`` (mean-padded at
        the start), vectorised for policy simulations over long traces.
        """
        x = np.asarray(x, dtype=float)
        centred = x - self.mean
        prediction = np.full(len(x), self.mean)
        for i, a in enumerate(self.coefficients, start=1):
            shifted = np.concatenate((np.zeros(i), centred[:-i] if i <= len(x) else []))
            shifted = shifted[: len(x)]
            prediction += a * shifted
        return prediction


def fit_ar(x: np.ndarray, order: int) -> ARModel:
    """Fit AR(``order``) by the Yule–Walker equations.

    Solves the Toeplitz system ``R a = r`` built from the sample ACF —
    O(n log n + p^2), which is what makes million-sample fits cheap.
    """
    x = np.asarray(x, dtype=float)
    if order < 1:
        raise ValueError(f"order must be >= 1: {order}")
    if len(x) <= order + 1:
        raise ValueError(
            f"need more than {order + 1} samples for AR({order}), got {len(x)}"
        )
    rho = acf(x, order)
    coefficients = solve_toeplitz((rho[:-1], rho[:-1]), rho[1:])
    variance = float(x.var())
    noise_variance = variance * float(1.0 - np.dot(coefficients, rho[1:]))
    noise_variance = max(noise_variance, np.finfo(float).tiny)
    n = len(x)
    aic = n * np.log(noise_variance) + 2.0 * (order + 1)
    return ARModel(
        mean=float(x.mean()),
        coefficients=tuple(float(a) for a in coefficients),
        noise_variance=noise_variance,
        aic=float(aic),
        n_samples=n,
    )


def select_ar_order(
    x: np.ndarray, max_order: int = 20, orders: Optional[Sequence[int]] = None
) -> ARModel:
    """Fit AR(p) for each candidate order and return the AIC minimiser."""
    x = np.asarray(x, dtype=float)
    if orders is None:
        limit = min(max_order, len(x) // 4)
        if limit < 1:
            raise ValueError(f"series too short for AR fitting: {len(x)}")
        orders = range(1, limit + 1)
    best: Optional[ARModel] = None
    for order in orders:
        model = fit_ar(x, order)
        if best is None or model.aic < best.aic:
            best = model
    assert best is not None  # orders is never empty here
    return best
