"""Statistical analysis of I/O workloads (paper Section V-A).

Implements, from scratch on numpy/scipy, the analyses the paper runs on
its trace collection:

* :mod:`repro.stats.idle` — idle-interval summary statistics (Table II);
* :mod:`repro.stats.periodicity` — ANOVA-based period detection (Fig. 9)
  and activity binning (Fig. 8);
* :mod:`repro.stats.autocorr` — autocorrelation function and Hurst
  exponent estimation;
* :mod:`repro.stats.ar` — Yule–Walker AR(p) fitting with AIC order
  selection (the Section V-B Auto-Regression policy's engine);
* :mod:`repro.stats.hazard` — conditional remaining-idle-time
  estimators (Fig. 11, 12, 13: the decreasing-hazard-rate evidence);
* :mod:`repro.stats.tails` — idle-time tail concentration (Fig. 10).
"""

from repro.stats.ar import ARModel, fit_ar, select_ar_order
from repro.stats.autocorr import acf, has_significant_autocorrelation, hurst_exponent
from repro.stats.hazard import (
    expected_remaining,
    fraction_intervals_longer,
    percentile_remaining,
    usable_fraction,
)
from repro.stats.idle import IdleStats, summarize_idle
from repro.stats.periodicity import PeriodResult, anova_period
from repro.stats.tails import tail_concentration

__all__ = [
    "ARModel",
    "IdleStats",
    "PeriodResult",
    "acf",
    "anova_period",
    "expected_remaining",
    "fit_ar",
    "fraction_intervals_longer",
    "has_significant_autocorrelation",
    "hurst_exponent",
    "percentile_remaining",
    "select_ar_order",
    "summarize_idle",
    "tail_concentration",
    "usable_fraction",
]
