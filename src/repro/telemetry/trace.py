"""Chrome trace-event JSON export.

Converts a :class:`~repro.telemetry.sink.Recorder` into the Trace Event
Format consumed by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer: a ``{"traceEvents": [...]}`` object whose
entries use microsecond timestamps.

Mapping from the simulator's blktrace-style lifecycle:

* each completed request becomes **two complete ("X") spans** on its
  source's track — ``wait <opcode>`` from queued to dispatched, and
  ``<opcode>`` from dispatched to completed, with the drive's
  seek/rotation/transfer breakdown in ``args``;
* scrub pass boundaries and fault lifecycle steps become **instant
  ("i") events**;
* scrub progress becomes a **counter ("C") track**, drawn by the viewer
  as a filled time series;
* sources ("foreground", "scrubber", ...) become named threads of one
  process, via metadata ("M") events.

Simulation seconds map to trace microseconds 1:1 in value (``ts = now *
1e6``), so one viewer microsecond equals one simulated microsecond.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

__all__ = [
    "recorder_events",
    "with_pid",
    "write_chrome_trace",
]

_US = 1e6  # simulation seconds -> trace microseconds


def recorder_events(
    recorder, pid: int = 0, process_name: str = "sim"
) -> List[dict]:
    """Flatten one recorder into a list of Chrome trace-event dicts."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    tids = {}

    def tid_of(source: str) -> int:
        tid = tids.get(source)
        if tid is None:
            tid = tids[source] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": source},
                }
            )
        return tid

    for (
        submit,
        dispatch,
        complete,
        opcode,
        lbn,
        sectors,
        priority,
        source,
        seek,
        rotation,
        transfer,
        cache_hit,
        status,
    ) in recorder.requests:
        tid = tid_of(source)
        args = {
            "lbn": lbn,
            "sectors": sectors,
            "priority": priority,
            "source": source,
        }
        events.append(
            {
                "name": f"wait {opcode}",
                "cat": "queue",
                "ph": "X",
                "ts": submit * _US,
                "dur": (dispatch - submit) * _US,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        events.append(
            {
                "name": opcode,
                "cat": "service",
                "ph": "X",
                "ts": dispatch * _US,
                "dur": (complete - dispatch) * _US,
                "pid": pid,
                "tid": tid,
                "args": {
                    **args,
                    "seek_s": seek,
                    "rotation_s": rotation,
                    "transfer_s": transfer,
                    "cache_hit": cache_hit,
                    "status": status,
                },
            }
        )

    for ts, category, name, args in recorder.instants:
        events.append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "p",
                "ts": ts * _US,
                "pid": pid,
                "tid": 0,
                "args": args or {},
            }
        )

    for ts, source, fraction in recorder.progress_samples:
        events.append(
            {
                "name": f"scrub progress ({source})",
                "ph": "C",
                "ts": ts * _US,
                "pid": pid,
                "args": {"fraction": round(fraction, 6)},
            }
        )
    return events


def with_pid(
    events: Iterable[dict], pid: int, process_name: Optional[str] = None
) -> List[dict]:
    """Re-home exported events onto process ``pid``.

    Used when merging traces from several sweep tasks into one file:
    each task exported with ``pid=0``; the merger gives every task its
    own process row (and optionally renames it).
    """
    rehomed = []
    for event in events:
        event = dict(event, pid=pid)
        if (
            process_name is not None
            and event.get("ph") == "M"
            and event.get("name") == "process_name"
        ):
            event["args"] = {"name": process_name}
        rehomed.append(event)
    return rehomed


def write_chrome_trace(
    destination: Union[str, IO[str]], events: List[dict]
) -> int:
    """Write ``events`` as a Chrome trace JSON object; returns the count.

    The output loads directly in Perfetto / ``chrome://tracing`` and
    round-trips through ``json.load``.
    """
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if hasattr(destination, "write"):
        json.dump(payload, destination)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    return len(events)
