"""Observability for the whole stack: tracing, metrics, exports.

The subsystem is modelled on Linux blktrace (whose queue -> dispatch ->
complete request lifecycle the paper's kernel scrubbing framework sits
on top of): instrumented layers call typed hooks on a
:class:`TelemetrySink`, and the shipped :class:`Recorder` turns those
hooks into

* **structured lifecycle events** — per-request service timelines with
  the drive's seek/rotation/transfer breakdown, scrub pass boundaries
  and progress, fault detection/remediation steps, engine run stats —
  exportable as Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``, :mod:`repro.telemetry.trace`);
* a **metrics registry** of counters, gauges and fixed-bucket log-scale
  streaming histograms (latency percentiles without sample retention,
  :mod:`repro.telemetry.metrics`), with deterministic snapshot merging
  for fleet-level summaries of parallel sweeps;
* **JSON Lines exports** of the request and error logs for offline
  post-processing (:mod:`repro.telemetry.export`).

The default is the :data:`NULL_SINK` (recording off), whose cost is one
attribute test per hook site — the simulation kernel's hot loop stays
untouched (see ``benchmarks/perf_telemetry.py``).  Recording never
perturbs a run: sinks only observe, so all determinism guarantees
(serial == parallel bit-identity included) hold with telemetry on or
off.

Quickstart::

    from repro.telemetry import Recorder, format_table, write_chrome_trace

    recorder = Recorder()
    sim = Simulation(telemetry=recorder)
    ...                                   # build devices, scrub, run
    print(format_table(recorder.metrics.snapshot(), title="run"))
    write_chrome_trace("trace.json", recorder.chrome_events())
"""

from repro.telemetry.export import (
    error_log_records,
    request_log_records,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_table,
    merge_snapshots,
)
from repro.telemetry.sink import (
    NULL_SINK,
    NullSink,
    Recorder,
    TelemetrySink,
    active_sink,
)
from repro.telemetry.trace import recorder_events, with_pid, write_chrome_trace

__all__ = [
    "NULL_SINK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "Recorder",
    "TelemetrySink",
    "active_sink",
    "error_log_records",
    "format_table",
    "merge_snapshots",
    "recorder_events",
    "request_log_records",
    "with_pid",
    "write_chrome_trace",
    "write_jsonl",
]
