"""Streaming metrics: counters, gauges and log-scale histograms.

A :class:`MetricsRegistry` is a flat namespace of named metrics that
simulation components update as they run.  Everything here is built for
two properties the rest of the telemetry layer leans on:

* **No sample retention.**  :class:`Histogram` keeps fixed, log-spaced
  buckets (a coarse HdrHistogram), so latency percentiles over millions
  of requests cost a few hundred integers, not a few hundred megabytes.
* **Deterministic snapshots and merges.**  A snapshot is a plain nested
  dict of ints/floats; :func:`merge_snapshots` folds per-task snapshots
  into a fleet-level summary in *input* order, so a parallel sweep
  merged task-by-task is bit-identical to the same sweep run serially
  (counters and histogram buckets add; gauges take the maximum, the
  only order-independent choice for point-in-time values).

Nothing in this module imports from the simulator, so it can be used
from worker processes and analysis scripts alike.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_table",
    "merge_snapshots",
]


class Counter:
    """A monotonically increasing sum (requests, bytes, events...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, progress fraction...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Histogram bucket layout: geometric buckets over [LOW, HIGH) seconds
#: plus an underflow and an overflow bucket.  Four buckets per decade
#: resolve percentiles to ~1.78x, plenty for service-time shapes.
_HIST_LOW = 1e-7
_HIST_HIGH = 1e4
_HIST_PER_DECADE = 4
_HIST_DECADES = int(round(math.log10(_HIST_HIGH / _HIST_LOW)))
_HIST_BUCKETS = _HIST_DECADES * _HIST_PER_DECADE
_LOG_LOW = math.log10(_HIST_LOW)


class Histogram:
    """Fixed-bucket log-scale streaming histogram.

    ``observe`` is O(1) and allocation-free; percentiles come from the
    bucket counts (reported as the bucket's geometric upper bound, a
    deterministic over-estimate of at most one bucket width).
    """

    __slots__ = ("name", "count", "total", "min", "max", "counts")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        # [underflow, bucket 0 .. N-1, overflow]
        self.counts: List[int] = [0] * (_HIST_BUCKETS + 2)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < _HIST_LOW:
            index = 0
        elif value >= _HIST_HIGH:
            index = _HIST_BUCKETS + 1
        else:
            index = 1 + int((math.log10(value) - _LOG_LOW) * _HIST_PER_DECADE)
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_bound(index: int) -> float:
        """Upper value bound of bucket ``index`` of :attr:`counts`."""
        if index <= 0:
            return _HIST_LOW
        if index >= _HIST_BUCKETS + 1:
            return math.inf
        return 10.0 ** (_LOG_LOW + index / _HIST_PER_DECADE)

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) from the buckets."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                bound = self.bucket_bound(index)
                return min(bound, self.max) if math.isfinite(bound) else self.max
        return self.max


class MetricsRegistry:
    """Named counters, gauges and histograms with create-on-first-use."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def snapshot(self) -> dict:
        """A plain-dict copy of every metric (JSON- and pickle-safe)."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else 0.0,
                    "max": metric.max if metric.count else 0.0,
                    "counts": list(metric.counts),
                }
                for name, metric in sorted(self.histograms.items())
            },
        }


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-task metric snapshots into one fleet-level summary.

    Counters and histogram buckets add, gauges keep the maximum.  The
    fold visits ``snapshots`` in iteration order and every operation is
    order-independent, so a fleet summary built from a parallel sweep's
    results (which :class:`~repro.parallel.runner.SweepRunner` returns
    in input order) is bit-identical to the serial one.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in snapshots:
        if snapshot is None:
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in snapshot.get("histograms", {}).items():
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                    "counts": list(hist["counts"]),
                }
                continue
            had_samples = into["count"] > 0
            into["count"] += hist["count"]
            into["sum"] += hist["sum"]
            if hist["count"]:
                if had_samples:
                    into["min"] = min(into["min"], hist["min"])
                    into["max"] = max(into["max"], hist["max"])
                else:
                    into["min"] = hist["min"]
                    into["max"] = hist["max"]
            into["counts"] = [
                a + b for a, b in zip(into["counts"], hist["counts"])
            ]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def _snapshot_percentile(hist: dict, q: float) -> float:
    """Percentile of a snapshot histogram (same rule as the live one)."""
    count = hist["count"]
    if count == 0:
        return 0.0
    rank = q * count
    seen = 0
    for index, bucket in enumerate(hist["counts"]):
        seen += bucket
        if seen >= rank and bucket:
            bound = Histogram.bucket_bound(index)
            return min(bound, hist["max"]) if math.isfinite(bound) else hist["max"]
    return hist["max"]


def format_table(snapshot: dict, title: Optional[str] = None) -> str:
    """Render a metrics snapshot as a plain-text summary table."""
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:>14,}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:>14.6g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        width = max(len(name) for name in histograms)
        lines.append(
            f"histograms:{'':<{max(0, width - 7)}}"
            f"{'count':>10}{'mean':>11}{'p50':>11}{'p95':>11}{'p99':>11}{'max':>11}"
        )
        for name, hist in histograms.items():
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            lines.append(
                f"  {name:<{width}} {count:>9,}"
                f"{mean:>11.3g}"
                f"{_snapshot_percentile(hist, 0.50):>11.3g}"
                f"{_snapshot_percentile(hist, 0.95):>11.3g}"
                f"{_snapshot_percentile(hist, 0.99):>11.3g}"
                f"{hist['max']:>11.3g}"
            )
    if not (counters or gauges or histograms):
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
