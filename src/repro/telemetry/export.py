"""Offline export: request and error logs as JSON Lines.

One JSON object per line, so detection runs can be post-processed with
standard streaming tools (``jq``, pandas ``read_json(lines=True)``,
``grep``) without loading a whole run into memory.  The shared writer
:func:`write_jsonl` takes any iterable of dicts; the two adapters below
flatten the simulator's in-memory logs:

* :func:`request_log_records` — one record per completed I/O in a
  :class:`~repro.sched.device.RequestLog`, with blktrace-style
  queue/dispatch/complete timestamps and the drive's service breakdown;
* :func:`error_log_records` — one record per
  :class:`~repro.faults.log.ErrorRecord` lifecycle step.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import IO, Dict, Iterable, Iterator, Union

__all__ = [
    "error_log_records",
    "request_log_records",
    "write_jsonl",
]


def write_jsonl(
    destination: Union[str, IO[str]], records: Iterable[Dict]
) -> int:
    """Write ``records`` one-JSON-object-per-line; returns the count.

    Keys are written in insertion order (the adapters emit a stable
    order), so identical runs produce byte-identical files.

    Path destinations are crash-safe: records stream into a temp file
    in the same directory, atomically renamed over the final path only
    once every record is written and flushed — a SIGKILL mid-export
    leaves the previous file (or no file), never a torn one.
    """
    count = 0
    if hasattr(destination, "write"):
        for record in records:
            destination.write(json.dumps(record) + "\n")
            count += 1
        return count
    directory = os.path.dirname(os.path.abspath(destination)) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".jsonl-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, destination)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return count


def request_log_records(log) -> Iterator[Dict]:
    """Flatten a :class:`~repro.sched.device.RequestLog` to dicts."""
    for request in log.requests():
        breakdown = request.breakdown
        record: Dict = {
            "submit": request.submit_time,
            "dispatch": request.dispatch_time,
            "complete": request.complete_time,
            "opcode": request.command.opcode.value,
            "lbn": request.command.lbn,
            "sectors": request.command.sectors,
            "bytes": request.bytes,
            "priority": request.priority.name,
            "source": request.source,
        }
        if breakdown is not None:
            record.update(
                status=breakdown.status.name,
                cache_hit=breakdown.cache_hit,
                seek_s=breakdown.seek,
                rotation_s=breakdown.rotation,
                transfer_s=breakdown.transfer,
            )
            if breakdown.error_lbn is not None:
                record["error_lbn"] = breakdown.error_lbn
        yield record


def error_log_records(log) -> Iterator[Dict]:
    """Flatten a :class:`~repro.faults.log.ErrorLog` to dicts."""
    for record in log.records:
        row: Dict = {
            "time": record.time,
            "kind": record.kind.value,
            "lbn": record.lbn,
        }
        if record.source:
            row["source"] = record.source
        if record.opcode:
            row["opcode"] = record.opcode
        row["ok"] = record.ok
        yield row
