"""Telemetry sinks: the hook protocol, the null sink, and the recorder.

Modelled on Linux blktrace's request lifecycle (queue -> dispatch ->
complete): every instrumented layer calls a small set of typed hooks on
a sink.  Two implementations ship:

* :class:`NullSink` — ``enabled`` is ``False`` and every hook is a
  no-op.  Instrumented components check ``enabled`` *once* at
  construction (or once per ``run()`` for the engine) and skip the
  calls entirely, so a disabled sink costs one attribute test on cold
  paths and nothing at all in the kernel's hot loop.
* :class:`Recorder` — appends lifecycle events to in-memory lists and
  updates a :class:`~repro.telemetry.metrics.MetricsRegistry`.

Determinism contract: a sink only *observes*.  It must never touch a
random stream, schedule an event, or mutate simulation state — with
recording on or off, a simulation pops exactly the same events in
exactly the same order.  The one non-deterministic input, wall-clock
time, is dropped by default (``Recorder(wall_time=False)``) so recorded
metric snapshots stay bit-identical across runs and across serial vs
parallel execution.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["NULL_SINK", "NullSink", "Recorder", "TelemetrySink", "active_sink"]


class TelemetrySink:
    """The hook protocol.  Base implementation: everything is a no-op.

    Subclasses set :attr:`enabled` to ``True`` and override the hooks
    they care about.  Components must guard hook calls with
    ``if sink is not None`` after normalising through
    :func:`active_sink`, so a no-op base method is a safety net, not a
    hot path.
    """

    #: Disabled sinks are skipped entirely by instrumented components.
    enabled = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    # -- request lifecycle (blktrace Q/D/C) --------------------------------
    def request_queued(self, now: float, request: Any) -> None:
        """A request entered the scheduler queue."""

    def request_dispatched(self, now: float, request: Any) -> None:
        """The dispatcher handed a request to the drive."""

    def request_completed(self, now: float, request: Any) -> None:
        """A request completed; ``request`` carries its timestamps and
        the drive's :class:`~repro.disk.drive.ServiceBreakdown`."""

    # -- drive ---------------------------------------------------------------
    def drive_serviced(self, command: Any, breakdown: Any) -> None:
        """The drive serviced one command (seek/rotation/transfer split)."""

    # -- scrubbing ------------------------------------------------------------
    def scrub_pass_started(self, now: float, source: str, index: int) -> None:
        """A full-disk scrub pass began."""

    def scrub_pass_completed(
        self, now: float, source: str, index: int, bytes_scrubbed: int
    ) -> None:
        """A full-disk scrub pass finished."""

    def scrub_progress(self, now: float, source: str, fraction: float) -> None:
        """Within-pass progress sample (0..1), one per scrub extent."""

    # -- faults ------------------------------------------------------------
    def fault_event(
        self, now: float, kind: str, lbn: int, **args: Any
    ) -> None:
        """A fault detection/remediation lifecycle step."""

    # -- engine -------------------------------------------------------------
    def engine_run(
        self, events: int, sim_time: float, wall_seconds: Optional[float]
    ) -> None:
        """One :meth:`Simulation.run` finished: events popped, final
        clock, and (when measured) wall-clock duration."""

    # -- generic ------------------------------------------------------------
    def instant(
        self, now: float, category: str, name: str, args: Optional[dict] = None
    ) -> None:
        """A point-in-time event with no duration."""


class NullSink(TelemetrySink):
    """The default sink: recording disabled, near-zero overhead."""

    enabled = False


#: Shared disabled sink; ``telemetry=None`` and ``telemetry=NULL_SINK``
#: are equivalent everywhere.
NULL_SINK = NullSink()


def active_sink(sink: Optional[TelemetrySink]) -> Optional[TelemetrySink]:
    """Normalise a sink argument: ``None`` unless recording is enabled.

    Components store the result once and guard every hook call with a
    single ``is not None`` test, so the disabled case pays no method
    dispatch at all.
    """
    if sink is not None and sink.enabled:
        return sink
    return None


class Recorder(TelemetrySink):
    """In-memory sink: structured lifecycle events plus a metrics registry.

    Parameters
    ----------
    wall_time:
        Record wall-clock engine statistics (``engine.wall_seconds``,
        ``engine.events_per_wall_second``).  Off by default because
        wall time is the only non-deterministic value in the registry;
        leave it off when snapshots must be bit-identical across runs
        (the serial == parallel sweep guarantee).
    capture_requests:
        Keep a per-request event tuple for trace export.  Disable to
        record metrics only (long runs, bounded memory).
    """

    enabled = True

    def __init__(
        self, wall_time: bool = False, capture_requests: bool = True
    ) -> None:
        super().__init__()
        self.wall_time = wall_time
        self.capture_requests = capture_requests
        #: (submit, dispatch, complete, opcode, lbn, sectors, priority,
        #:  source, seek, rotation, transfer, cache_hit, status)
        self.requests: List[Tuple] = []
        #: (ts, category, name, args-or-None) point events.
        self.instants: List[Tuple] = []
        #: (ts, source, fraction) scrub-progress counter samples.
        self.progress_samples: List[Tuple] = []

    # -- request lifecycle ---------------------------------------------------
    def request_queued(self, now: float, request: Any) -> None:
        self.metrics.counter("device.submitted").inc()

    def request_dispatched(self, now: float, request: Any) -> None:
        self.metrics.counter("device.dispatched").inc()

    def request_completed(self, now: float, request: Any) -> None:
        metrics = self.metrics
        metrics.counter("device.completed").inc()
        metrics.counter("device.bytes").inc(request.bytes)
        breakdown = request.breakdown
        if breakdown is not None and not breakdown.ok:
            metrics.counter("device.media_errors").inc()
        metrics.histogram("device.response_time_s").observe(
            request.response_time
        )
        metrics.histogram("device.wait_time_s").observe(request.wait_time)
        metrics.histogram("device.service_time_s").observe(
            request.service_time
        )
        if self.capture_requests:
            command = request.command
            self.requests.append(
                (
                    request.submit_time,
                    request.dispatch_time,
                    request.complete_time,
                    command.opcode.value,
                    command.lbn,
                    command.sectors,
                    request.priority.name,
                    request.source,
                    breakdown.seek if breakdown is not None else 0.0,
                    breakdown.rotation if breakdown is not None else 0.0,
                    breakdown.transfer if breakdown is not None else 0.0,
                    breakdown.cache_hit if breakdown is not None else False,
                    breakdown.status.name if breakdown is not None else "GOOD",
                )
            )

    # -- drive ---------------------------------------------------------------
    def drive_serviced(self, command: Any, breakdown: Any) -> None:
        metrics = self.metrics
        metrics.counter("drive.commands").inc()
        if breakdown.cache_hit:
            metrics.counter("drive.cache_hits").inc()
        else:
            metrics.histogram("drive.seek_s").observe(breakdown.seek)
            metrics.histogram("drive.rotation_s").observe(breakdown.rotation)
            metrics.histogram("drive.transfer_s").observe(breakdown.transfer)
        if not breakdown.ok:
            metrics.counter("drive.media_errors").inc()

    # -- scrubbing ------------------------------------------------------------
    def scrub_pass_started(self, now: float, source: str, index: int) -> None:
        self.metrics.counter("scrub.passes_started").inc()
        self.instants.append(
            (now, "scrub", "pass_started", {"source": source, "pass": index})
        )

    def scrub_pass_completed(
        self, now: float, source: str, index: int, bytes_scrubbed: int
    ) -> None:
        self.metrics.counter("scrub.passes_completed").inc()
        self.instants.append(
            (
                now,
                "scrub",
                "pass_completed",
                {"source": source, "pass": index, "bytes": bytes_scrubbed},
            )
        )

    def scrub_progress(self, now: float, source: str, fraction: float) -> None:
        self.metrics.counter("scrub.extents").inc()
        self.metrics.gauge("scrub.progress").set(fraction)
        if self.capture_requests:
            self.progress_samples.append((now, source, fraction))

    # -- faults ------------------------------------------------------------
    def fault_event(self, now: float, kind: str, lbn: int, **args: Any) -> None:
        self.metrics.counter(f"faults.{kind}").inc()
        payload: Dict[str, Any] = {"lbn": lbn}
        payload.update(args)
        self.instants.append((now, "faults", kind, payload))

    # -- engine -------------------------------------------------------------
    def engine_run(
        self, events: int, sim_time: float, wall_seconds: Optional[float]
    ) -> None:
        metrics = self.metrics
        metrics.counter("engine.runs").inc()
        metrics.counter("engine.events").inc(events)
        metrics.gauge("engine.sim_time_s").set(sim_time)
        if self.wall_time and wall_seconds is not None:
            wall = metrics.gauge("engine.wall_seconds")
            wall.set(wall.value + wall_seconds)
            total_wall = wall.value
            if total_wall > 0:
                metrics.gauge("engine.events_per_wall_second").set(
                    metrics.counter("engine.events").value / total_wall
                )

    # -- generic ------------------------------------------------------------
    def instant(
        self, now: float, category: str, name: str, args: Optional[dict] = None
    ) -> None:
        self.metrics.counter(f"{category}.{name}").inc()
        self.instants.append((now, category, name, args))

    # -- export --------------------------------------------------------------
    def chrome_events(self, pid: int = 0, process_name: str = "sim") -> List[dict]:
        """This recording as Chrome trace-event dicts (see
        :mod:`repro.telemetry.trace`)."""
        from repro.telemetry.trace import recorder_events

        return recorder_events(self, pid=pid, process_name=process_name)

    def export(self, pid: int = 0) -> dict:
        """Picklable bundle: metric snapshot plus Chrome trace events.

        This is what sweep tasks attach to their results so a parallel
        run can be merged into one fleet summary / one trace file.
        """
        return {
            "metrics": self.metrics.snapshot(),
            "events": self.chrome_events(pid=pid),
        }
