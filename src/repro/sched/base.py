"""Scheduler interface shared by NOOP, Deadline and CFQ.

A scheduler is a passive policy object driven by the
:class:`~repro.sched.device.BlockDevice` dispatcher:

* :meth:`add` — a request was submitted;
* :meth:`select` — pick the next request to dispatch, or report when to
  re-evaluate (for time-gated policies like CFQ's Idle class);
* :meth:`on_dispatch` / :meth:`on_complete` — lifecycle notifications
  used for idle accounting and head-position tracking.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sched.request import IORequest

#: ``select`` result: (request or None, absolute re-check time or None).
Selection = Tuple[Optional[IORequest], Optional[float]]


class IOSchedulerBase:
    """Base class; concrete schedulers override the four hooks."""

    name = "base"

    def add(self, request: IORequest, now: float) -> None:
        raise NotImplementedError

    def select(self, now: float) -> Selection:
        """Choose the next request.

        Returns ``(request, None)`` to dispatch, ``(None, t)`` to sleep
        until time ``t`` (or an earlier wakeup), or ``(None, None)`` to
        sleep until the next submission/completion.
        """
        raise NotImplementedError

    def on_dispatch(self, request: IORequest, now: float) -> None:
        """Called when ``request`` goes to the drive."""

    def on_complete(self, request: IORequest, now: float) -> None:
        """Called when ``request`` finishes at the drive."""

    def __len__(self) -> int:
        raise NotImplementedError
