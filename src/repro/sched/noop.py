"""NOOP scheduler: plain FIFO, no sorting, no prioritisation.

Useful as a baseline and as the simplest correct scheduler for unit
tests of the block-device plumbing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sched.base import IOSchedulerBase, Selection
from repro.sched.request import IORequest


class NoopScheduler(IOSchedulerBase):
    """Dispatch strictly in submission order."""

    name = "noop"

    def __init__(self) -> None:
        self._queue: Deque[IORequest] = deque()

    def add(self, request: IORequest, now: float) -> None:
        self._queue.append(request)

    def select(self, now: float) -> Selection:
        if self._queue:
            return self._queue.popleft(), None
        return None, None

    def __len__(self) -> int:
        return len(self._queue)
