"""C-LOOK elevator ordering for a single request queue.

The classic elevator: serve requests in ascending LBN order starting
from the current head position; when the highest-LBN pending request
has been passed, sweep back to the lowest.  This is the sort order CFQ
applies within a queue; the paper's kernel scrubber disguises VERIFY
requests as reads precisely so they can participate in it.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.sched.request import IORequest


class ElevatorQueue:
    """Requests kept sorted by LBN, served C-LOOK style."""

    def __init__(self) -> None:
        self._lbns: List[int] = []
        self._requests: List[IORequest] = []

    def __len__(self) -> int:
        return len(self._requests)

    def __bool__(self) -> bool:
        return bool(self._requests)

    def add(self, request: IORequest) -> None:
        """Insert ``request`` in LBN order (stable for equal LBNs)."""
        index = bisect.bisect_right(self._lbns, request.command.lbn)
        self._lbns.insert(index, request.command.lbn)
        self._requests.insert(index, request)

    def peek(self, position: int) -> Optional[IORequest]:
        """The request the elevator would serve next from ``position``."""
        if not self._requests:
            return None
        index = bisect.bisect_left(self._lbns, position)
        if index == len(self._requests):
            index = 0  # C-LOOK wrap to the lowest LBN
        return self._requests[index]

    def pop(self, position: int) -> Optional[IORequest]:
        """Remove and return the next request in C-LOOK order."""
        if not self._requests:
            return None
        index = bisect.bisect_left(self._lbns, position)
        if index == len(self._requests):
            index = 0
        self._lbns.pop(index)
        return self._requests.pop(index)

    def remove(self, request: IORequest) -> None:
        """Remove a specific queued request."""
        for index, queued in enumerate(self._requests):
            if queued is request:
                self._lbns.pop(index)
                self._requests.pop(index)
                return
        raise ValueError(f"{request!r} is not queued")

    def oldest(self) -> Optional[IORequest]:
        """The queued request with the smallest submission sequence."""
        if not self._requests:
            return None
        return min(self._requests, key=lambda r: r.seq)

    def requests(self) -> List[IORequest]:
        """Snapshot in LBN order."""
        return list(self._requests)
