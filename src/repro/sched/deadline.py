"""Deadline scheduler: elevator order with per-request expiry.

A simplified version of the Linux deadline scheduler: requests are
served in C-LOOK order, but each carries a deadline (``read_expire`` /
``write_expire`` after submission); when the oldest request has
expired, the elevator jumps to it.  Included as an ablation baseline —
it has no prioritisation, so it cannot protect foreground traffic from
a scrubber, which is the paper's point about scheduler support.
"""

from __future__ import annotations

from repro.disk.commands import Opcode
from repro.sched.base import IOSchedulerBase, Selection
from repro.sched.elevator import ElevatorQueue
from repro.sched.request import IORequest


class DeadlineScheduler(IOSchedulerBase):
    """C-LOOK with expiry-driven jumps."""

    name = "deadline"

    def __init__(self, read_expire: float = 0.5, write_expire: float = 5.0) -> None:
        if read_expire <= 0 or write_expire <= 0:
            raise ValueError("expiry times must be positive")
        self.read_expire = read_expire
        self.write_expire = write_expire
        self._elevator = ElevatorQueue()
        self._deadlines = {}
        self._position = 0

    def add(self, request: IORequest, now: float) -> None:
        expire = (
            self.write_expire
            if request.command.opcode is Opcode.WRITE
            else self.read_expire
        )
        self._deadlines[request] = now + expire
        self._elevator.add(request)

    def select(self, now: float) -> Selection:
        if not self._elevator:
            return None, None
        oldest = self._elevator.oldest()
        if self._deadlines[oldest] <= now:
            choice = oldest
            self._elevator.remove(oldest)
        else:
            choice = self._elevator.pop(self._position)
        del self._deadlines[choice]
        return choice, None

    def on_dispatch(self, request: IORequest, now: float) -> None:
        self._position = request.command.end_lbn

    def __len__(self) -> int:
        return len(self._elevator)
