"""I/O scheduler substrate.

Models the Linux 2.6.35 block layer pieces the paper depends on:

* :class:`~repro.sched.request.IORequest` — a block request with a
  priority class and an optional *soft barrier* flag.  User-level
  scrubbers issue ``VERIFY`` via ``ioctl``, which the kernel flags as a
  soft barrier: it cannot be sorted or merged and pins queue order
  (Section III-C).  The kernel scrubber instead disguises its verifies
  as reads, so they participate in normal scheduling.
* :class:`~repro.sched.cfq.CFQScheduler` — a CFQ-like scheduler with
  RT/BE/Idle classes, Idle-class dispatch gated on the disk having been
  free of foreground traffic for ``idle_gate`` seconds (Section III-B),
  and BE slice behaviour that reproduces the foreground starvation the
  paper observes for same-priority back-to-back scrubbing.
* :class:`~repro.sched.noop.NoopScheduler` and
  :class:`~repro.sched.deadline.DeadlineScheduler` — baselines.
* :class:`~repro.sched.device.BlockDevice` — binds a simulation, a
  drive and a scheduler; collects a complete request log.
"""

from repro.sched.cfq import CFQScheduler
from repro.sched.deadline import DeadlineScheduler
from repro.sched.device import BlockDevice, RequestLog
from repro.sched.elevator import ElevatorQueue
from repro.sched.noop import NoopScheduler
from repro.sched.request import IORequest, PriorityClass

__all__ = [
    "BlockDevice",
    "CFQScheduler",
    "DeadlineScheduler",
    "ElevatorQueue",
    "IORequest",
    "NoopScheduler",
    "PriorityClass",
    "RequestLog",
]
