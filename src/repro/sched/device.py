"""The block device: simulation glue between workloads, scheduler and drive.

:class:`BlockDevice` owns a dispatcher process that repeatedly asks the
scheduler for the next request, runs it on the (single-server) drive,
and fires the request's completion event.  Every completed request is
appended to a :class:`RequestLog` for analysis — the logs are the raw
material for all of the paper's throughput and response-time figures.

When the owning simulation carries an enabled telemetry sink
(``sim.telemetry``), the device reports the blktrace-style lifecycle of
every request to it — queued at :meth:`BlockDevice.submit`, dispatched
when the dispatcher hands it to the drive, completed with the drive's
service breakdown — and installs the sink on the drive so per-command
mechanics are metered too.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional

import numpy as np

from repro.disk.drive import Drive
from repro.sched.base import IOSchedulerBase
from repro.sched.request import IORequest
from repro.sim import AnyOf, Event, ReusableTimeout, Simulation


class RequestLog:
    """Completed-request archive with aggregate accessors.

    Parameters
    ----------
    max_records:
        ``None`` (default) keeps every completed request, the historical
        behaviour.  A positive value switches to a ring buffer holding
        the most recent ``max_records`` requests — long trace-replay
        runs stay bounded in memory; :attr:`dropped` counts evictions.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records}")
        self.max_records = max_records
        self._records = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        #: Requests evicted by the ring buffer (0 in unbounded mode).
        self.dropped = 0

    def add(self, request: IORequest) -> None:
        if self.max_records is not None and len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append(request)

    def __len__(self) -> int:
        return len(self._records)

    def requests(self, source: Optional[str] = None) -> Iterable[IORequest]:
        """All completed requests, optionally filtered by source."""
        if source is None:
            return list(self._records)
        return [r for r in self._records if r.source == source]

    def response_times(self, source: Optional[str] = None) -> np.ndarray:
        return np.array(
            [r.response_time for r in self.requests(source)], dtype=float
        )

    def wait_times(self, source: Optional[str] = None) -> np.ndarray:
        return np.array([r.wait_time for r in self.requests(source)], dtype=float)

    def bytes_completed(self, source: Optional[str] = None) -> int:
        return sum(r.bytes for r in self.requests(source))

    def throughput(self, duration: float, source: Optional[str] = None) -> float:
        """Mean completed bytes/second over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        return self.bytes_completed(source) / duration

    def count(self, source: Optional[str] = None) -> int:
        return len(self.requests(source)) if source else len(self._records)

    def errors(self, source: Optional[str] = None) -> List[IORequest]:
        """Completed requests the drive failed with ``MEDIUM_ERROR``."""
        return [r for r in self.requests(source) if r.failed]


class BlockDevice:
    """A drive fronted by an I/O scheduler inside a simulation.

    Parameters
    ----------
    sim:
        The owning simulation.
    drive:
        The drive timing model (single request at a time).
    scheduler:
        Queueing/dispatch policy.
    """

    def __init__(
        self,
        sim: Simulation,
        drive: Drive,
        scheduler: IOSchedulerBase,
        max_log_records: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.drive = drive
        self.scheduler = scheduler
        self.log = RequestLog(max_records=max_log_records)
        #: Enabled telemetry sink from the simulation, or ``None``; the
        #: single ``is not None`` guard keeps disabled telemetry free.
        sink = sim.telemetry
        self.telemetry = sink if sink is not None and sink.enabled else None
        if self.telemetry is not None and drive.telemetry is None:
            drive.telemetry = self.telemetry
        #: Callables ``(kind, request, now)`` invoked on "submit" and
        #: "complete" — used by self-scheduling components (e.g. the
        #: Waiting scrubber) to watch foreground activity.
        self.observers: List = []
        self.busy = False
        self.busy_since: Optional[float] = None
        self.total_busy_time = 0.0
        self._wakeup: Event = sim.event()
        #: Pooled idle-recheck timer for the dispatcher's AnyOf wait.  A
        #: timer that lost the race to ``_wakeup`` is still in the heap
        #: (not processed) and must not be re-armed; the ``.processed``
        #: guard falls back to a fresh Timeout for that wait.
        self._recheck = ReusableTimeout(sim)
        self._dispatcher_proc = sim.process(self._dispatcher())

    # -- public API ------------------------------------------------------------
    def submit(self, request: IORequest) -> Event:
        """Queue ``request``; returns its completion event."""
        if request.submit_time is not None:
            raise ValueError(f"{request!r} was already submitted")
        request.stamp_submit(self.sim.now)
        request.completion = self.sim.event()
        self.scheduler.add(request, self.sim.now)
        if self.telemetry is not None:
            self.telemetry.request_queued(self.sim.now, request)
        for observer in self.observers:
            observer("submit", request, self.sim.now)
        self._kick()
        return request.completion

    @property
    def queued(self) -> int:
        """Requests waiting in the scheduler (excludes the one in flight)."""
        return len(self.scheduler)

    def utilisation(self, duration: float) -> float:
        """Fraction of ``duration`` the drive spent servicing requests."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration}")
        busy = self.total_busy_time
        if self.busy and self.busy_since is not None:
            busy += self.sim.now - self.busy_since
        return busy / duration

    # -- dispatcher ----------------------------------------------------------------
    def _kick(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _dispatcher(self):
        sim = self.sim
        while True:
            request, recheck = self.scheduler.select(sim.now)
            if request is None:
                if recheck is not None and recheck <= sim.now:
                    raise RuntimeError(
                        f"scheduler {self.scheduler.name} asked to re-check "
                        f"at {recheck} which is not in the future ({sim.now})"
                    )
                if recheck is None:
                    yield self._wakeup
                else:
                    timer = self._recheck
                    wait = recheck - sim.now
                    yield AnyOf(
                        sim,
                        [
                            timer.arm(wait)
                            if timer.processed
                            else sim.timeout(wait),
                            self._wakeup,
                        ],
                    )
                if self._wakeup.triggered:
                    self._wakeup = sim.event()
                continue

            request.dispatch_time = sim.now
            self.scheduler.on_dispatch(request, sim.now)
            if self.telemetry is not None:
                self.telemetry.request_dispatched(sim.now, request)
            breakdown = self.drive.service(request.command, sim.now)
            self.busy = True
            self.busy_since = sim.now
            yield sim.timeout(breakdown.finish - sim.now)
            self.busy = False
            self.total_busy_time += sim.now - self.busy_since
            self.busy_since = None

            request.complete_time = sim.now
            request.breakdown = breakdown
            if breakdown.error_lbn is not None and self.drive.faults is not None:
                # Attribute the detection to the submitting stream: this
                # is where "found by the scrubber" vs "found the hard
                # way, by a foreground read" is decided.
                self.drive.faults.log.record_media_error(
                    sim.now,
                    breakdown.error_lbn,
                    source=request.source,
                    opcode=request.command.opcode.value,
                )
            self.scheduler.on_complete(request, sim.now)
            self.log.add(request)
            if self.telemetry is not None:
                self.telemetry.request_completed(sim.now, request)
            for observer in self.observers:
                observer("complete", request, sim.now)
            request.completion.succeed(request)
