"""A CFQ-like I/O scheduler.

Models the aspects of the Linux 2.6.35 Completely Fair Queueing
scheduler that the paper's experiments exercise:

* **Priority classes** — RT > BE > Idle.  The Idle class is dispatched
  only after the disk has seen no foreground (RT/BE) activity for
  ``idle_gate`` seconds (Section III-B reports 10 ms).
* **BE time slices** — each submitting source owns the disk for
  ``slice_sync`` seconds at a time; an owner whose queue goes empty is
  *anticipated* for ``slice_idle`` seconds before the slice is handed
  over, which is what lets a closed-loop sequential stream keep the
  disk across its sub-millisecond think gaps.
* **Soft barriers** — pass-through commands (user-level ``ioctl``
  VERIFYs) are never sorted or merged and pin queue order: requests
  submitted after a barrier cannot overtake it, and the barrier itself
  ignores priority classes entirely.  This reproduces the paper's
  observation that I/O priorities have no effect on a user-level
  scrubber (Fig. 3).

No request preemption is modelled (a dispatched request runs to
completion), which is also how the disk itself behaves; a foreground
request arriving mid-scrub simply collides, exactly the paper's notion
of *collision*.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.sched.base import IOSchedulerBase, Selection
from repro.sched.elevator import ElevatorQueue
from repro.sched.request import IORequest, PriorityClass


class CFQScheduler(IOSchedulerBase):
    """CFQ model with idle-class gating, BE slices and soft barriers.

    Parameters
    ----------
    idle_gate:
        Foreground quiescence (seconds) required before Idle-class
        requests may dispatch.  The Linux default the paper reports is
        10 ms; the paper also observes that the *measured* behaviour of
        CFQ corresponded to a much smaller effective gate, which can be
        reproduced by passing a value near zero.
    slice_sync:
        Length of a BE source's time slice.
    slice_idle:
        How long an empty BE owner queue is anticipated before losing
        its slice.
    """

    name = "cfq"

    def __init__(
        self,
        idle_gate: float = 0.010,
        slice_sync: float = 0.100,
        slice_idle: float = 0.008,
    ) -> None:
        if idle_gate < 0 or slice_sync <= 0 or slice_idle < 0:
            raise ValueError("scheduler time parameters must be non-negative")
        self.idle_gate = idle_gate
        self.slice_sync = slice_sync
        self.slice_idle = slice_idle

        self._rt = ElevatorQueue()
        self._be: Dict[str, ElevatorQueue] = {}
        self._be_rr: Deque[str] = deque()
        self._idle = ElevatorQueue()
        self._barriers: Deque[IORequest] = deque()

        self._position = 0
        self._last_fg_activity = float("-inf")
        self._be_owner: Optional[str] = None
        self._be_slice_end = float("-inf")
        self._be_owner_last_activity = float("-inf")

    # -- submission ------------------------------------------------------------
    def add(self, request: IORequest, now: float) -> None:
        if request.soft_barrier:
            self._barriers.append(request)
            self._last_fg_activity = max(self._last_fg_activity, now)
            return
        if request.priority is PriorityClass.RT:
            self._rt.add(request)
        elif request.priority is PriorityClass.BE:
            queue = self._be.get(request.source)
            if queue is None:
                queue = self._be[request.source] = ElevatorQueue()
            if request.source not in self._be_rr:
                self._be_rr.append(request.source)
            queue.add(request)
            if request.source == self._be_owner:
                self._be_owner_last_activity = now
        else:
            self._idle.add(request)
        if request.priority is not PriorityClass.IDLE:
            self._last_fg_activity = max(self._last_fg_activity, now)

    # -- selection ---------------------------------------------------------------
    def select(self, now: float) -> Selection:
        if self._barriers:
            return self._select_with_barrier(now)
        if self._rt:
            return self._rt.pop(self._position), None
        if self._pending_be():
            return self._select_be(now)
        if self._idle:
            gate_open_at = self._last_fg_activity + self.idle_gate
            if now >= gate_open_at:
                return self._idle.pop(self._position), None
            return None, gate_open_at
        return None, None

    def _select_with_barrier(self, now: float) -> Selection:
        """Queue-order dispatch while a barrier is pending.

        Everything submitted before the oldest barrier drains first (in
        submission order — sorting around a barrier is forbidden), then
        the barrier itself.  Requests submitted after the barrier wait.
        """
        barrier = self._barriers[0]
        candidates = [barrier]
        for queue in self._all_queues():
            oldest = queue.oldest()
            if oldest is not None and oldest.seq < barrier.seq:
                candidates.append(oldest)
        choice = min(candidates, key=lambda r: r.seq)
        if choice is barrier:
            self._barriers.popleft()
        else:
            self._remove(choice)
        return choice, None

    def _select_be(self, now: float) -> Selection:
        owner_queue = self._be.get(self._be_owner) if self._be_owner else None
        slice_live = self._be_owner is not None and now < self._be_slice_end
        if slice_live and owner_queue:
            self._be_owner_last_activity = now
            return owner_queue.pop(self._position), None
        if slice_live and owner_queue is not None:
            # Owner queue empty: anticipate its next request briefly.
            anticipation_end = self._be_owner_last_activity + self.slice_idle
            if now < anticipation_end:
                return None, min(self._be_slice_end, anticipation_end)
        # Hand the slice to the next backlogged source, round robin.
        for _ in range(len(self._be_rr)):
            source = self._be_rr[0]
            self._be_rr.rotate(-1)
            queue = self._be.get(source)
            if queue:
                self._be_owner = source
                self._be_slice_end = now + self.slice_sync
                self._be_owner_last_activity = now
                return queue.pop(self._position), None
        return None, None  # unreachable while _pending_be() held

    # -- notifications --------------------------------------------------------------
    def on_dispatch(self, request: IORequest, now: float) -> None:
        self._position = request.command.end_lbn
        if request.soft_barrier or request.priority is not PriorityClass.IDLE:
            self._last_fg_activity = max(self._last_fg_activity, now)
        if (
            request.priority is PriorityClass.BE
            and not request.soft_barrier
            and request.source == self._be_owner
        ):
            self._be_owner_last_activity = now

    def on_complete(self, request: IORequest, now: float) -> None:
        if request.soft_barrier or request.priority is not PriorityClass.IDLE:
            self._last_fg_activity = max(self._last_fg_activity, now)
        if (
            request.priority is PriorityClass.BE
            and not request.soft_barrier
            and request.source == self._be_owner
        ):
            self._be_owner_last_activity = now

    # -- helpers -----------------------------------------------------------------------
    def _pending_be(self) -> bool:
        return any(len(q) for q in self._be.values())

    def _all_queues(self):
        yield self._rt
        yield from self._be.values()
        yield self._idle

    def _remove(self, request: IORequest) -> None:
        for queue in self._all_queues():
            try:
                queue.remove(request)
                return
            except ValueError:
                continue
        raise ValueError(f"{request!r} not found in any queue")

    def __len__(self) -> int:
        return (
            len(self._rt)
            + sum(len(q) for q in self._be.values())
            + len(self._idle)
            + len(self._barriers)
        )
