"""Block-layer I/O requests.

An :class:`IORequest` wraps a :class:`~repro.disk.commands.DiskCommand`
with scheduling metadata: the CFQ priority class, the submitting source
(used for per-queue accounting and statistics), and the *soft barrier*
flag that models how Linux treats pass-through ``ioctl`` commands.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.disk.commands import DiskCommand

_sequence = itertools.count()


class PriorityClass(enum.IntEnum):
    """CFQ I/O priority classes, highest first."""

    RT = 0
    BE = 1
    IDLE = 2


class IORequest:
    """A single request travelling through the scheduler to the drive.

    Parameters
    ----------
    command:
        The disk command to execute.
    priority:
        CFQ class; ignored for soft barriers (the kernel dispatches
        pass-through commands in queue order regardless of class).
    source:
        Label of the submitting stream, e.g. ``"foreground"`` or
        ``"scrubber"``; CFQ keeps one BE queue per source.
    soft_barrier:
        ``True`` for user-level pass-through commands: never sorted or
        merged, and no request submitted after it may overtake it.
    """

    def __init__(
        self,
        command: DiskCommand,
        priority: PriorityClass = PriorityClass.BE,
        source: str = "foreground",
        soft_barrier: bool = False,
    ) -> None:
        self.command = command
        self.priority = priority
        self.source = source
        self.soft_barrier = soft_barrier
        #: Monotonic submission sequence number (set once submitted).
        self.seq: Optional[int] = None
        self.submit_time: Optional[float] = None
        self.dispatch_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Completion event, set by the owning BlockDevice at submit.
        self.completion = None
        #: Drive-level timing breakdown, set at completion.
        self.breakdown = None

    def stamp_submit(self, now: float) -> None:
        self.seq = next(_sequence)
        self.submit_time = now

    # -- derived timings ------------------------------------------------------
    @property
    def response_time(self) -> float:
        """Submit-to-complete latency."""
        if self.submit_time is None or self.complete_time is None:
            raise RuntimeError(f"{self!r} has not completed")
        return self.complete_time - self.submit_time

    @property
    def wait_time(self) -> float:
        """Submit-to-dispatch queueing delay."""
        if self.submit_time is None or self.dispatch_time is None:
            raise RuntimeError(f"{self!r} has not been dispatched")
        return self.dispatch_time - self.submit_time

    @property
    def service_time(self) -> float:
        """Dispatch-to-complete drive service time."""
        if self.dispatch_time is None or self.complete_time is None:
            raise RuntimeError(f"{self!r} has not completed")
        return self.complete_time - self.dispatch_time

    @property
    def bytes(self) -> int:
        return self.command.bytes

    @property
    def status(self):
        """Drive completion status (``CommandStatus``) of this request."""
        if self.breakdown is None:
            raise RuntimeError(f"{self!r} has not completed")
        return self.breakdown.status

    @property
    def failed(self) -> bool:
        """``True`` when the drive failed the request (``MEDIUM_ERROR``)."""
        from repro.disk.commands import CommandStatus

        return self.breakdown is not None and (
            self.breakdown.status is not CommandStatus.GOOD
        )

    def __repr__(self) -> str:
        barrier = " barrier" if self.soft_barrier else ""
        return (
            f"<IORequest {self.command.opcode.value} lbn={self.command.lbn} "
            f"x{self.command.sectors} {self.priority.name}{barrier} "
            f"src={self.source}>"
        )
