"""Campaign execution: shard, supervise, checkpoint, merge, estimate.

:class:`CampaignRunner` turns a :class:`~repro.fleet.spec.CampaignSpec`
into fleet-level answers:

* shards the fleet into contiguous group ranges and runs
  :func:`~repro.fleet.montecarlo.fleet_shard_task` over them — under
  the fault-tolerant :class:`~repro.parallel.supervise.SupervisedRunner`
  (heartbeats, hung-task deadlines, seeded-backoff retries, straggler
  re-dispatch) or serially for ``workers<=1``;
* checkpoints every completed shard into the
  :class:`~repro.fleet.journal.CampaignJournal` *as it lands* (not
  after a barrier), so SIGKILL and ``KeyboardInterrupt`` lose at most
  the shards in flight;
* on resume, recomputes every shard key and skips the journal's hits —
  :attr:`CampaignResult.shards_resumed` counts them, which is how the
  tests assert a resume did no duplicate work;
* salvages partial fleets: shards that exhaust their retries are
  dropped from the estimate and reported through
  :attr:`CampaignResult.completeness` — an explicit fraction, never a
  silent gap — while every completed shard still contributes;
* merges per-shard telemetry with
  :func:`repro.telemetry.metrics.merge_snapshots` (shard order, so the
  merged snapshot is independent of completion order) and estimates,
  per policy: MTTDL with a Poisson (chi-square) confidence interval,
  mission loss probability with a Wilson interval, and the matching
  closed-form prediction from
  :func:`repro.raid.reliability.group_reliability` averaged over the
  fleet's deterministic per-group profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fleet.journal import CampaignJournal
from repro.fleet.montecarlo import fleet_shard_task
from repro.fleet.spec import (
    CampaignSpec,
    campaign_digest,
    group_profile,
    resolve_latent_windows,
)
from repro.raid.reliability import (
    HOURS_PER_YEAR,
    group_reliability,
    lse_exposure_probability,
)
from repro.telemetry.metrics import merge_snapshots

__all__ = [
    "CampaignCancelled",
    "CampaignResult",
    "CampaignRunner",
    "PolicyEstimate",
    "closed_form_policy",
    "loss_rate_interval",
    "wilson_interval",
]


class CampaignCancelled(RuntimeError):
    """The campaign's ``should_stop`` signal fired mid-run.

    Raised *after* every already-completed shard has been checkpointed
    to the journal, so a cancelled campaign is always resumable: re-run
    the same spec against the same journal and the landed shards are
    cache hits.  The orchestration service maps this to the job state
    ``cancelled``.
    """


def loss_rate_interval(
    losses: int, exposure_hours: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Poisson CI for a loss *rate* given ``losses`` over ``exposure``.

    Exact (chi-square) bounds when SciPy is available, Wald-on-sqrt
    otherwise; ``losses=0`` yields a one-sided interval.
    """
    if exposure_hours <= 0:
        raise ValueError(f"exposure must be positive: {exposure_hours}")
    if losses < 0:
        raise ValueError(f"losses must be >= 0: {losses}")
    alpha = 1.0 - confidence
    try:
        from scipy.stats import chi2

        low = (
            chi2.ppf(alpha / 2, 2 * losses) / 2 if losses > 0 else 0.0
        )
        high = chi2.ppf(1 - alpha / 2, 2 * losses + 2) / 2
    except Exception:  # pragma: no cover - scipy is a baked-in dependency
        z = 1.96
        spread = z * math.sqrt(losses) if losses else z
        low = max(0.0, losses - spread)
        high = losses + spread + z * z
    return low / exposure_hours, high / exposure_hours


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        return 0.0, 1.0
    z = 1.959963984540054 if confidence == 0.95 else _z_for(confidence)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = p + z * z / (2 * trials)
    spread = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, (centre - spread) / denom), min(1.0, (centre + spread) / denom)


def _z_for(confidence: float) -> float:
    from scipy.stats import norm

    return float(norm.ppf(0.5 + confidence / 2))


@dataclass
class PolicyEstimate:
    """Fleet-level reliability estimate for one scrub policy."""

    name: str
    groups: int
    losses: int
    losses_by_mode: Dict[str, int]
    drive_failures: int
    rebuilds_completed: int
    observed_group_hours: float
    drive_hours: float
    states: Dict[str, int]
    latent_window_hours: float
    #: Monte-Carlo MTTDL (hours) with its 95% CI; ``inf`` when no loss
    #: was observed (the CI lower bound is still finite).
    mttdl_hours: float = math.inf
    mttdl_ci_hours: Tuple[float, float] = (0.0, math.inf)
    #: P(a group loses data within the mission), with Wilson CI.
    p_loss_mission: float = 0.0
    p_loss_ci: Tuple[float, float] = (0.0, 1.0)
    #: Closed-form predictions averaged over the fleet's group profiles.
    closed_form_mttdl_hours: float = math.inf
    closed_form_p_loss: float = 0.0

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR

    @property
    def drive_years(self) -> float:
        return self.drive_hours / HOURS_PER_YEAR


@dataclass
class CampaignResult:
    """Everything a finished (possibly degraded) campaign knows."""

    spec: CampaignSpec
    policies: List[PolicyEstimate]
    #: Fraction of the fleet's groups that completed simulation.
    completeness: float
    shards_total: int
    shards_completed: int
    shards_resumed: int
    shards_failed: int
    failed_shards: List[int]
    telemetry: dict
    #: Task attempt accounting from the supervision layer (empty for
    #: serial runs): total attempts, retries, timeouts, worker deaths.
    supervision: Dict[str, int] = field(default_factory=dict)

    def metrics_dict(self) -> dict:
        """Canonical nested-dict form for bit-identity comparisons."""
        return {
            "completeness": self.completeness,
            "policies": [
                {
                    "name": p.name,
                    "groups": p.groups,
                    "losses": p.losses,
                    "losses_by_mode": dict(p.losses_by_mode),
                    "drive_failures": p.drive_failures,
                    "rebuilds_completed": p.rebuilds_completed,
                    "observed_group_hours": p.observed_group_hours,
                    "drive_hours": p.drive_hours,
                    "states": dict(p.states),
                    "mttdl_hours": p.mttdl_hours,
                    "mttdl_ci_hours": tuple(p.mttdl_ci_hours),
                    "p_loss_mission": p.p_loss_mission,
                    "p_loss_ci": tuple(p.p_loss_ci),
                }
                for p in self.policies
            ],
        }


def closed_form_policy(
    spec: CampaignSpec, policy_index: int, latent_window_hours: float
) -> Tuple[float, float]:
    """Fleet-averaged closed-form ``(mttdl_hours, p_loss_mission)``.

    Heterogeneity is handled exactly: every group's profile is
    deterministic, so the fleet's loss rate is the mean of per-group
    closed-form rates and its mission loss probability the mean of
    per-group probabilities.
    """
    fleet = spec.fleet
    mission_hours = spec.mission_years * HOURS_PER_YEAR
    rate_sum = 0.0
    p_sum = 0.0
    for group_index in range(fleet.groups):
        profile = group_profile(fleet, spec.seed, group_index)
        rel = group_reliability(
            disks=fleet.disks_per_group,
            mttf_hours=profile.mttf_hours,
            mttr_hours=fleet.mttr_hours,
            mission_hours=mission_hours,
            spare_delay_hours=fleet.spare_delay_hours,
            lse_burst_rate_per_hour=profile.lse_burst_rate_per_hour,
            latent_window_hours=latent_window_hours,
            redundancy=fleet.redundancy,
        )
        rate_sum += rel.loss_rate_per_hour
        p_sum += rel.p_loss_mission
    mean_rate = rate_sum / fleet.groups
    mttdl = math.inf if mean_rate == 0 else 1.0 / mean_rate
    return mttdl, p_sum / fleet.groups


class CampaignRunner:
    """Runs a campaign end to end; see the module docstring.

    Parameters
    ----------
    spec:
        The campaign.
    journal_dir:
        Directory for durable checkpoints; ``None`` runs without
        durability (no resume).
    workers:
        Worker processes.  ``0``/``1`` runs shards serially in-process
        (still checkpointing per shard); more uses
        :class:`SupervisedRunner`.
    task_timeout, heartbeat_interval, retry, straggler_factor:
        Passed to :class:`SupervisedRunner`.
    telemetry:
        Optional sink for campaign/supervision/cache counters.
    verify:
        Run :mod:`repro.verify.fleet` conservation checks on every
        shard result and the merged fleet (default on; failures raise
        :class:`~repro.verify.invariants.InvariantViolation`).
    task:
        The shard task to execute — ``fleet_shard_task`` unless a test
        injects a fault-wrapping variant.  Checkpoint keys are computed
        against :func:`fleet_shard_task` regardless, because a wrapper
        must produce bit-identical results to be a valid stand-in.
    on_shard:
        Optional hook ``(shard_index, result) -> None`` fired after
        each shard is checkpointed; tests use it to inject
        ``KeyboardInterrupt`` at precise points.
    monitor:
        Optional :class:`~repro.obs.monitor.CampaignMonitor` (duck
        typed).  Purely observational: it receives lifecycle events and
        worker heartbeat samples, and can never change a result — the
        differential oracle's ``monitor`` axis asserts campaign metrics
        are bit-identical with a monitor attached or not.
    should_stop:
        Optional zero-argument callable polled between shards (serial)
        and by the supervision loop (parallel).  Returning ``True``
        cancels the campaign: in-flight attempts are terminated, every
        *completed* shard stays checkpointed, and :meth:`run` raises
        :class:`CampaignCancelled`.  The orchestration service wires
        this to the job queue's cancel flag.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        journal_dir=None,
        workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        heartbeat_interval: float = 1.0,
        retry=None,
        straggler_factor: Optional[float] = None,
        telemetry=None,
        verify: bool = True,
        task: Optional[Callable] = None,
        on_shard: Optional[Callable[[int, dict], None]] = None,
        monitor=None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.spec = spec
        self.journal_dir = journal_dir
        self.workers = workers if workers is not None else 1
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.retry = retry
        self.straggler_factor = straggler_factor
        self.telemetry = (
            telemetry if telemetry is not None and telemetry.enabled else None
        )
        self.verify = verify
        self.task = task if task is not None else fleet_shard_task
        self.on_shard = on_shard
        self.monitor = monitor
        self.should_stop = should_stop

    @staticmethod
    def shard_param_sets(spec: CampaignSpec) -> List[dict]:
        """The campaign's full work list, deterministic from the spec."""
        windows = resolve_latent_windows(spec)
        return [
            {
                "spec": spec,
                "shard_index": shard_index,
                "group_start": start,
                "group_count": count,
                "latent_windows": windows,
            }
            for shard_index, (start, count) in enumerate(spec.shard_ranges())
        ]

    # -- execution -----------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute (or resume) the campaign and estimate fleet metrics."""
        spec = self.spec
        param_sets = self.shard_param_sets(spec)
        journal = (
            CampaignJournal(self.journal_dir, spec, telemetry=self.telemetry)
            if self.journal_dir is not None
            else None
        )
        monitor = self.monitor
        if monitor is not None:
            monitor.campaign_started(
                digest=campaign_digest(spec),
                shard_ranges=spec.shard_ranges(),
                policy_names=[policy.name for policy in spec.policies],
                workers=self.workers,
                mission_years=spec.mission_years,
                disks_per_group=spec.fleet.disks_per_group,
            )

        results: Dict[int, dict] = {}
        resumed = 0
        remaining: List[dict] = []
        for params in param_sets:
            if journal is not None:
                hit, value = journal.load(params)
                if hit:
                    results[params["shard_index"]] = value
                    resumed += 1
                    if monitor is not None:
                        monitor.shard_resumed(params["shard_index"], value)
                    continue
            remaining.append(params)
        if self.telemetry is not None:
            self.telemetry.metrics.counter("fleet.shards_resumed").inc(resumed)

        failed: List[int] = []
        supervision: Dict[str, int] = {}

        def land(shard_index: int, params: dict, result: dict) -> None:
            if self.verify:
                from repro.verify.fleet import check_shard_result

                check_shard_result(spec, result)
            results[shard_index] = result
            if journal is not None:
                journal.record(shard_index, params, result)
            if self.on_shard is not None:
                self.on_shard(shard_index, result)

        def cancelled() -> bool:
            return self.should_stop is not None and self.should_stop()

        if remaining and cancelled():
            raise CampaignCancelled(
                f"campaign cancelled before start: {resumed} shard(s) "
                f"already checkpointed, {len(remaining)} remaining"
            )

        if remaining and self.workers <= 1:
            for params in remaining:
                shard_index = params["shard_index"]
                if cancelled():
                    raise CampaignCancelled(
                        f"campaign cancelled at shard {shard_index}: "
                        f"{len(results)}/{len(param_sets)} shard(s) "
                        "checkpointed"
                    )
                if monitor is not None:
                    monitor.shard_started(shard_index, attempt=1)
                result = self.task(**params)
                land(shard_index, params, result)
                if monitor is not None:
                    monitor.shard_completed(shard_index, result, attempt=1)
        elif remaining:
            from repro.parallel.supervise import SupervisedRunner

            runner = SupervisedRunner(
                workers=self.workers,
                task_timeout=self.task_timeout,
                heartbeat_interval=self.heartbeat_interval,
                retry=self.retry,
                straggler_factor=self.straggler_factor,
                telemetry=self.telemetry,
            )
            def on_result(outcome) -> None:
                params = remaining[outcome.index]
                if outcome.ok:
                    land(params["shard_index"], params, outcome.value)
                    if monitor is not None:
                        monitor.shard_completed(
                            params["shard_index"],
                            outcome.value,
                            attempt=outcome.attempts,
                            duration=outcome.duration,
                        )
                elif monitor is not None:
                    monitor.shard_failed(
                        params["shard_index"], outcome.error or "failed"
                    )

            on_event = None
            if monitor is not None:
                def on_event(kind, index, info) -> None:
                    shard_index = remaining[index]["shard_index"]
                    if kind == "attempt_started":
                        monitor.shard_started(
                            shard_index,
                            attempt=info.get("attempt", 1),
                            speculative=info.get("speculative", False),
                        )
                    elif kind == "heartbeat":
                        monitor.shard_heartbeat(
                            shard_index,
                            info.get("attempt", 1),
                            info.get("payload"),
                        )
                    elif kind == "attempt_failed":
                        monitor.shard_attempt_failed(
                            shard_index,
                            info.get("attempt", 1),
                            info.get("kind", "error"),
                            info.get("error", ""),
                            info.get("duration", 0.0),
                        )

            outcomes = runner.map(
                self.task, remaining, on_result=on_result, on_event=on_event,
                should_stop=self.should_stop,
            )
            if cancelled():
                # Landed shards are journaled; in-flight attempts were
                # terminated by the supervision loop.
                raise CampaignCancelled(
                    f"campaign cancelled: {len(results)}/{len(param_sets)} "
                    "shard(s) checkpointed"
                )
            for outcome, params in zip(outcomes, remaining):
                if not outcome.ok:
                    failed.append(params["shard_index"])
            supervision = {
                "attempts": sum(o.attempts for o in outcomes),
                "retries": sum(max(0, o.attempts - 1) for o in outcomes),
                "timeouts": sum(o.timeouts for o in outcomes),
                "worker_deaths": sum(o.worker_deaths for o in outcomes),
                "stalls": sum(o.stalls for o in outcomes),
                "speculated": sum(o.speculated for o in outcomes),
                "peak_rss_kb": max(
                    (o.peak_rss_kb or 0 for o in outcomes), default=0
                ),
            }

        result = self._merge(
            param_sets, results, resumed, sorted(failed), supervision
        )
        if monitor is not None:
            monitor.campaign_finished(result)
        return result

    # -- merging and estimation ---------------------------------------------

    def _merge(
        self,
        param_sets: Sequence[dict],
        results: Dict[int, dict],
        resumed: int,
        failed: List[int],
        supervision: Dict[str, int],
    ) -> CampaignResult:
        spec = self.spec
        completed = [results[i] for i in sorted(results)]
        if self.verify:
            from repro.verify.fleet import check_fleet_conservation

            check_fleet_conservation(spec, completed, allow_partial=True)
        groups_done = sum(shard["group_count"] for shard in completed)
        completeness = groups_done / spec.fleet.groups
        windows = (
            param_sets[0]["latent_windows"]
            if param_sets
            else resolve_latent_windows(spec)
        )

        estimates: List[PolicyEstimate] = []
        for policy_index, policy in enumerate(spec.policies):
            blocks = [shard["policies"][policy_index] for shard in completed]
            groups = sum(b["groups"] for b in blocks)
            losses = sum(b["losses"] for b in blocks)
            by_mode: Dict[str, int] = {}
            states: Dict[str, int] = {}
            for b in blocks:
                for mode, count in b["losses_by_mode"].items():
                    by_mode[mode] = by_mode.get(mode, 0) + count
                for state, count in b["states"].items():
                    states[state] = states.get(state, 0) + count
            # Re-sum per-group hours with fsum so the merged total is
            # bit-identical no matter how the fleet was sharded
            # (`completed` is sorted by shard index = group order).
            observed = math.fsum(
                hours for b in blocks for hours in b["group_hours"]
            )
            estimate = PolicyEstimate(
                name=policy.name,
                groups=groups,
                losses=losses,
                losses_by_mode=dict(sorted(by_mode.items())),
                drive_failures=sum(b["drive_failures"] for b in blocks),
                rebuilds_completed=sum(b["rebuilds_completed"] for b in blocks),
                observed_group_hours=observed,
                drive_hours=observed * spec.fleet.disks_per_group,
                states=dict(sorted(states.items())),
                latent_window_hours=float(windows[policy_index]),
            )
            if observed > 0:
                low, high = loss_rate_interval(losses, observed)
                estimate.mttdl_hours = (
                    observed / losses if losses else math.inf
                )
                estimate.mttdl_ci_hours = (
                    1.0 / high if high > 0 else math.inf,
                    1.0 / low if low > 0 else math.inf,
                )
            if groups > 0:
                estimate.p_loss_mission = losses / groups
                estimate.p_loss_ci = wilson_interval(losses, groups)
            cf_mttdl, cf_p = closed_form_policy(
                spec, policy_index, float(windows[policy_index])
            )
            estimate.closed_form_mttdl_hours = cf_mttdl
            estimate.closed_form_p_loss = cf_p
            estimates.append(estimate)

        merged = merge_snapshots(
            [shard["telemetry"]["metrics"] for shard in completed]
        )
        merged.setdefault("gauges", {})["fleet.completeness"] = completeness
        if self.telemetry is not None:
            self.telemetry.metrics.gauge("fleet.completeness").set(completeness)

        return CampaignResult(
            spec=spec,
            policies=estimates,
            completeness=completeness,
            shards_total=len(param_sets),
            shards_completed=len(completed),
            shards_resumed=resumed,
            shards_failed=len(failed),
            failed_shards=failed,
            telemetry=merged,
            supervision=supervision,
        )
