"""Fleet-scale reliability campaigns (PR 7).

The paper evaluates scrub policies one drive at a time; operators ask
fleet-level questions — MTTDL and probability of data loss under a
scrub-policy choice, over tens of thousands of heterogeneous drives
and millions of simulated drive-years.  This package answers them with
an execution layer as fault-tolerant as the storage it models:

* :mod:`repro.fleet.spec` — :class:`FleetSpec` /
  :class:`CampaignSpec`: heterogeneous drive classes, RAID grouping,
  deterministic per-drive seed derivation, content digests;
* :mod:`repro.fleet.montecarlo` — the pure, checkpointable shard task
  simulating whole-drive failure + rebuild on top of the
  :mod:`repro.raid.reliability` cycle model, with the scrub policy
  entering through its measured latent window;
* :mod:`repro.fleet.journal` — durable content-addressed per-shard
  checkpoints; a killed campaign resumes bit-identical;
* :mod:`repro.fleet.campaign` — :class:`CampaignRunner`: supervised
  execution, per-shard checkpointing, graceful degradation with an
  explicit completeness fraction, merged telemetry, and MTTDL /
  P(loss) estimates with confidence intervals cross-checked against
  the closed-form model.

CLI entry point: ``repro fleet`` (``--resume`` just points at the same
journal directory).
"""

from repro.fleet.campaign import (
    CampaignCancelled,
    CampaignResult,
    CampaignRunner,
    PolicyEstimate,
    closed_form_policy,
    loss_rate_interval,
    wilson_interval,
)
from repro.fleet.journal import CampaignJournal, JournalError
from repro.fleet.montecarlo import fleet_shard_task, simulate_group
from repro.fleet.spec import (
    CampaignSpec,
    DriveClass,
    FleetSpec,
    ScrubPolicySpec,
    campaign_digest,
    group_profile,
    group_seed,
    resolve_latent_windows,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "CampaignCancelled",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DriveClass",
    "FleetSpec",
    "JournalError",
    "PolicyEstimate",
    "ScrubPolicySpec",
    "campaign_digest",
    "closed_form_policy",
    "fleet_shard_task",
    "group_profile",
    "group_seed",
    "loss_rate_interval",
    "resolve_latent_windows",
    "simulate_group",
    "spec_from_dict",
    "spec_to_dict",
    "wilson_interval",
]
