"""The durable campaign journal: checkpoint, crash, resume, verify.

A campaign that simulates millions of drive-years will be interrupted
— a SIGKILLed driver, a ^C, a lost machine.  The journal makes that a
non-event:

* **Per-shard checkpoints** are content-addressed: each completed
  shard's result is stored in a :class:`~repro.parallel.cache.ResultCache`
  under the key of ``fleet_shard_task`` + its canonicalized parameters
  (which embed the whole :class:`~repro.fleet.spec.CampaignSpec`).
  Writes are atomic (temp file + ``os.replace``), so a kill mid-write
  leaves the previous state, never a torn checkpoint; and entries are
  self-verifying, so a corrupt checkpoint is *evicted* and recomputed
  rather than trusted or fatal.
* **The manifest** (``manifest.json``, also atomically replaced)
  records the campaign digest and the shard->key map.  Opening a
  journal whose digest does not match the offered spec raises
  :class:`JournalError`: a resume can never silently mix shards from
  two different campaigns.
* **Resume is just cache hits.**  The runner recomputes every shard's
  key from the spec — deterministically — and asks the journal; hits
  are completed shards, misses are remaining work.  Because shard
  results are pure functions of the spec, a resumed campaign finishes
  bit-identical to an uninterrupted one, and
  :func:`repro.verify.fleet.check_campaign_journal` can audit the
  digest chain end to end.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.fleet.spec import CampaignSpec, campaign_digest
from repro.parallel.cache import ResultCache

__all__ = ["CampaignJournal", "JournalError"]

_MANIFEST = "manifest.json"
_FORMAT = 2


class JournalError(RuntimeError):
    """The journal directory cannot serve this campaign."""


class CampaignJournal:
    """Checkpoint store for one campaign in one directory.

    Parameters
    ----------
    root:
        Journal directory (created if missing).  One campaign per
        directory: reopening with a different spec raises
        :class:`JournalError`.
    spec:
        The campaign this journal belongs to.
    telemetry:
        Optional sink; checkpoint evictions and journal activity are
        counted in its metrics registry.
    """

    def __init__(
        self,
        root: Union[str, Path],
        spec: CampaignSpec,
        telemetry=None,
    ) -> None:
        self.root = Path(root)
        self.spec = spec
        self.digest = campaign_digest(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(
            self.root / "checkpoints",
            version=f"fleet-journal-{_FORMAT}",
            telemetry=telemetry,
        )
        self._manifest_path = self.root / _MANIFEST
        manifest = self._load_manifest()
        if manifest is None:
            self._manifest = {
                "format": _FORMAT,
                "campaign_digest": self.digest,
                "shards_total": len(spec.shard_ranges()),
                "shards": {},
            }
            self._write_manifest()
        else:
            if manifest.get("campaign_digest") != self.digest:
                raise JournalError(
                    f"journal at {self.root} belongs to campaign "
                    f"{manifest.get('campaign_digest', '?')[:12]}..., not "
                    f"{self.digest[:12]}...; refusing to mix campaigns"
                )
            self._manifest = manifest

    # -- manifest ------------------------------------------------------------

    def _load_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path, "r") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            # A torn manifest is recoverable: checkpoints are still
            # content-addressed, so rebuilding the map is safe — but it
            # must be an explicit decision, not a silent one.
            raise JournalError(
                f"unreadable manifest at {self._manifest_path}: {exc}; "
                "delete it to rebuild from checkpoints"
            )

    def _write_manifest(self) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._manifest, fh, indent=1, sort_keys=True)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- checkpoints ---------------------------------------------------------

    def key_for(self, params: dict) -> str:
        """Content-addressed checkpoint key for one shard's parameters."""
        from repro.fleet.montecarlo import fleet_shard_task

        return self.cache.key(fleet_shard_task, params)

    def load(self, params: dict) -> Tuple[bool, Any]:
        """``(hit, result)`` for a shard; corrupt checkpoints miss."""
        return self.cache.get(self.key_for(params))

    def record(self, shard_index: int, params: dict, result: Any) -> str:
        """Durably checkpoint one completed shard; returns its key.

        The checkpoint entry lands before the manifest references it,
        so a crash between the two writes leaves a resumable (if
        slightly under-reported) journal, never a dangling reference.
        """
        key = self.key_for(params)
        self.cache.put(key, result)
        self._manifest["shards"][str(int(shard_index))] = key
        self._write_manifest()
        return key

    def completed(self) -> Dict[int, str]:
        """Shard index -> checkpoint key for every recorded shard."""
        return {
            int(index): key
            for index, key in self._manifest["shards"].items()
        }

    @property
    def shards_total(self) -> int:
        return int(self._manifest["shards_total"])
