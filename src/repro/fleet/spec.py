"""Campaign specifications: what a fleet is and what to ask of it.

Everything here is a frozen dataclass of primitives and tuples, for
two load-bearing reasons:

* **Content addressing.**  A spec canonicalises through
  :func:`repro.parallel.cache.canonicalize`, so
  :func:`campaign_digest` is a stable identity for "this exact
  campaign" — the journal refuses to resume a directory whose digest
  does not match, and per-shard checkpoints key on the spec itself.
* **Determinism.**  Every random decision a campaign makes — which
  drive class a group gets, its age jitter, its whole-drive failure
  draws — derives from ``(campaign seed, stream, group index)`` via
  :func:`repro.parallel.runner.derive_seed`.  Seeds never depend on
  shard layout or worker scheduling, so a campaign sharded 4 ways, 64
  ways, interrupted and resumed, or re-run serially produces
  bit-identical fleet metrics.

The scrub policy's entire influence is channelled through its *latent
window* (mean latent error time): :func:`resolve_latent_windows` runs
the paper's MLET machinery (:mod:`repro.core.mlet`) over the policy's
actual sector-visit schedule, which is where staggered scrubbing earns
its shorter exposure.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import hashlib

import numpy as np

from repro.parallel.cache import canonicalize
from repro.parallel.runner import derive_seed

__all__ = [
    "CampaignSpec",
    "DriveClass",
    "FleetSpec",
    "ScrubPolicySpec",
    "campaign_digest",
    "group_profile",
    "group_seed",
    "resolve_latent_windows",
    "spec_from_dict",
    "spec_to_dict",
]

#: Seed-stream salts: disjoint derive_seed substreams so the fleet
#: composition draw can never collide with a failure-simulation draw.
_PROFILE_STREAM = 0x50524F46  # "PROF"
_GROUP_STREAM = 0x47525550  # "GRUP"
_POLICY_STREAM = 0x504F4C00  # "POL\0" + policy index (MLET burst draws)


@dataclass(frozen=True)
class DriveClass:
    """One homogeneous slice of a heterogeneous fleet.

    ``preset`` names a :data:`repro.disk.models.PRESETS` drive model —
    the same models the single-drive simulator uses — and the failure
    parameters default to the Gray & van Ingen / Schroeder ballpark:
    ~10^5-hour MTTF and a slow wear-out ramp.
    """

    preset: str = "ultrastar"
    #: Relative share of the fleet's groups drawn from this class.
    weight: float = 1.0
    #: Whole-drive MTTF at age zero, hours.
    mttf_hours: float = 1.0e5
    #: Latent-sector-error *bursts* per drive-hour.
    lse_burst_rate_per_hour: float = 1.0e-4
    #: Nominal age of this slice's drives, years.
    age_years: float = 0.0
    #: Fractional failure-rate increase per year of age (wear-out).
    wearout_per_year: float = 0.0

    def __post_init__(self) -> None:
        from repro.disk.models import PRESETS

        if self.preset not in PRESETS:
            raise ValueError(
                f"unknown drive preset {self.preset!r}; "
                f"choose from {', '.join(sorted(PRESETS))}"
            )
        if self.weight <= 0:
            raise ValueError(f"weight must be positive: {self.weight}")
        if self.mttf_hours <= 0:
            raise ValueError(f"mttf_hours must be positive: {self.mttf_hours}")
        if self.lse_burst_rate_per_hour < 0:
            raise ValueError("lse_burst_rate_per_hour must be >= 0")
        if self.age_years < 0 or self.wearout_per_year < 0:
            raise ValueError("age and wear-out must be >= 0")


@dataclass(frozen=True)
class FleetSpec:
    """A fleet of redundancy groups (RAID groups or bare drives)."""

    #: Number of redundancy groups simulated.
    groups: int = 1000
    #: Drives per group.
    disks_per_group: int = 8
    #: ``raid5`` / ``raid1`` tolerate one failure; ``none`` tolerates zero.
    raid_level: str = "raid5"
    #: Rebuild duration once a spare is attached, hours.
    mttr_hours: float = 24.0
    #: Delay between a failure and the rebuild starting (degraded), hours.
    spare_delay_hours: float = 4.0
    #: The fleet mix; groups draw a class by weight.
    classes: Tuple[DriveClass, ...] = (DriveClass(),)
    #: Extra per-group age jitter, uniform in [0, age_spread_years).
    age_spread_years: float = 0.0

    def __post_init__(self) -> None:
        if self.groups <= 0:
            raise ValueError(f"groups must be positive: {self.groups}")
        if self.disks_per_group < 1:
            raise ValueError(
                f"disks_per_group must be >= 1: {self.disks_per_group}"
            )
        if self.raid_level not in ("raid5", "raid1", "none"):
            raise ValueError(
                f"raid_level must be raid5|raid1|none: {self.raid_level!r}"
            )
        if self.raid_level == "raid1" and self.disks_per_group != 2:
            raise ValueError("raid1 groups are mirrored pairs (2 disks)")
        if self.raid_level == "raid5" and self.disks_per_group < 3:
            raise ValueError("raid5 groups need >= 3 disks")
        if self.mttr_hours <= 0 or self.spare_delay_hours < 0:
            raise ValueError("mttr must be positive, spare delay >= 0")
        if not self.classes:
            raise ValueError("fleet needs at least one drive class")
        if self.age_spread_years < 0:
            raise ValueError("age_spread_years must be >= 0")

    @property
    def redundancy(self) -> int:
        """Drive failures a group absorbs without data loss."""
        return 0 if self.raid_level == "none" else 1

    @property
    def drives(self) -> int:
        return self.groups * self.disks_per_group


@dataclass(frozen=True)
class ScrubPolicySpec:
    """One scrub policy under evaluation.

    The policy is reduced to its latent window (mean latent error
    time) by replaying the real scrub order over a model disk — see
    :func:`resolve_latent_windows`.  ``latent_window_hours`` overrides
    that computation when a measured value is available.
    """

    name: str
    #: ``sequential`` or ``staggered`` (the paper's two orders).
    algorithm: str = "sequential"
    #: Staggering regions (ignored for sequential).
    regions: int = 128
    #: Scrub pass period, hours (one full-disk pass per period).
    period_hours: float = 168.0
    #: Model disk size used to compute the visit schedule.
    model_sectors: int = 1 << 18
    #: Mean LSE burst length in sectors (Bairavasundaram clustering).
    burst_length: float = 32.0
    #: Override: skip the schedule computation and use this window.
    latent_window_hours: Optional[float] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ("sequential", "staggered"):
            raise ValueError(
                f"algorithm must be sequential|staggered: {self.algorithm!r}"
            )
        if self.period_hours <= 0:
            raise ValueError(f"period_hours must be positive: {self.period_hours}")
        if self.regions < 1:
            raise ValueError(f"regions must be >= 1: {self.regions}")
        if self.model_sectors < 1024:
            raise ValueError("model_sectors too small to schedule")
        if self.latent_window_hours is not None and self.latent_window_hours < 0:
            raise ValueError("latent_window_hours must be >= 0")


@dataclass(frozen=True)
class CampaignSpec:
    """A full reliability campaign: fleet x policies x mission."""

    fleet: FleetSpec = field(default_factory=FleetSpec)
    policies: Tuple[ScrubPolicySpec, ...] = (
        ScrubPolicySpec(name="sequential-1w", algorithm="sequential"),
        ScrubPolicySpec(name="staggered-1w", algorithm="staggered"),
    )
    #: Mission (observation) time per group, years.
    mission_years: float = 10.0
    seed: int = 0
    #: Shard count: groups are split into this many contiguous ranges,
    #: each a separately checkpointed unit of work.
    shards: int = 16

    def __post_init__(self) -> None:
        if self.mission_years <= 0:
            raise ValueError(f"mission_years must be positive: {self.mission_years}")
        if not self.policies:
            raise ValueError("campaign needs at least one scrub policy")
        names = [policy.name for policy in self.policies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate policy names: {names}")
        if not 1 <= self.shards:
            raise ValueError(f"shards must be >= 1: {self.shards}")

    def shard_ranges(self) -> List[Tuple[int, int]]:
        """Balanced contiguous ``(group_start, group_count)`` ranges."""
        shards = min(self.shards, self.fleet.groups)
        base, extra = divmod(self.fleet.groups, shards)
        ranges = []
        start = 0
        for shard in range(shards):
            count = base + (1 if shard < extra else 0)
            ranges.append((start, count))
            start += count
        return ranges


def campaign_digest(spec: CampaignSpec) -> str:
    """Content digest identifying a campaign spec exactly."""
    return hashlib.sha256(repr(canonicalize(spec)).encode()).hexdigest()


def group_seed(campaign_seed: int, group_index: int) -> int:
    """Failure-simulation seed for one group.

    Derived from the campaign seed and the group index only — never
    from shard layout, so resharding or resuming cannot perturb a
    single draw, and deliberately *not* from the policy: a scrub
    policy cannot change when drives physically fail, so every policy
    replays the same whole-drive failure draws for the same group
    (common random numbers), and the only divergence between policies
    is the latent-error exposure their windows admit.  Policy
    comparisons therefore difference out the failure noise exactly.
    """
    return derive_seed(derive_seed(campaign_seed, _GROUP_STREAM), group_index)


@dataclass(frozen=True)
class GroupProfile:
    """Resolved per-group parameters (deterministic per seed+index)."""

    class_index: int
    preset: str
    mttf_hours: float
    lse_burst_rate_per_hour: float
    age_years: float


def group_profile(
    fleet: FleetSpec, campaign_seed: int, group_index: int
) -> GroupProfile:
    """Which drives group ``group_index`` got, and how worn they are.

    The class draw (by weight) and the age jitter come from a dedicated
    seed substream, and wear-out inflates the failure rate
    multiplicatively: ``lam = (1/mttf) * (1 + wearout * age)``.
    """
    rng = np.random.default_rng(
        derive_seed(derive_seed(campaign_seed, _PROFILE_STREAM), group_index)
    )
    weights = np.array([cls.weight for cls in fleet.classes])
    pick = rng.random() * float(weights.sum())
    class_index = int(np.searchsorted(np.cumsum(weights), pick, side="right"))
    class_index = min(class_index, len(fleet.classes) - 1)
    cls = fleet.classes[class_index]
    age = cls.age_years + rng.random() * fleet.age_spread_years
    accel = 1.0 + cls.wearout_per_year * age
    return GroupProfile(
        class_index=class_index,
        preset=cls.preset,
        mttf_hours=cls.mttf_hours / accel,
        lse_burst_rate_per_hour=cls.lse_burst_rate_per_hour,
        age_years=age,
    )


# -- JSON round-trip ---------------------------------------------------------
#
# The orchestration service (repro.service) accepts campaign specs as
# JSON over HTTP and persists them in its job queue.  The round-trip
# must preserve the campaign digest exactly: a spec submitted over the
# wire has to dedup against the same spec built in-process, and the
# journal refuses digests that drift.  That is why ``spec_from_dict``
# coerces every numeric field to its declared dataclass type — JSON has
# no int/float distinction for whole numbers, but ``canonicalize``
# does (``6`` and ``6.0`` hash differently).

_FLOAT_FIELDS = frozenset(
    {
        "weight", "mttf_hours", "lse_burst_rate_per_hour", "age_years",
        "wearout_per_year", "mttr_hours", "spare_delay_hours",
        "age_spread_years", "period_hours", "burst_length",
        "mission_years",
    }
)
_OPTIONAL_FLOAT_FIELDS = frozenset({"latent_window_hours"})
_INT_FIELDS = frozenset(
    {"groups", "disks_per_group", "regions", "model_sectors", "seed", "shards"}
)
_STR_FIELDS = frozenset({"preset", "raid_level", "name", "algorithm"})


def spec_to_dict(spec: CampaignSpec) -> dict:
    """JSON-safe dict form of a campaign spec (see :func:`spec_from_dict`).

    Pure data: nested dicts and lists of primitives only, so the result
    survives ``json.dumps``/``loads`` and reconstructs to a spec with
    the *same* :func:`campaign_digest`.
    """
    payload = dataclasses.asdict(spec)
    payload["fleet"]["classes"] = [
        dict(cls) for cls in payload["fleet"]["classes"]
    ]
    payload["policies"] = [dict(policy) for policy in payload["policies"]]
    return payload


def _coerce_field(cls_name: str, name: str, value: Any) -> Any:
    """Coerce one JSON value to the field's declared spec type."""
    label = f"{cls_name}.{name}"
    if name in _FLOAT_FIELDS:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{label} must be a number, got {value!r}")
        return float(value)
    if name in _OPTIONAL_FLOAT_FIELDS:
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"{label} must be a number or null, got {value!r}")
        return float(value)
    if name in _INT_FIELDS:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{label} must be an integer, got {value!r}")
        return int(value)
    if name in _STR_FIELDS:
        if not isinstance(value, str):
            raise ValueError(f"{label} must be a string, got {value!r}")
        return value
    raise ValueError(f"unknown field {label}")


def _build(cls, data: Any, label: str, **overrides):
    """Construct a spec dataclass from a JSON mapping, strictly.

    Unknown keys are a :class:`ValueError` (the service maps that to
    HTTP 400), never silently dropped — a typoed field that changed
    nothing would otherwise dedup against the wrong campaign.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{label} must be a JSON object, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"{label}: unknown fields {unknown}")
    kwargs = dict(overrides)
    for name, value in data.items():
        if name in kwargs:
            continue
        kwargs[name] = _coerce_field(cls.__name__, name, value)
    return cls(**kwargs)


def spec_from_dict(data: Any) -> CampaignSpec:
    """Reconstruct a :class:`CampaignSpec` from :func:`spec_to_dict` form.

    Raises :class:`ValueError` on anything malformed — wrong shapes,
    unknown fields, out-of-range values (the dataclass validators run
    as usual).  Digest-stable: ``spec_from_dict(spec_to_dict(s))`` has
    the same :func:`campaign_digest` as ``s``, including through a JSON
    round-trip.
    """
    if not isinstance(data, dict):
        raise ValueError(
            f"campaign spec must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(
        set(data) - {"fleet", "policies", "mission_years", "seed", "shards"}
    )
    if unknown:
        raise ValueError(f"campaign spec: unknown fields {unknown}")
    missing = sorted({"fleet", "policies"} - set(data))
    if missing:
        raise ValueError(f"campaign spec: missing fields {missing}")
    fleet_data = data.get("fleet", {})
    if not isinstance(fleet_data, dict):
        raise ValueError("fleet must be a JSON object")
    classes_data = fleet_data.get("classes")
    fleet_kwargs = {}
    if classes_data is not None:
        if not isinstance(classes_data, list) or not classes_data:
            raise ValueError("fleet.classes must be a non-empty list")
        fleet_kwargs["classes"] = tuple(
            _build(DriveClass, cls, f"fleet.classes[{index}]")
            for index, cls in enumerate(classes_data)
        )
    fleet = _build(
        FleetSpec,
        {k: v for k, v in fleet_data.items() if k != "classes"},
        "fleet",
        **fleet_kwargs,
    )
    spec_kwargs: dict = {"fleet": fleet}
    policies_data = data.get("policies")
    if policies_data is not None:
        if not isinstance(policies_data, list) or not policies_data:
            raise ValueError("policies must be a non-empty list")
        spec_kwargs["policies"] = tuple(
            _build(ScrubPolicySpec, policy, f"policies[{index}]")
            for index, policy in enumerate(policies_data)
        )
    for name in ("mission_years", "seed", "shards"):
        if name in data:
            spec_kwargs[name] = _coerce_field("CampaignSpec", name, data[name])
    return CampaignSpec(**spec_kwargs)


def resolve_latent_windows(spec: CampaignSpec) -> Tuple[float, ...]:
    """Mean latent error time per policy, hours.

    For each policy, the actual scrub order's sector-visit schedule is
    computed over the model disk with the scrub rate that makes one
    pass take ``period_hours``; the MLET over a seeded burst sample
    (:func:`repro.core.mlet.mean_latent_error_time`) is the policy's
    latent window.  Deterministic given the spec, so both the shard
    tasks and the closed-form calibration see the same number.
    """
    from repro.core import SequentialScrub, StaggeredScrub
    from repro.core.mlet import (
        generate_bursts,
        mean_latent_error_time,
        sector_visit_times,
    )
    from repro.disk.commands import SECTOR_SIZE

    windows = []
    for index, policy in enumerate(spec.policies):
        if policy.latent_window_hours is not None:
            windows.append(float(policy.latent_window_hours))
            continue
        if policy.algorithm == "staggered":
            algorithm = StaggeredScrub(policy.regions)
        else:
            algorithm = SequentialScrub()
        period_s = policy.period_hours * 3600.0
        rate = policy.model_sectors * SECTOR_SIZE / period_s
        visits, pass_duration = sector_visit_times(
            algorithm, policy.model_sectors, 128, rate
        )
        rng = np.random.default_rng(
            derive_seed(derive_seed(spec.seed, _POLICY_STREAM + index), 0xB0B)
        )
        bursts = generate_bursts(
            rng,
            policy.model_sectors,
            count=2000,
            horizon=10 * pass_duration,
            mean_length=policy.burst_length,
            max_length=int(policy.burst_length * 16),
        )
        mlet_s = mean_latent_error_time(visits, pass_duration, bursts)
        windows.append(mlet_s / 3600.0)
    return tuple(windows)
