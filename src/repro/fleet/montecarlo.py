"""The fleet shard kernel: Monte-Carlo drive-years, one shard at a time.

:func:`fleet_shard_task` is the campaign's unit of distributed work: a
module-level pure function of its parameters, which makes it

* **poolable** — it pickles across process boundaries for
  :class:`~repro.parallel.supervise.SupervisedRunner`;
* **checkpointable** — its result caches under a content-addressed key
  (:class:`~repro.parallel.cache.ResultCache` over the canonicalized
  :class:`~repro.fleet.spec.CampaignSpec` + shard range), which is the
  whole resume story;
* **reproducible** — every random draw comes from
  :func:`~repro.fleet.spec.group_seed`, so results depend only on
  (spec, group index), never on shard layout, retries, worker count or
  interruption history.

The per-group model is the renewal cycle shared with the closed-form
predictor (:func:`repro.raid.reliability.group_reliability`): wait for
a whole-drive failure, sit degraded for the spare-attach delay, rebuild
for MTTR; lose data to a second failure inside the exposure window or
to a latent sector error met by the rebuild read, whose probability the
scrub policy sets through its latent window.  Each group ends the
mission in exactly one state — ``ok``, ``degraded``, ``rebuilding`` or
``lost`` — and the shard result carries the full conservation ledger
that :func:`repro.verify.fleet.check_shard_result` audits.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Tuple

import numpy as np

from repro.fleet.spec import CampaignSpec, group_profile, group_seed
from repro.obs.worker import PROBE
from repro.raid.reliability import HOURS_PER_YEAR, lse_exposure_probability
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["fleet_shard_task", "simulate_group"]


def simulate_group(
    rng: np.random.Generator,
    disks: int,
    redundancy: int,
    mttf_hours: float,
    mttr_hours: float,
    spare_delay_hours: float,
    p_lse: float,
    mission_hours: float,
) -> Dict[str, float]:
    """One redundancy group's mission: events until loss or mission end.

    Returns the group's ledger: final ``state``, observed hours (the
    group's clock stops at loss), drive failures, completed rebuilds,
    and the loss mode (``double`` / ``lse`` / ``unprotected``) if any.
    """
    lam = 1.0 / mttf_hours
    window = spare_delay_hours + mttr_hours
    t = 0.0
    failures = 0
    rebuilds = 0
    state = "ok"
    loss_mode = None
    while True:
        wait = rng.exponential(1.0 / (disks * lam))
        if t + wait >= mission_hours:
            t = mission_hours
            break
        t += wait
        failures += 1
        if redundancy == 0:
            state = "lost"
            loss_mode = "unprotected"
            break
        # Exposure window: degraded (spare attach) then rebuilding.
        second = rng.exponential(1.0 / ((disks - 1) * lam))
        if second < window:
            if t + second >= mission_hours:
                # Mission ended while exposed, before the second failure.
                exposed = mission_hours - t
                t = mission_hours
                state = (
                    "degraded" if exposed < spare_delay_hours else "rebuilding"
                )
                break
            failures += 1
            t += second
            state = "lost"
            loss_mode = "double"
            break
        if t + spare_delay_hours >= mission_hours:
            t = mission_hours
            state = "degraded"
            break
        if t + window >= mission_hours:
            t = mission_hours
            state = "rebuilding"
            break
        t += window
        # The rebuild read sweeps the survivors; an unrepaired latent
        # error there is unrecoverable (the paper's Section I scenario).
        if rng.random() < p_lse:
            state = "lost"
            loss_mode = "lse"
            break
        rebuilds += 1
    return {
        "state": state,
        "loss_mode": loss_mode,
        "observed_hours": t,
        "drive_failures": failures,
        "rebuilds_completed": rebuilds,
    }


def fleet_shard_task(
    spec: CampaignSpec,
    shard_index: int,
    group_start: int,
    group_count: int,
    latent_windows: Tuple[float, ...],
) -> dict:
    """Simulate groups ``[group_start, group_start+group_count)``.

    ``latent_windows`` is ``resolve_latent_windows(spec)``, precomputed
    once by the campaign runner so shards skip the schedule replay; it
    is a pure function of the spec, so passing it keeps the cache key
    honest.  The result is a plain dict (pickle/JSON-safe) with one
    ledger per policy plus a telemetry snapshot for fleet-level
    merging.
    """
    if group_count <= 0:
        raise ValueError(f"group_count must be positive: {group_count}")
    if len(latent_windows) != len(spec.policies):
        raise ValueError(
            f"{len(latent_windows)} latent windows for "
            f"{len(spec.policies)} policies"
        )
    fleet = spec.fleet
    mission_hours = spec.mission_years * HOURS_PER_YEAR
    registry = MetricsRegistry()
    policies = []
    phases = []
    # One probe step per (policy, group): the heartbeat thread samples
    # these two integers, nothing here ever blocks on observability.
    PROBE.reset(group_count * len(spec.policies))
    for policy_index, policy in enumerate(spec.policies):
        window = latent_windows[policy_index]
        phase_started = time.perf_counter()
        states = {"ok": 0, "degraded": 0, "rebuilding": 0, "lost": 0}
        losses = {"double": 0, "lse": 0, "unprotected": 0}
        drive_failures = 0
        rebuilds_completed = 0
        group_hours = []
        for group_index in range(group_start, group_start + group_count):
            profile = group_profile(fleet, spec.seed, group_index)
            p_lse = lse_exposure_probability(
                fleet.disks_per_group - 1,
                profile.lse_burst_rate_per_hour,
                window,
            )
            rng = np.random.default_rng(group_seed(spec.seed, group_index))
            ledger = simulate_group(
                rng,
                fleet.disks_per_group,
                fleet.redundancy,
                profile.mttf_hours,
                fleet.mttr_hours,
                fleet.spare_delay_hours,
                p_lse,
                mission_hours,
            )
            states[ledger["state"]] += 1
            if ledger["loss_mode"] is not None:
                losses[ledger["loss_mode"]] += 1
                registry.histogram("fleet.time_to_loss_years").observe(
                    ledger["observed_hours"] / HOURS_PER_YEAR
                )
            drive_failures += ledger["drive_failures"]
            rebuilds_completed += ledger["rebuilds_completed"]
            group_hours.append(ledger["observed_hours"])
            PROBE.advance()
        # fsum is exactly rounded, so the shard sum — and the campaign
        # merge re-summing the per-group hours — is independent of how
        # the fleet happens to be partitioned into shards.
        observed_group_hours = math.fsum(group_hours)
        total_losses = sum(losses.values())
        registry.counter("fleet.groups").inc(group_count)
        registry.counter("fleet.drive_failures").inc(drive_failures)
        registry.counter("fleet.rebuilds_completed").inc(rebuilds_completed)
        registry.counter("fleet.losses").inc(total_losses)
        registry.counter("fleet.losses.double").inc(losses["double"])
        registry.counter("fleet.losses.lse").inc(losses["lse"])
        policies.append(
            {
                "name": policy.name,
                "groups": group_count,
                "losses": total_losses,
                "losses_by_mode": dict(losses),
                "drive_failures": drive_failures,
                "rebuilds_completed": rebuilds_completed,
                "observed_group_hours": observed_group_hours,
                "drive_hours": observed_group_hours * fleet.disks_per_group,
                "group_hours": group_hours,
                "states": dict(states),
                "latent_window_hours": float(window),
            }
        )
        phases.append(
            {
                "policy": policy.name,
                "wall_s": time.perf_counter() - phase_started,
            }
        )
    # "phases" is deliberately *outside* the telemetry snapshot: wall
    # timings are non-deterministic, and keeping them out of the
    # metrics keeps merged campaign telemetry (and metrics_dict)
    # bit-identical across runs, shard layouts and monitor settings.
    return {
        "shard": int(shard_index),
        "group_start": int(group_start),
        "group_count": int(group_count),
        "policies": policies,
        "telemetry": {"metrics": registry.snapshot()},
        "phases": phases,
    }
