"""Idle-interval extraction from arrival traces.

Block traces record *arrivals*; idleness additionally depends on how
long each request keeps the disk busy.  Following the paper's analysis
methodology, we reconstruct busy periods with a service-time model and
report the gaps between them.  The recurrence

    busy_i = max(busy_{i-1}, t_i) + s_i

is evaluated in closed form (``busy_i = S_i + max_j (t_j - S_{j-1})``
with ``S`` the service prefix sum), so extraction is a handful of
vectorised passes even for multi-million-request traces.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.traces.record import Trace

#: Default per-request service model: fixed positioning plus transfer.
DEFAULT_POSITIONING = 0.004  # seconds
DEFAULT_TRANSFER_RATE = 100e6  # bytes/second


def service_times(
    sectors: np.ndarray,
    positioning: float = DEFAULT_POSITIONING,
    transfer_rate: float = DEFAULT_TRANSFER_RATE,
) -> np.ndarray:
    """Nominal service time per request: positioning + size/rate."""
    if positioning < 0 or transfer_rate <= 0:
        raise ValueError("invalid service model parameters")
    return positioning + np.asarray(sectors, dtype=float) * 512.0 / transfer_rate


def idle_intervals(
    times: np.ndarray,
    service: Optional[np.ndarray] = None,
    min_duration: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute idle intervals from arrival times and service times.

    Parameters
    ----------
    times:
        Non-decreasing arrival times.
    service:
        Per-request service times; a scalar default of
        ``DEFAULT_POSITIONING`` per request if omitted.
    min_duration:
        Discard intervals shorter than this.

    Returns
    -------
    (starts, durations):
        Idle interval start times and lengths.  An interval starts when
        the disk drains and ends at the next arrival.
    """
    times = np.asarray(times, dtype=float)
    if len(times) < 2:
        return np.zeros(0), np.zeros(0)
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    if service is None:
        service = np.full(len(times), DEFAULT_POSITIONING)
    else:
        service = np.asarray(service, dtype=float)
        if len(service) != len(times):
            raise ValueError("service must match times in length")
        if np.any(service < 0):
            raise ValueError("service times must be non-negative")

    prefix = np.cumsum(service)
    prior = np.concatenate(([0.0], prefix[:-1]))
    busy_until = prefix + np.maximum.accumulate(times - prior)

    starts = busy_until[:-1]
    durations = times[1:] - busy_until[:-1]
    mask = durations > max(min_duration, 0.0)
    return starts[mask], durations[mask]


def idle_intervals_from_trace(
    trace: Trace,
    positioning: float = DEFAULT_POSITIONING,
    transfer_rate: float = DEFAULT_TRANSFER_RATE,
    min_duration: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Idle intervals of a :class:`Trace` under the nominal service model."""
    service = service_times(trace.sectors, positioning, transfer_rate)
    return idle_intervals(trace.times, service, min_duration)
