"""Idle-interval extraction from arrival traces.

Block traces record *arrivals*; idleness additionally depends on how
long each request keeps the disk busy.  Following the paper's analysis
methodology, we reconstruct busy periods with a service-time model and
report the gaps between them.  The recurrence

    busy_i = max(busy_{i-1}, t_i) + s_i

is evaluated in closed form (``busy_i = S_i + max_j (t_j - S_{j-1})``
with ``S`` the service prefix sum), so extraction is a handful of
vectorised passes even for multi-million-request traces.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.traces.record import Trace

#: Default per-request service model: fixed positioning plus transfer.
DEFAULT_POSITIONING = 0.004  # seconds
DEFAULT_TRANSFER_RATE = 100e6  # bytes/second


def service_times(
    sectors: np.ndarray,
    positioning: float = DEFAULT_POSITIONING,
    transfer_rate: float = DEFAULT_TRANSFER_RATE,
) -> np.ndarray:
    """Nominal service time per request: positioning + size/rate."""
    if positioning < 0 or transfer_rate <= 0:
        raise ValueError("invalid service model parameters")
    return positioning + np.asarray(sectors, dtype=float) * 512.0 / transfer_rate


def idle_intervals(
    times: np.ndarray,
    service: Optional[np.ndarray] = None,
    min_duration: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute idle intervals from arrival times and service times.

    Parameters
    ----------
    times:
        Non-decreasing arrival times.
    service:
        Per-request service times; a scalar default of
        ``DEFAULT_POSITIONING`` per request if omitted.
    min_duration:
        Discard intervals shorter than this.

    Returns
    -------
    (starts, durations):
        Idle interval start times and lengths.  An interval starts when
        the disk drains and ends at the next arrival.
    """
    times = np.asarray(times, dtype=float)
    if len(times) < 2:
        return np.zeros(0), np.zeros(0)
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    if service is None:
        service = np.full(len(times), DEFAULT_POSITIONING)
    else:
        service = np.asarray(service, dtype=float)
        if len(service) != len(times):
            raise ValueError("service must match times in length")
        if np.any(service < 0):
            raise ValueError("service times must be non-negative")

    prefix = np.cumsum(service)
    prior = np.concatenate(([0.0], prefix[:-1]))
    busy_until = prefix + np.maximum.accumulate(times - prior)

    starts = busy_until[:-1]
    durations = times[1:] - busy_until[:-1]
    mask = durations > max(min_duration, 0.0)
    return starts[mask], durations[mask]


def idle_intervals_streaming(
    chunks,
    positioning: float = DEFAULT_POSITIONING,
    transfer_rate: float = DEFAULT_TRANSFER_RATE,
    min_duration: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Idle intervals from a stream of time-ordered trace chunks.

    Accepts any iterable of :class:`Trace` chunks (in particular a
    :class:`~repro.traces.store.StoredTrace`), holding only one chunk's
    columns plus the O(intervals) output resident.  The busy recurrence
    carries across chunk boundaries: with ``B`` the busy-until time of
    the previous chunk's last request, the closed form becomes

        busy_j = S_j + cummax(max(B, t_0), t_1 - S_0, ..., t_j - S_{j-1})

    with ``S`` the chunk-local service prefix sum, and the boundary gap
    ``t_0 - B`` is emitted like any other interval.  For a single chunk
    this reduces bit-identically to :func:`idle_intervals`; across
    chunks the values agree up to floating-point regrouping of the
    service prefix (the store's uniform re-chunking makes the result
    deterministic for a given chunk size).
    """
    floor = max(min_duration, 0.0)
    starts_parts = []
    durations_parts = []
    busy_last: Optional[float] = None
    for chunk in chunks:
        times = np.asarray(chunk.times, dtype=float)
        if len(times) == 0:
            continue
        service = service_times(chunk.sectors, positioning, transfer_rate)
        prefix = np.cumsum(service)
        prior = np.concatenate(([0.0], prefix[:-1]))
        peaks = times - prior
        if busy_last is not None:
            gap = times[0] - busy_last
            if gap > floor:
                starts_parts.append(np.array([busy_last]))
                durations_parts.append(np.array([gap]))
            peaks[0] = max(peaks[0], busy_last)
        busy = prefix + np.maximum.accumulate(peaks)
        durations = times[1:] - busy[:-1]
        mask = durations > floor
        starts_parts.append(busy[:-1][mask])
        durations_parts.append(durations[mask])
        busy_last = float(busy[-1])
    if not starts_parts:
        return np.zeros(0), np.zeros(0)
    return np.concatenate(starts_parts), np.concatenate(durations_parts)


def idle_intervals_from_trace(
    trace: Trace,
    positioning: float = DEFAULT_POSITIONING,
    transfer_rate: float = DEFAULT_TRANSFER_RATE,
    min_duration: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Idle intervals of a :class:`Trace` under the nominal service model."""
    service = service_times(trace.sectors, positioning, transfer_rate)
    return idle_intervals(trace.times, service, min_duration)
