"""Reading and writing SNIA-style CSV block traces.

The SNIA IOTTA repository distributes block traces in several related
CSV dialects; the common core (also used by the MSR Cambridge traces)
is one request per line with a timestamp, an R/W flag, a byte offset
and a byte count.  This module reads that shape and a simpler
canonical dialect, so users with access to the real traces can feed
them to the rest of the library, and synthetic traces can round-trip
to disk.

Canonical dialect (written by :func:`write_csv_trace`)::

    # name: MSRsrc11-like
    # description: Source control
    # capacity_sectors: 585937500
    time,lbn,sectors,op
    0.000125,1048576,16,R

MSR Cambridge dialect (auto-detected: 7 columns, no header)::

    timestamp,hostname,disknum,type,offset_bytes,size_bytes,response_us

with ``timestamp`` in Windows 100 ns ticks.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.traces.record import Trace

#: Windows FILETIME ticks per second (MSR Cambridge timestamps).
_TICKS_PER_SECOND = 10_000_000
_SECTOR = 512


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_csv_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the canonical dialect (gzip if path ends .gz)."""
    with _open(path, "w") as fh:
        if trace.name:
            fh.write(f"# name: {trace.name}\n")
        if trace.description:
            fh.write(f"# description: {trace.description}\n")
        if trace.capacity_sectors is not None:
            fh.write(f"# capacity_sectors: {trace.capacity_sectors}\n")
        fh.write("time,lbn,sectors,op\n")
        if len(trace) == 0:
            return
        # Format column-at-once, then emit one string: orders of
        # magnitude fewer Python-level operations than a per-row loop.
        columns = (
            np.char.mod("%.6f", trace.times),
            np.char.mod("%d", trace.lbns),
            np.char.mod("%d", trace.sectors),
            np.where(trace.is_write, "W", "R"),
        )
        fh.write("\n".join(map(",".join, zip(*columns))))
        fh.write("\n")


def read_csv_trace(path: Union[str, Path], name: Optional[str] = None) -> Trace:
    """Read a canonical or MSR-dialect CSV trace (auto-detected)."""
    meta = {"name": name or Path(path).stem, "description": "",
            "capacity_sectors": None}
    rows: List[List[str]] = []
    header: Optional[List[str]] = None
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                _parse_meta(line, meta)
                continue
            fields = line.split(",")
            if header is None and _looks_like_header(fields):
                header = [f.strip().lower() for f in fields]
                continue
            rows.append(fields)
    if not rows:
        return Trace(
            np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool),
            **meta,
        )
    if header is not None:
        return _parse_canonical(rows, header, meta)
    if len(rows[0]) >= 6:
        return _parse_msr(rows, meta)
    raise ValueError(
        f"unrecognised trace dialect in {path}: {len(rows[0])} columns, no header"
    )


def _parse_meta(line: str, meta: dict) -> None:
    body = line.lstrip("#").strip()
    if ":" not in body:
        return
    key, _, value = body.partition(":")
    key = key.strip()
    value = value.strip()
    if key == "name":
        meta["name"] = value
    elif key == "description":
        meta["description"] = value
    elif key == "capacity_sectors":
        meta["capacity_sectors"] = int(value)


def _looks_like_header(fields: List[str]) -> bool:
    try:
        float(fields[0])
        return False
    except ValueError:
        return True


def _parse_canonical(rows, header, meta) -> Trace:
    index = {name: i for i, name in enumerate(header)}
    for required in ("time", "lbn", "sectors", "op"):
        if required not in index:
            raise ValueError(f"canonical trace missing column {required!r}")
    # One transpose, then NumPy converts each column in a single C pass.
    columns = list(zip(*rows))
    times = np.asarray(columns[index["time"]], dtype=float)
    lbns = np.asarray(columns[index["lbn"]], dtype=np.int64)
    sectors = np.asarray(columns[index["sectors"]], dtype=np.int64)
    ops = np.char.upper(np.char.strip(np.asarray(columns[index["op"]])))
    is_write = np.char.startswith(ops, "W")
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )


def _parse_msr(rows, meta) -> Trace:
    # timestamp,hostname,disknum,type,offset,size[,response]
    columns = list(zip(*rows))
    ticks = np.asarray(columns[0], dtype=np.int64)
    times = (ticks - ticks.min()) / _TICKS_PER_SECOND
    ops = np.char.lower(np.char.strip(np.asarray(columns[3])))
    is_write = np.char.startswith(ops, "w")
    lbns = np.asarray(columns[4], dtype=np.int64) // _SECTOR
    sectors = np.maximum(1, np.asarray(columns[5], dtype=np.int64) // _SECTOR)
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )
