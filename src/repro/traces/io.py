"""Reading and writing SNIA-style CSV block traces.

The SNIA IOTTA repository distributes block traces in several related
CSV dialects; the common core (also used by the MSR Cambridge traces)
is one request per line with a timestamp, an R/W flag, a byte offset
and a byte count.  This module reads that shape and a simpler
canonical dialect, so users with access to the real traces can feed
them to the rest of the library, and synthetic traces can round-trip
to disk.

Canonical dialect (written by :func:`write_csv_trace`)::

    # name: MSRsrc11-like
    # description: Source control
    # capacity_sectors: 585937500
    time,lbn,sectors,op
    0.000125,1048576,16,R

MSR Cambridge dialect (auto-detected: 7 columns, no header)::

    timestamp,hostname,disknum,type,offset_bytes,size_bytes,response_us

with ``timestamp`` in Windows 100 ns ticks.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.traces.record import Trace

#: Windows FILETIME ticks per second (MSR Cambridge timestamps).
_TICKS_PER_SECOND = 10_000_000
_SECTOR = 512


class TraceFormatError(ValueError):
    """A trace CSV the parser cannot accept, pinpointed to its line.

    Raised for malformed rows (wrong column count), non-numeric fields,
    negative offsets/sizes/timestamps and unknown operation codes; the
    message always names the file and 1-based line number so a bad row
    in a multi-GB trace can be found without bisecting the file.
    """

    def __init__(self, path, lineno: int, message: str) -> None:
        super().__init__(f"{path}:{lineno}: {message}")
        self.path = str(path)
        self.lineno = lineno


def _numeric_column(values, linenos, path, what: str, dtype) -> np.ndarray:
    """Batch-convert one column, blaming the exact line on failure."""
    try:
        return np.asarray(values, dtype=dtype)
    except (ValueError, OverflowError):
        caster = float if dtype is float else int
        for lineno, value in zip(linenos, values):
            try:
                caster(value)
            except (ValueError, OverflowError):
                raise TraceFormatError(
                    path, lineno, f"non-numeric {what}: {value!r}"
                ) from None
        raise  # every field converts alone; re-raise the batch failure


def _require_min(array, linenos, path, what: str, minimum: int) -> None:
    bad = np.flatnonzero(array < minimum)
    if bad.size:
        first = int(bad[0])
        kind = "negative" if minimum == 0 else "non-positive"
        raise TraceFormatError(
            path, int(linenos[first]), f"{kind} {what}: {array[first]}"
        )


def _require_ops(ops, prefixes, linenos, path) -> None:
    known = np.zeros(len(ops), dtype=bool)
    for prefix in prefixes:
        known |= np.char.startswith(ops, prefix)
    bad = np.flatnonzero(~known)
    if bad.size:
        first = int(bad[0])
        raise TraceFormatError(
            path, int(linenos[first]), f"unknown operation: {ops[first]!r}"
        )


#: Read-ahead for compressed traces.  ``gzip.open(path, "rt")`` decodes
#: through an unbuffered ``GzipFile``, so every line iteration pays a
#: small-read into the decompressor; a 1 MiB ``BufferedReader`` between
#: the two turns that into block-sized reads.
_GZIP_BUFFER = 1 << 20


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        if mode == "r":
            raw = gzip.open(path, "rb")
            return io.TextIOWrapper(
                io.BufferedReader(raw, _GZIP_BUFFER), encoding="utf-8"
            )
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_csv_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the canonical dialect (gzip if path ends .gz)."""
    with _open(path, "w") as fh:
        if trace.name:
            fh.write(f"# name: {trace.name}\n")
        if trace.description:
            fh.write(f"# description: {trace.description}\n")
        if trace.capacity_sectors is not None:
            fh.write(f"# capacity_sectors: {trace.capacity_sectors}\n")
        fh.write("time,lbn,sectors,op\n")
        if len(trace) == 0:
            return
        # Format column-at-once, then emit one string: orders of
        # magnitude fewer Python-level operations than a per-row loop.
        columns = (
            np.char.mod("%.6f", trace.times),
            np.char.mod("%d", trace.lbns),
            np.char.mod("%d", trace.sectors),
            np.where(trace.is_write, "W", "R"),
        )
        fh.write("\n".join(map(",".join, zip(*columns))))
        fh.write("\n")


def read_csv_trace(
    path: Union[str, Path],
    name: Optional[str] = None,
    max_requests: Optional[int] = None,
) -> Trace:
    """Read a canonical or MSR-dialect CSV trace (auto-detected).

    Parameters
    ----------
    max_requests:
        Stop parsing after this many data rows (first rows in file
        order).  An experiment with a fixed horizon rarely needs more
        than the trace's prefix, and for a multi-GB file stopping the
        *parse* early — not just the replay — is the difference between
        seconds and minutes.

    Raises
    ------
    TraceFormatError
        On any malformed row — wrong column count, non-numeric field,
        negative offset/size/timestamp, unknown operation — naming the
        offending line number.
    """
    if max_requests is not None and max_requests < 0:
        raise ValueError(f"max_requests must be non-negative: {max_requests}")
    meta = {"name": name or Path(path).stem, "description": "",
            "capacity_sectors": None}
    rows: List[List[str]] = []
    linenos: List[int] = []
    header: Optional[List[str]] = None
    header_line = 0
    with _open(path, "r") as fh:
        if max_requests != 0:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    _parse_meta(line, meta, path, lineno)
                    continue
                fields = line.split(",")
                if header is None and not rows and _looks_like_header(fields):
                    header = [f.strip().lower() for f in fields]
                    header_line = lineno
                    continue
                rows.append(fields)
                linenos.append(lineno)
                if max_requests is not None and len(rows) >= max_requests:
                    break
    if not rows:
        return Trace(
            np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool),
            **meta,
        )
    if header is not None:
        _check_widths(rows, linenos, len(header), path, "header")
        return _parse_canonical(rows, linenos, header, header_line, meta, path)
    if len(rows[0]) >= 6:
        _check_widths(rows, linenos, len(rows[0]), path, "first row")
        return _parse_msr(rows, linenos, meta, path)
    raise TraceFormatError(
        path, linenos[0],
        f"unrecognised trace dialect: {len(rows[0])} columns, no header",
    )


def _check_widths(rows, linenos, expected: int, path, against: str) -> None:
    for fields, lineno in zip(rows, linenos):
        if len(fields) != expected:
            raise TraceFormatError(
                path, lineno,
                f"malformed row: {len(fields)} columns where the "
                f"{against} has {expected}",
            )


def _parse_meta(line: str, meta: dict, path, lineno: int) -> None:
    body = line.lstrip("#").strip()
    if ":" not in body:
        return
    key, _, value = body.partition(":")
    key = key.strip()
    value = value.strip()
    if key == "name":
        meta["name"] = value
    elif key == "description":
        meta["description"] = value
    elif key == "capacity_sectors":
        try:
            meta["capacity_sectors"] = int(value)
        except ValueError:
            raise TraceFormatError(
                path, lineno, f"non-numeric capacity_sectors: {value!r}"
            ) from None


def _looks_like_header(fields: List[str]) -> bool:
    try:
        float(fields[0])
        return False
    except ValueError:
        return True


def _parse_canonical(rows, linenos, header, header_line, meta, path) -> Trace:
    index = {name: i for i, name in enumerate(header)}
    for required in ("time", "lbn", "sectors", "op"):
        if required not in index:
            raise TraceFormatError(
                path, header_line, f"canonical trace missing column {required!r}"
            )
    # One transpose, then NumPy converts each column in a single C pass.
    columns = list(zip(*rows))
    times = _numeric_column(columns[index["time"]], linenos, path, "time", float)
    lbns = _numeric_column(columns[index["lbn"]], linenos, path, "lbn", np.int64)
    sectors = _numeric_column(
        columns[index["sectors"]], linenos, path, "sectors", np.int64
    )
    _require_min(times, linenos, path, "time", 0)
    _require_min(lbns, linenos, path, "lbn", 0)
    _require_min(sectors, linenos, path, "sectors", 1)
    ops = np.char.upper(np.char.strip(np.asarray(columns[index["op"]])))
    _require_ops(ops, ("R", "W"), linenos, path)
    is_write = np.char.startswith(ops, "W")
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )


def _parse_msr(rows, linenos, meta, path, tick_base=None) -> Trace:
    # timestamp,hostname,disknum,type,offset,size[,response]
    columns = list(zip(*rows))
    ticks = _numeric_column(columns[0], linenos, path, "timestamp", np.int64)
    offsets = _numeric_column(
        columns[4], linenos, path, "offset_bytes", np.int64
    )
    sizes = _numeric_column(columns[5], linenos, path, "size_bytes", np.int64)
    _require_min(ticks, linenos, path, "timestamp", 0)
    _require_min(offsets, linenos, path, "offset_bytes", 0)
    _require_min(sizes, linenos, path, "size_bytes", 0)
    ops = np.char.lower(np.char.strip(np.asarray(columns[3])))
    _require_ops(ops, ("r", "w"), linenos, path)
    is_write = np.char.startswith(ops, "w")
    # tick_base pins the epoch when parsing chunk-wise (the streamed
    # reader passes the first chunk's minimum so every chunk shares it).
    base = ticks.min() if tick_base is None else tick_base
    times = (ticks - base) / _TICKS_PER_SECOND
    lbns = offsets // _SECTOR
    sectors = np.maximum(1, sizes // _SECTOR)
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )


def iter_trace_chunks(
    path: Union[str, Path],
    chunk_requests: int = 65536,
    max_requests: Optional[int] = None,
    name: Optional[str] = None,
) -> Iterator[Trace]:
    """Stream a CSV trace as :class:`Trace` chunks in bounded memory.

    Yields traces of at most ``chunk_requests`` requests each, parsed
    incrementally, so a multi-GB SNIA trace feeds
    :class:`~repro.workloads.TraceReplayer` (which accepts a chunk
    iterable directly) without ever materialising the whole file.
    The file must be time-sorted — rows are only sorted *within* a
    chunk, and the replayer rejects chunk streams that go backwards in
    time.  For MSR-dialect traces, all chunks share the first chunk's
    minimum timestamp as the epoch, so a chunked parse of a sorted file
    equals :func:`read_csv_trace` column-for-column.

    ``max_requests`` bounds the total rows parsed, like
    :func:`read_csv_trace`.
    """
    if chunk_requests <= 0:
        raise ValueError(f"chunk_requests must be positive: {chunk_requests}")
    if max_requests is not None and max_requests < 0:
        raise ValueError(f"max_requests must be non-negative: {max_requests}")
    meta = {"name": name or Path(path).stem, "description": "",
            "capacity_sectors": None}
    rows: List[List[str]] = []
    linenos: List[int] = []
    header: Optional[List[str]] = None
    header_line = 0
    dialect: Optional[str] = None
    tick_base: Optional[int] = None
    total = 0

    def flush() -> Trace:
        nonlocal tick_base
        if dialect == "canonical":
            _check_widths(rows, linenos, len(header), path, "header")
            return _parse_canonical(rows, linenos, header, header_line, meta, path)
        _check_widths(rows, linenos, len(rows[0]), path, "first row")
        if tick_base is None:
            ticks = _numeric_column(
                [fields[0] for fields in rows], linenos, path,
                "timestamp", np.int64,
            )
            tick_base = int(ticks.min())
        return _parse_msr(rows, linenos, meta, path, tick_base=tick_base)

    with _open(path, "r") as fh:
        if max_requests != 0:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    _parse_meta(line, meta, path, lineno)
                    continue
                fields = line.split(",")
                if dialect is None:
                    if header is None and _looks_like_header(fields):
                        header = [f.strip().lower() for f in fields]
                        header_line = lineno
                        dialect = "canonical"
                        continue
                    if header is None:
                        if len(fields) < 6:
                            raise TraceFormatError(
                                path, lineno,
                                f"unrecognised trace dialect: {len(fields)} "
                                "columns, no header",
                            )
                        dialect = "msr"
                rows.append(fields)
                linenos.append(lineno)
                total += 1
                hit_cap = max_requests is not None and total >= max_requests
                if len(rows) >= chunk_requests or hit_cap:
                    yield flush()
                    rows = []
                    linenos = []
                if hit_cap:
                    return
    if rows:
        yield flush()
