"""Reading and writing SNIA-style CSV block traces.

The SNIA IOTTA repository distributes block traces in several related
CSV dialects; the common core (also used by the MSR Cambridge traces)
is one request per line with a timestamp, an R/W flag, a byte offset
and a byte count.  This module reads that shape and a simpler
canonical dialect, so users with access to the real traces can feed
them to the rest of the library, and synthetic traces can round-trip
to disk.

Canonical dialect (written by :func:`write_csv_trace`)::

    # name: MSRsrc11-like
    # description: Source control
    # capacity_sectors: 585937500
    time,lbn,sectors,op
    0.000125,1048576,16,R

MSR Cambridge dialect (auto-detected: 7 columns, no header)::

    timestamp,hostname,disknum,type,offset_bytes,size_bytes,response_us

with ``timestamp`` in Windows 100 ns ticks.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.traces.record import Trace

#: Windows FILETIME ticks per second (MSR Cambridge timestamps).
_TICKS_PER_SECOND = 10_000_000
_SECTOR = 512


class TraceFormatError(ValueError):
    """A trace CSV the parser cannot accept, pinpointed to its line.

    Raised for malformed rows (wrong column count), non-numeric fields,
    negative offsets/sizes/timestamps and unknown operation codes; the
    message always names the file and 1-based line number so a bad row
    in a multi-GB trace can be found without bisecting the file.
    """

    def __init__(self, path, lineno: int, message: str) -> None:
        super().__init__(f"{path}:{lineno}: {message}")
        self.path = str(path)
        self.lineno = lineno


def _numeric_column(values, linenos, path, what: str, dtype) -> np.ndarray:
    """Batch-convert one column, blaming the exact line on failure."""
    try:
        return np.asarray(values, dtype=dtype)
    except (ValueError, OverflowError):
        caster = float if dtype is float else int
        for lineno, value in zip(linenos, values):
            try:
                caster(value)
            except (ValueError, OverflowError):
                raise TraceFormatError(
                    path, lineno, f"non-numeric {what}: {value!r}"
                ) from None
        raise  # every field converts alone; re-raise the batch failure


def _require_min(array, linenos, path, what: str, minimum: int) -> None:
    bad = np.flatnonzero(array < minimum)
    if bad.size:
        first = int(bad[0])
        kind = "negative" if minimum == 0 else "non-positive"
        raise TraceFormatError(
            path, int(linenos[first]), f"{kind} {what}: {array[first]}"
        )


def _require_ops(ops, prefixes, linenos, path) -> None:
    known = np.zeros(len(ops), dtype=bool)
    for prefix in prefixes:
        known |= np.char.startswith(ops, prefix)
    bad = np.flatnonzero(~known)
    if bad.size:
        first = int(bad[0])
        raise TraceFormatError(
            path, int(linenos[first]), f"unknown operation: {ops[first]!r}"
        )


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_csv_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` in the canonical dialect (gzip if path ends .gz)."""
    with _open(path, "w") as fh:
        if trace.name:
            fh.write(f"# name: {trace.name}\n")
        if trace.description:
            fh.write(f"# description: {trace.description}\n")
        if trace.capacity_sectors is not None:
            fh.write(f"# capacity_sectors: {trace.capacity_sectors}\n")
        fh.write("time,lbn,sectors,op\n")
        if len(trace) == 0:
            return
        # Format column-at-once, then emit one string: orders of
        # magnitude fewer Python-level operations than a per-row loop.
        columns = (
            np.char.mod("%.6f", trace.times),
            np.char.mod("%d", trace.lbns),
            np.char.mod("%d", trace.sectors),
            np.where(trace.is_write, "W", "R"),
        )
        fh.write("\n".join(map(",".join, zip(*columns))))
        fh.write("\n")


def read_csv_trace(path: Union[str, Path], name: Optional[str] = None) -> Trace:
    """Read a canonical or MSR-dialect CSV trace (auto-detected).

    Raises
    ------
    TraceFormatError
        On any malformed row — wrong column count, non-numeric field,
        negative offset/size/timestamp, unknown operation — naming the
        offending line number.
    """
    meta = {"name": name or Path(path).stem, "description": "",
            "capacity_sectors": None}
    rows: List[List[str]] = []
    linenos: List[int] = []
    header: Optional[List[str]] = None
    header_line = 0
    with _open(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                _parse_meta(line, meta, path, lineno)
                continue
            fields = line.split(",")
            if header is None and not rows and _looks_like_header(fields):
                header = [f.strip().lower() for f in fields]
                header_line = lineno
                continue
            rows.append(fields)
            linenos.append(lineno)
    if not rows:
        return Trace(
            np.zeros(0), np.zeros(0, int), np.ones(0, int), np.zeros(0, bool),
            **meta,
        )
    if header is not None:
        _check_widths(rows, linenos, len(header), path, "header")
        return _parse_canonical(rows, linenos, header, header_line, meta, path)
    if len(rows[0]) >= 6:
        _check_widths(rows, linenos, len(rows[0]), path, "first row")
        return _parse_msr(rows, linenos, meta, path)
    raise TraceFormatError(
        path, linenos[0],
        f"unrecognised trace dialect: {len(rows[0])} columns, no header",
    )


def _check_widths(rows, linenos, expected: int, path, against: str) -> None:
    for fields, lineno in zip(rows, linenos):
        if len(fields) != expected:
            raise TraceFormatError(
                path, lineno,
                f"malformed row: {len(fields)} columns where the "
                f"{against} has {expected}",
            )


def _parse_meta(line: str, meta: dict, path, lineno: int) -> None:
    body = line.lstrip("#").strip()
    if ":" not in body:
        return
    key, _, value = body.partition(":")
    key = key.strip()
    value = value.strip()
    if key == "name":
        meta["name"] = value
    elif key == "description":
        meta["description"] = value
    elif key == "capacity_sectors":
        try:
            meta["capacity_sectors"] = int(value)
        except ValueError:
            raise TraceFormatError(
                path, lineno, f"non-numeric capacity_sectors: {value!r}"
            ) from None


def _looks_like_header(fields: List[str]) -> bool:
    try:
        float(fields[0])
        return False
    except ValueError:
        return True


def _parse_canonical(rows, linenos, header, header_line, meta, path) -> Trace:
    index = {name: i for i, name in enumerate(header)}
    for required in ("time", "lbn", "sectors", "op"):
        if required not in index:
            raise TraceFormatError(
                path, header_line, f"canonical trace missing column {required!r}"
            )
    # One transpose, then NumPy converts each column in a single C pass.
    columns = list(zip(*rows))
    times = _numeric_column(columns[index["time"]], linenos, path, "time", float)
    lbns = _numeric_column(columns[index["lbn"]], linenos, path, "lbn", np.int64)
    sectors = _numeric_column(
        columns[index["sectors"]], linenos, path, "sectors", np.int64
    )
    _require_min(times, linenos, path, "time", 0)
    _require_min(lbns, linenos, path, "lbn", 0)
    _require_min(sectors, linenos, path, "sectors", 1)
    ops = np.char.upper(np.char.strip(np.asarray(columns[index["op"]])))
    _require_ops(ops, ("R", "W"), linenos, path)
    is_write = np.char.startswith(ops, "W")
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )


def _parse_msr(rows, linenos, meta, path) -> Trace:
    # timestamp,hostname,disknum,type,offset,size[,response]
    columns = list(zip(*rows))
    ticks = _numeric_column(columns[0], linenos, path, "timestamp", np.int64)
    offsets = _numeric_column(
        columns[4], linenos, path, "offset_bytes", np.int64
    )
    sizes = _numeric_column(columns[5], linenos, path, "size_bytes", np.int64)
    _require_min(ticks, linenos, path, "timestamp", 0)
    _require_min(offsets, linenos, path, "offset_bytes", 0)
    _require_min(sizes, linenos, path, "size_bytes", 0)
    ops = np.char.lower(np.char.strip(np.asarray(columns[3])))
    _require_ops(ops, ("r", "w"), linenos, path)
    is_write = np.char.startswith(ops, "w")
    times = (ticks - ticks.min()) / _TICKS_PER_SECOND
    lbns = offsets // _SECTOR
    sectors = np.maximum(1, sizes // _SECTOR)
    order = np.argsort(times, kind="stable")
    return Trace(
        times[order], lbns[order], sectors[order], is_write[order], **meta
    )
