"""Zero-copy trace shipping via POSIX shared memory.

A multi-hour block trace holds millions of requests; pickling one into
every sweep worker costs a full copy per task, twice (serialize +
deserialize), before any simulation runs.  :class:`TraceArrays` instead
packs the four columns of a :class:`~repro.traces.record.Trace` into a
single ``multiprocessing.shared_memory`` segment once, and workers
attach to it by name: the only thing crossing the process boundary is
a :class:`TraceHandle` of a few hundred bytes, and the worker's column
arrays are views straight into the shared pages — zero copies on
either side.

Lifecycle contract
------------------
The *exporting* process owns the segment: it creates it with
:meth:`TraceArrays.from_trace` and must eventually call
:meth:`TraceArrays.unlink` (``close()`` only unmaps this process's
view).  :class:`~repro.parallel.runner.SweepRunner` wraps its pool
execution in ``try/finally`` so segments are unlinked on success,
worker crash, and ``KeyboardInterrupt`` alike — and never created at
all for tasks served from the :class:`~repro.parallel.cache.ResultCache`.

Workers attach with :meth:`TraceArrays.attach`.  On POSIX the attach
deliberately bypasses :class:`multiprocessing.shared_memory.SharedMemory`
(which registers every attachment with the ``resource_tracker`` and,
until Python 3.13's ``track=False``, cannot be told not to): a worker
that merely *maps* a segment must not fight the owner over who cleans
it up.  The attach is a bare ``shm_open`` + ``mmap`` with no tracker
interaction; non-POSIX platforms fall back to ``SharedMemory`` with a
best-effort unregister.

Closing tolerates pinned buffers: if a task's *result* still references
the shared columns when the worker tries to unmap, the ``BufferError``
is swallowed and the mapping simply lives until process exit.  The
owner's ``unlink`` does not care — POSIX keeps the pages alive until
the last mapping goes away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.traces.record import Trace

#: Column layout: (attribute, dtype); the segment is these four arrays
#: back to back, each ``itemsize * len(trace)`` bytes.  The on-disk
#: trace store (:mod:`repro.traces.store`) uses the same layout for its
#: chunk files, so one buffer-view helper serves both.
_COLUMNS = (
    ("times", np.dtype(np.float64)),
    ("lbns", np.dtype(np.int64)),
    ("sectors", np.dtype(np.int64)),
    ("is_write", np.dtype(np.bool_)),
)


def packed_nbytes(n: int) -> int:
    """Size in bytes of ``n`` requests in the packed column layout."""
    return sum(dtype.itemsize for _, dtype in _COLUMNS) * n


def column_views(buf, n: int) -> dict:
    """The four packed column arrays as zero-copy views into ``buf``.

    ``buf`` is any buffer-protocol object (shared-memory segment, mmap
    of a store chunk file) holding the :data:`_COLUMNS` layout for ``n``
    requests.  Returns ``{attr: ndarray}`` views — no copies on any
    path, which is what keeps a worker's attach (or a corpus chunk
    open) O(1) in trace size.
    """
    columns = {}
    offset = 0
    for attr, dtype in _COLUMNS:
        columns[attr] = np.ndarray(n, dtype=dtype, buffer=buf, offset=offset)
        offset += dtype.itemsize * n
    return columns


@dataclass(frozen=True)
class TraceHandle:
    """Everything a worker needs to rebuild a trace — except the data.

    Picklable and tiny: the segment name, the request count, the trace
    metadata, and the content digest (shipped so workers never re-hash
    millions of rows just to compute a cache or memo key).
    """

    shm_name: str
    length: int
    name: str
    description: str
    capacity_sectors: Optional[int]
    digest: str


class _PosixMapping:
    """Tracker-free attachment to an existing POSIX shm segment.

    Quacks like ``SharedMemory`` as far as :class:`TraceArrays` needs
    (``.buf``, ``.close()``, no ``unlink`` — attachments never own).
    """

    def __init__(self, name: str) -> None:
        import _posixshmem
        import mmap

        fd = _posixshmem.shm_open("/" + name, os.O_RDWR, mode=0o600)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        buf, self.buf = self.buf, None
        if buf is not None:
            buf.release()
        self._mmap.close()


def _attach_segment(name: str):
    """Map an existing segment without registering it for cleanup."""
    if getattr(shared_memory, "_USE_POSIX", False):
        try:
            return _PosixMapping(name)
        except ImportError:  # _posixshmem missing: fall through
            pass
    segment = shared_memory.SharedMemory(name=name)
    try:  # undo the attach-side resource_tracker registration
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass
    return segment


class TraceArrays:
    """A :class:`Trace` viewed through one shared-memory segment.

    Build with :meth:`from_trace` (owner side) or :meth:`attach`
    (worker side); read with :meth:`as_trace`.  Usable as a context
    manager — ``__exit__`` closes the mapping and, for owners, unlinks
    the segment.
    """

    def __init__(self, segment, handle: TraceHandle, owner: bool) -> None:
        self._segment = segment
        self.handle = handle
        self.owner = owner
        self._closed = False
        self._unlinked = False

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceArrays":
        """Export ``trace`` into a fresh segment (one memcpy per column)."""
        n = len(trace)
        total = packed_nbytes(n)
        segment = shared_memory.SharedMemory(create=True, size=max(1, total))
        for attr, view in column_views(segment.buf, n).items():
            view[:] = getattr(trace, attr)
        handle = TraceHandle(
            shm_name=segment.name,
            length=n,
            name=trace.name,
            description=trace.description,
            capacity_sectors=trace.capacity_sectors,
            digest=trace.digest(),
        )
        return cls(segment, handle, owner=True)

    @classmethod
    def attach(cls, handle: TraceHandle) -> "TraceArrays":
        """Map the segment named by ``handle`` (zero-copy, tracker-free)."""
        return cls(_attach_segment(handle.shm_name), handle, owner=False)

    def as_trace(self) -> Trace:
        """The shared columns as a :class:`Trace` (views, not copies).

        The returned trace keeps a reference to this mapping, so the
        buffer cannot be unmapped from under its arrays by garbage
        collection; an explicit :meth:`close` while views are alive is
        a tolerated no-op (see module docstring).
        """
        if self._closed:
            raise ValueError("trace arrays are closed")
        handle = self.handle
        n = handle.length
        columns = column_views(self._segment.buf, n)
        trace = Trace(
            columns["times"],
            columns["lbns"],
            columns["sectors"],
            columns["is_write"],
            name=handle.name,
            description=handle.description,
            capacity_sectors=handle.capacity_sectors,
            validate=False,
        )
        trace._digest = handle.digest
        trace._trace_arrays = self  # pin the mapping to the views' lifetime
        return trace

    def close(self) -> None:
        """Unmap this process's view (idempotent, pinned-buffer safe)."""
        if self._closed:
            return
        try:
            self._segment.close()
        except BufferError:
            # Live views (e.g. inside a task result) still export the
            # buffer; leave the mapping to die with the process.
            return
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def cleanup(self) -> None:
        """Owner-side teardown: close the view, then unlink the name."""
        self.close()
        self.unlink()

    def __enter__(self) -> "TraceArrays":
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.cleanup()
        else:
            self.close()

    def __repr__(self) -> str:
        role = "owner" if self.owner else "view"
        return (
            f"<TraceArrays {role} {self.handle.shm_name} "
            f"n={self.handle.length}>"
        )
