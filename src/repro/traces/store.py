"""Columnar on-disk trace store with memory-mapped zero-copy reads.

A multi-GB trace cannot live in RAM per process, and PR 4's
shared-memory columns still require *somebody* to materialise the whole
thing once.  This module puts the columns on disk instead, in the same
packed layout the shm exporter uses (:data:`repro.traces.shm._COLUMNS`),
split into fixed-size chunk files:

    store-dir/
        header.json          versioned metadata, written last
        chunk-000000.bin     times | lbns | sectors | is_write, packed
        chunk-000001.bin     ...

Readers ``mmap`` a chunk and view the four columns straight out of the
page cache — no copies, no parse — so opening a corpus is O(header) and
replaying it is O(one chunk) resident: the kernel reclaims pages of
chunks the replay cursor has moved past.

Integrity is two-layered.  Each chunk file carries its own sha256 in
the header; a truncated file is refused at :meth:`StoredTrace.open`
(size check) and a corrupted one at first read (digest check).  The
header also records the whole-trace content digest — byte-identical to
what :meth:`~repro.traces.record.Trace.digest` would return for the
materialised trace — so cache keys for a stored trace come straight
from the header instead of re-hashing gigabytes.

:class:`TraceCorpus` is the catalog layer: a directory of stores plus
an index (``catalog.json``) mapping workload names to entries, built
by :func:`repro.traces.catalog.generate_corpus` or incrementally via
:meth:`TraceCorpus.add`.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.traces.record import (
    Trace,
    TraceRecord,
    update_digest_bytes,
)
from repro.traces.shm import _COLUMNS, column_views, packed_nbytes

#: On-disk format tag / version for a single stored trace.
STORE_FORMAT = "repro-trace-store"
STORE_VERSION = 1

#: Format tag / version for a corpus catalog directory.
CORPUS_FORMAT = "repro-trace-corpus"
CORPUS_VERSION = 1

#: Requests per chunk file: 1 Mi requests = 25 MiB packed.  Large
#: enough that per-chunk overheads vanish, small enough that "resident
#: memory bounded by chunk size" is a real bound.
DEFAULT_CHUNK_REQUESTS = 1 << 20

#: Bytes hashed per update while verifying a chunk file.
_HASH_BLOCK = 1 << 22


class TraceStoreError(Exception):
    """Malformed store layout or invalid write input."""


class StoreIntegrityError(TraceStoreError):
    """A chunk file is truncated or its bytes do not match its digest."""


def _sha256_of(view: memoryview) -> str:
    h = hashlib.sha256()
    for start in range(0, len(view), _HASH_BLOCK):
        h.update(view[start:start + _HASH_BLOCK])
    return h.hexdigest()


class _ChunkMapping:
    """A read-only mmap of one chunk file, pinned to its trace views.

    Mirrors the shm attachment contract: the chunk :class:`Trace` holds
    a reference to this mapping so the buffer cannot vanish under its
    arrays; ``close`` tolerates live exports and simply leaves the
    mapping to the garbage collector.
    """

    def __init__(self, path: Path) -> None:
        with open(path, "rb") as f:
            self._mmap = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        buf, self.buf = self.buf, None
        if buf is not None:
            buf.release()
        try:
            self._mmap.close()
        except BufferError:
            pass


def _chunk_filename(index: int) -> str:
    return f"chunk-{index:06d}.bin"


def _as_chunks(source) -> Iterator[Trace]:
    """Normalise a write source (Trace or iterable of Traces) to chunks."""
    if isinstance(source, Trace):
        yield source
        return
    for chunk in source:
        if not isinstance(chunk, Trace):
            raise TraceStoreError(
                f"chunk source must yield Trace objects, got {type(chunk).__name__}"
            )
        yield chunk


def write_trace(
    source,
    directory: Union[str, Path],
    chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
    name: Optional[str] = None,
    description: Optional[str] = None,
    capacity_sectors: Optional[int] = None,
) -> "StoredTrace":
    """Write a trace (or stream of trace chunks) as an on-disk store.

    ``source`` is either a :class:`Trace` or an iterable of time-ordered
    :class:`Trace` chunks (e.g. :func:`repro.traces.io.iter_trace_chunks`
    output); chunks are re-packed to uniform ``chunk_requests``
    boundaries so the layout — and therefore every per-chunk digest —
    depends only on the trace content, not on how the writer chunked it.
    Metadata defaults come from the first chunk.  The header is written
    *last*: a crashed write leaves chunk files but no header, and
    :meth:`StoredTrace.open` refuses the directory outright.

    Peak memory is O(``chunk_requests``): chunks stream through a
    bounded re-pack buffer, and the whole-trace digest is computed
    afterwards column-major over the memory-mapped chunk files.
    """
    if chunk_requests <= 0:
        raise ValueError(f"chunk_requests must be positive: {chunk_requests}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if (directory / "header.json").exists():
        raise TraceStoreError(f"store already exists: {directory}")

    pending: List[Trace] = []
    buffered = 0
    chunk_infos: List[dict] = []
    meta: Dict[str, object] = {}
    total = 0
    t_first: Optional[float] = None
    t_last: Optional[float] = None

    def flush(count: int) -> None:
        """Write the first ``count`` buffered requests as one chunk file."""
        nonlocal pending, buffered, total, t_first, t_last
        buf = bytearray(packed_nbytes(count))
        views = column_views(buf, count)
        offset = 0
        kept: List[Trace] = []
        for part in pending:
            take = min(count - offset, len(part))
            if take:
                for attr in views:
                    views[attr][offset:offset + take] = getattr(part, attr)[:take]
                offset += take
            if take < len(part):
                kept.append(
                    Trace(
                        part.times[take:], part.lbns[take:],
                        part.sectors[take:], part.is_write[take:],
                        validate=False,
                    )
                )
        pending = kept
        buffered -= count
        times = views["times"]
        if t_last is not None and times[0] < t_last:
            raise TraceStoreError(
                "chunk source is not globally time-sorted: "
                f"{times[0]!r} < {t_last!r} at request {total}"
            )
        if t_first is None:
            t_first = float(times[0])
        t_last = float(times[-1])
        path = directory / _chunk_filename(len(chunk_infos))
        with open(path, "wb") as f:
            f.write(buf)
        chunk_infos.append(
            {
                "file": path.name,
                "requests": count,
                "sha256": _sha256_of(memoryview(buf)),
            }
        )
        total += count

    for chunk in _as_chunks(source):
        if not meta:
            meta = {
                "name": chunk.name if name is None else name,
                "description": (
                    chunk.description if description is None else description
                ),
                "capacity_sectors": (
                    chunk.capacity_sectors
                    if capacity_sectors is None
                    else capacity_sectors
                ),
            }
        if len(chunk) == 0:
            continue
        if len(chunk.times) > 1 and np.any(np.diff(chunk.times) < 0):
            raise TraceStoreError("chunk times must be non-decreasing")
        pending.append(chunk)
        buffered += len(chunk)
        while buffered >= chunk_requests:
            flush(chunk_requests)
    if buffered:
        flush(buffered)
    if not meta:
        meta = {
            "name": name or "",
            "description": description or "",
            "capacity_sectors": capacity_sectors,
        }

    # Whole-trace content digest, column-major across chunk files —
    # byte-for-byte the sequence Trace.digest() hashes, so the stored
    # value is interchangeable with an in-memory digest as a cache key.
    h = hashlib.sha256()
    for attr, dtype in _COLUMNS:
        h.update(str(dtype).encode())
        for info in chunk_infos:
            mapping = _ChunkMapping(directory / info["file"])
            try:
                column = column_views(mapping.buf, info["requests"])[attr]
                update_digest_bytes(h, column)
            finally:
                mapping.close()
    h.update(repr(meta["capacity_sectors"]).encode())

    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "name": meta["name"],
        "description": meta["description"],
        "capacity_sectors": meta["capacity_sectors"],
        "requests": total,
        "time_range": None if t_first is None else [t_first, t_last],
        "digest": h.hexdigest(),
        "chunk_requests": chunk_requests,
        "dtypes": {attr: str(dtype) for attr, dtype in _COLUMNS},
        "chunks": chunk_infos,
    }
    tmp_fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="header-", suffix=".tmp"
    )
    try:
        with os.fdopen(tmp_fd, "w") as f:
            json.dump(header, f, indent=1, sort_keys=True)
        os.replace(tmp_path, directory / "header.json")
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return StoredTrace.open(directory)


@dataclass(frozen=True)
class StoredTraceRef:
    """A picklable pointer to an on-disk store.

    What crosses a process boundary instead of trace data: workers
    re-open the store by path and get the page cache as their shared
    memory.  The digest rides along so cache/memo keys never require
    touching the data files.
    """

    path: str
    digest: str
    length: int
    name: str

    def open(self) -> "StoredTrace":
        stored = StoredTrace.open(self.path)
        if stored.digest() != self.digest:
            raise StoreIntegrityError(
                f"store at {self.path} has digest {stored.digest()[:12]}..., "
                f"ref expects {self.digest[:12]}..."
            )
        return stored


class StoredTrace:
    """A trace read zero-copy from an on-disk store directory.

    Duck-types the :class:`Trace` surface the replay and analysis
    layers consume — ``digest()``, ``duration``, ``len()``, iteration
    as time-ordered :class:`Trace` chunks (which is exactly the
    chunk-iterable input :class:`~repro.workloads.replay.TraceReplayer`
    already accepts), and ``records()`` for the legacy per-record feed
    — while never holding more than one chunk's pages resident.
    """

    def __init__(self, directory: Path, header: dict) -> None:
        self._dir = directory
        self._header = header
        self._chunks = header["chunks"]
        self._verified = [False] * len(self._chunks)
        self.name = header["name"]
        self.description = header["description"]
        self.capacity_sectors = header["capacity_sectors"]

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "StoredTrace":
        """Open a store, validating the header and every chunk's size.

        O(chunks) stat calls, zero data reads: truncation is caught
        here (a chunk file smaller than its request count implies),
        corruption on first access to the affected chunk.
        """
        directory = Path(directory)
        header_path = directory / "header.json"
        try:
            with open(header_path) as f:
                header = json.load(f)
        except FileNotFoundError:
            raise TraceStoreError(f"not a trace store (no header): {directory}")
        except json.JSONDecodeError as exc:
            raise TraceStoreError(f"corrupt store header {header_path}: {exc}")
        if header.get("format") != STORE_FORMAT:
            raise TraceStoreError(
                f"{header_path}: format {header.get('format')!r}, "
                f"expected {STORE_FORMAT!r}"
            )
        if header.get("version") != STORE_VERSION:
            raise TraceStoreError(
                f"{header_path}: store version {header.get('version')!r} "
                f"not supported (reader speaks {STORE_VERSION})"
            )
        expected_dtypes = {attr: str(dtype) for attr, dtype in _COLUMNS}
        if header.get("dtypes") != expected_dtypes:
            raise TraceStoreError(
                f"{header_path}: column dtypes {header.get('dtypes')} do not "
                f"match this build's layout {expected_dtypes}"
            )
        total = 0
        for info in header["chunks"]:
            path = directory / info["file"]
            try:
                size = os.path.getsize(path)
            except OSError:
                raise StoreIntegrityError(f"missing chunk file: {path}")
            want = packed_nbytes(info["requests"])
            if size != want:
                raise StoreIntegrityError(
                    f"chunk {path.name} is {size} bytes, "
                    f"expected {want} for {info['requests']} requests"
                )
            total += info["requests"]
        if total != header["requests"]:
            raise StoreIntegrityError(
                f"{header_path}: chunks sum to {total} requests, "
                f"header says {header['requests']}"
            )
        return cls(directory, header)

    @property
    def path(self) -> Path:
        return self._dir

    def __len__(self) -> int:
        return self._header["requests"]

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def digest(self) -> str:
        """The stored content digest (no data is read or hashed)."""
        return self._header["digest"]

    @property
    def duration(self) -> float:
        """Span from first to last arrival, straight from the header."""
        time_range = self._header["time_range"]
        if time_range is None:
            return 0.0
        return float(time_range[1]) - float(time_range[0])

    @property
    def time_range(self) -> Optional[Tuple[float, float]]:
        time_range = self._header["time_range"]
        if time_range is None:
            return None
        return (float(time_range[0]), float(time_range[1]))

    def ref(self) -> StoredTraceRef:
        """The picklable handle workers re-open this store from."""
        return StoredTraceRef(
            path=str(self._dir),
            digest=self.digest(),
            length=len(self),
            name=self.name,
        )

    def chunk(self, index: int) -> Trace:
        """Chunk ``index`` as a zero-copy mmap-backed :class:`Trace`.

        The first read of each chunk verifies its sha256 against the
        header and refuses a mismatch; the returned trace pins its
        mapping, so its pages stay valid exactly as long as the trace
        object lives and become reclaimable the moment it is dropped.
        """
        info = self._chunks[index]
        mapping = _ChunkMapping(self._dir / info["file"])
        try:
            if not self._verified[index]:
                found = _sha256_of(mapping.buf)
                if found != info["sha256"]:
                    raise StoreIntegrityError(
                        f"chunk {info['file']} content digest mismatch: "
                        f"stored {info['sha256'][:12]}..., found {found[:12]}... "
                        "(refusing corrupt data)"
                    )
                self._verified[index] = True
            columns = column_views(mapping.buf, info["requests"])
        except BaseException:
            mapping.close()
            raise
        trace = Trace(
            columns["times"],
            columns["lbns"],
            columns["sectors"],
            columns["is_write"],
            name=self.name,
            description=self.description,
            capacity_sectors=self.capacity_sectors,
            validate=False,
        )
        trace._trace_arrays = mapping  # pin mapping to the views' lifetime
        return trace

    def iter_chunks(self) -> Iterator[Trace]:
        """Yield chunks in time order, one mapping live at a time."""
        for index in range(len(self._chunks)):
            yield self.chunk(index)

    def __iter__(self) -> Iterator[Trace]:
        # Iterating a StoredTrace yields Trace chunks — the exact shape
        # TraceReplayer's chunk-iterable input path consumes, so
        # ``TraceReplayer(stored_trace)`` streams from disk natively.
        return self.iter_chunks()

    def records(self) -> Iterator[TraceRecord]:
        """Per-record iteration for the legacy replay feed."""
        for chunk in self.iter_chunks():
            yield from chunk.records()

    def as_trace(self) -> Trace:
        """Materialise the whole trace in memory (O(n) — tests and
        small traces only; everything hot should consume chunks)."""
        n = len(self)
        buf = bytearray(packed_nbytes(n))
        views = column_views(buf, n)
        offset = 0
        for chunk in self.iter_chunks():
            m = len(chunk)
            for attr in views:
                views[attr][offset:offset + m] = getattr(chunk, attr)
            offset += m
        trace = Trace(
            views["times"], views["lbns"], views["sectors"], views["is_write"],
            name=self.name,
            description=self.description,
            capacity_sectors=self.capacity_sectors,
            validate=False,
        )
        trace._digest = self.digest()
        return trace

    def verify(self) -> None:
        """Full audit: every chunk digest plus the whole-trace digest.

        Reads all data (O(chunk) resident) and raises
        :class:`StoreIntegrityError` on the first mismatch.
        """
        h = hashlib.sha256()
        for attr, dtype in _COLUMNS:
            h.update(str(dtype).encode())
            for index, info in enumerate(self._chunks):
                mapping = _ChunkMapping(self._dir / info["file"])
                try:
                    if not self._verified[index]:
                        found = _sha256_of(mapping.buf)
                        if found != info["sha256"]:
                            raise StoreIntegrityError(
                                f"chunk {info['file']} content digest mismatch"
                            )
                        self._verified[index] = True
                    column = column_views(mapping.buf, info["requests"])[attr]
                    update_digest_bytes(h, column)
                finally:
                    mapping.close()
        h.update(repr(self.capacity_sectors).encode())
        if h.hexdigest() != self.digest():
            raise StoreIntegrityError(
                f"store {self._dir}: trace digest mismatch "
                f"(header {self.digest()[:12]}..., data {h.hexdigest()[:12]}...)"
            )

    def __repr__(self) -> str:
        return (
            f"<StoredTrace {self.name!r} at {self._dir}: {len(self)} requests, "
            f"{len(self._chunks)} chunks>"
        )


class TraceCorpus:
    """A directory of trace stores indexed by workload name.

    Layout::

        corpus-dir/
            catalog.json        {name: {dir, digest, requests, ...}}
            MSRusr2/            one store per entry
                header.json
                chunk-000000.bin
            ...

    ``catalog.json`` is rewritten atomically on every :meth:`add`, so a
    crashed build leaves a corpus that simply lacks the interrupted
    entry.  Opening an entry costs its store's header read only.
    """

    CATALOG_NAME = "catalog.json"

    def __init__(self, root: Path, index: dict) -> None:
        self._root = root
        self._index = index

    @classmethod
    def create(cls, root: Union[str, Path]) -> "TraceCorpus":
        """Initialise an empty corpus (directory may exist, index not)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / cls.CATALOG_NAME).exists():
            raise TraceStoreError(f"corpus already exists: {root}")
        corpus = cls(
            root,
            {"format": CORPUS_FORMAT, "version": CORPUS_VERSION, "entries": {}},
        )
        corpus._write_index()
        return corpus

    @classmethod
    def open(cls, root: Union[str, Path]) -> "TraceCorpus":
        root = Path(root)
        path = root / cls.CATALOG_NAME
        try:
            with open(path) as f:
                index = json.load(f)
        except FileNotFoundError:
            raise TraceStoreError(f"not a trace corpus (no catalog): {root}")
        except json.JSONDecodeError as exc:
            raise TraceStoreError(f"corrupt corpus catalog {path}: {exc}")
        if index.get("format") != CORPUS_FORMAT:
            raise TraceStoreError(
                f"{path}: format {index.get('format')!r}, "
                f"expected {CORPUS_FORMAT!r}"
            )
        if index.get("version") != CORPUS_VERSION:
            raise TraceStoreError(
                f"{path}: corpus version {index.get('version')!r} not "
                f"supported (reader speaks {CORPUS_VERSION})"
            )
        return cls(root, index)

    def _write_index(self) -> None:
        tmp_fd, tmp_path = tempfile.mkstemp(
            dir=self._root, prefix="catalog-", suffix=".tmp"
        )
        try:
            with os.fdopen(tmp_fd, "w") as f:
                json.dump(self._index, f, indent=1, sort_keys=True)
            os.replace(tmp_path, self._root / self.CATALOG_NAME)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @property
    def root(self) -> Path:
        return self._root

    def names(self) -> List[str]:
        return sorted(self._index["entries"])

    def __len__(self) -> int:
        return len(self._index["entries"])

    def __contains__(self, name: str) -> bool:
        return name in self._index["entries"]

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def describe(self, name: str) -> dict:
        """The catalog row for ``name`` (metadata only, no store open)."""
        if name not in self._index["entries"]:
            raise KeyError(
                f"unknown corpus entry {name!r}; available: {self.names()}"
            )
        return dict(self._index["entries"][name])

    def entry(self, name: str) -> StoredTrace:
        """Open the store for ``name``; :class:`KeyError` if unknown."""
        row = self.describe(name)
        return StoredTrace.open(self._root / row["dir"])

    def add(
        self,
        name: str,
        source,
        chunk_requests: int = DEFAULT_CHUNK_REQUESTS,
        extra: Optional[dict] = None,
    ) -> StoredTrace:
        """Write ``source`` as the store for ``name`` and index it.

        ``extra`` (e.g. the generating seed/duration) is recorded in
        the catalog row verbatim.  Re-adding an existing name is
        refused — a corpus entry is content-addressed by its digest and
        silently replacing one would invalidate downstream cache keys'
        meaning.
        """
        if name in self._index["entries"]:
            raise TraceStoreError(f"corpus entry already exists: {name!r}")
        if not name or "/" in name or name.startswith("."):
            raise TraceStoreError(f"invalid corpus entry name: {name!r}")
        stored = write_trace(
            source,
            self._root / name,
            chunk_requests=chunk_requests,
            name=name,
        )
        row = {
            "dir": name,
            "digest": stored.digest(),
            "requests": len(stored),
            "duration": stored.duration,
            "chunks": stored.chunk_count,
        }
        if extra:
            row.update(extra)
        self._index["entries"][name] = row
        self._write_index()
        return stored
