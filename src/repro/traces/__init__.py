"""Block I/O traces: records, parsing, synthesis and idle analysis.

The paper analyses 77 disk traces from the SNIA IOTTA repository (HP
Cello 1999, MSR Cambridge 2008, MS TPC-C 2009 — Table I).  Those traces
are not redistributable, so this package provides:

* :class:`~repro.traces.record.Trace` / :class:`~repro.traces.record.TraceRecord`
  — an efficient array-backed trace container;
* :mod:`repro.traces.io` — a parser/writer for SNIA-style CSV block
  traces, so users with access to the real traces can load them;
* :mod:`repro.traces.synth` — synthetic arrival/address generators
  reproducing the statistical structure the paper's scheduling results
  rest on (diurnal periodicity, burst autocorrelation, heavy-tailed
  idle times with decreasing hazard rates, near-memoryless TPC-C);
* :mod:`~repro.traces.catalog` — named trace specs mirroring Table I,
  with per-disk calibration targets from Table II;
* :mod:`repro.traces.idle` — idle-interval extraction.
"""

from repro.traces.catalog import (
    CATALOG,
    TraceSpec,
    generate_corpus,
    generate_trace,
)
from repro.traces.idle import idle_intervals, idle_intervals_streaming
from repro.traces.io import (
    TraceFormatError,
    iter_trace_chunks,
    read_csv_trace,
    write_csv_trace,
)
from repro.traces.record import Trace, TraceRecord
from repro.traces.shm import TraceArrays, TraceHandle
from repro.traces.store import (
    StoredTrace,
    StoredTraceRef,
    StoreIntegrityError,
    TraceCorpus,
    TraceStoreError,
    write_trace,
)
from repro.traces.synth import SyntheticTraceGenerator, TraceProfile

__all__ = [
    "CATALOG",
    "StoreIntegrityError",
    "StoredTrace",
    "StoredTraceRef",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceArrays",
    "TraceCorpus",
    "TraceFormatError",
    "TraceHandle",
    "TraceProfile",
    "TraceRecord",
    "TraceSpec",
    "TraceStoreError",
    "generate_corpus",
    "generate_trace",
    "idle_intervals",
    "idle_intervals_streaming",
    "iter_trace_chunks",
    "read_csv_trace",
    "write_csv_trace",
]
