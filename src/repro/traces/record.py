"""Array-backed trace container.

A :class:`Trace` stores a block I/O trace as parallel numpy arrays —
the only representation that stays workable at the paper's scale
(tens of millions of requests per disk-week).  Individual records are
materialised lazily as :class:`TraceRecord` objects for consumers that
want them (e.g. the replayer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry (times in seconds from trace start)."""

    time: float
    lbn: int
    sectors: int
    is_write: bool


class Trace:
    """A block I/O trace.

    Parameters
    ----------
    times:
        Arrival times in seconds, non-decreasing.
    lbns, sectors:
        Request start addresses and lengths (512-byte sectors).
    is_write:
        Boolean array; ``False`` = read.
    name, description:
        Identification metadata (mirrors the paper's Table I columns).
    capacity_sectors:
        Size of the traced disk, if known.
    """

    def __init__(
        self,
        times: np.ndarray,
        lbns: np.ndarray,
        sectors: np.ndarray,
        is_write: np.ndarray,
        name: str = "",
        description: str = "",
        capacity_sectors: Optional[int] = None,
    ) -> None:
        times = np.asarray(times, dtype=float)
        lbns = np.asarray(lbns, dtype=np.int64)
        sectors = np.asarray(sectors, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        lengths = {len(times), len(lbns), len(sectors), len(is_write)}
        if len(lengths) != 1:
            raise ValueError(f"mismatched column lengths: {sorted(lengths)}")
        if len(times) and np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if np.any(sectors <= 0):
            raise ValueError("sector counts must be positive")
        if np.any(lbns < 0):
            raise ValueError("LBNs must be non-negative")
        self.times = times
        self.lbns = lbns
        self.sectors = sectors
        self.is_write = is_write
        self.name = name
        self.description = description
        self.capacity_sectors = capacity_sectors

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Span from first to last arrival (0 for empty traces)."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals (length ``len - 1``)."""
        return np.diff(self.times)

    def records(self) -> Iterator[TraceRecord]:
        """Iterate records (lazy; suitable for the replayer)."""
        for i in range(len(self.times)):
            yield TraceRecord(
                time=float(self.times[i]),
                lbn=int(self.lbns[i]),
                sectors=int(self.sectors[i]),
                is_write=bool(self.is_write[i]),
            )

    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace with arrivals in ``[start, end)`` (times re-based)."""
        if end < start:
            raise ValueError(f"empty window: [{start}, {end})")
        mask = (self.times >= start) & (self.times < end)
        return Trace(
            self.times[mask] - start,
            self.lbns[mask],
            self.sectors[mask],
            self.is_write[mask],
            name=self.name,
            description=self.description,
            capacity_sectors=self.capacity_sectors,
        )

    def requests_per_bin(self, bin_seconds: float = 3600.0) -> np.ndarray:
        """Arrival counts per time bin (Fig. 8's requests-per-hour)."""
        if bin_seconds <= 0:
            raise ValueError(f"bin_seconds must be positive: {bin_seconds}")
        if len(self.times) == 0:
            return np.zeros(0, dtype=int)
        span = self.times[-1] - self.times[0]
        nbins = max(1, int(np.ceil(span / bin_seconds)) or 1)
        edges = self.times[0] + np.arange(nbins + 1) * bin_seconds
        counts, _ = np.histogram(self.times, bins=edges)
        return counts

    @classmethod
    def from_records(cls, records, **metadata) -> "Trace":
        """Build from an iterable of :class:`TraceRecord`-like objects."""
        records = list(records)
        return cls(
            np.array([r.time for r in records], dtype=float),
            np.array([r.lbn for r in records], dtype=np.int64),
            np.array([r.sectors for r in records], dtype=np.int64),
            np.array([r.is_write for r in records], dtype=bool),
            **metadata,
        )

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r}: {len(self)} requests over "
            f"{self.duration / 3600:.1f} h>"
        )
