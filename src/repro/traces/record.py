"""Array-backed trace container.

A :class:`Trace` stores a block I/O trace as parallel numpy arrays —
the only representation that stays workable at the paper's scale
(tens of millions of requests per disk-week).  Individual records are
materialised lazily as :class:`TraceRecord` objects for consumers that
want them (e.g. the replayer).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

#: Bytes hashed per ``update`` while streaming a column into a digest.
#: Bounds the transient copy made for non-contiguous columns; contiguous
#: columns are hashed through zero-copy memoryview slices.
_DIGEST_BLOCK = 1 << 22


def update_digest(h, column: np.ndarray) -> None:
    """Feed one column into hash ``h`` exactly as :meth:`Trace.digest`.

    Streams the column in :data:`_DIGEST_BLOCK`-byte slices instead of
    one ``tobytes()`` call, so hashing a multi-GB memory-mapped column
    never materialises a full copy — the digest value is identical
    either way (same dtype tag, same bytes, same order).  Shared by
    :meth:`Trace.digest` and the on-disk store
    (:mod:`repro.traces.store`), which computes the same content digest
    chunk-wise at write time so readers never re-hash.
    """
    h.update(str(column.dtype).encode())
    update_digest_bytes(h, column)


def update_digest_bytes(h, column: np.ndarray) -> None:
    """Feed only the raw bytes of ``column`` into ``h`` (no dtype tag).

    The store hashes one logical column that spans many chunk files:
    the dtype tag goes in once, then each chunk's bytes stream through
    here in file order — reproducing :func:`update_digest`'s byte
    sequence for the concatenated column.
    """
    if not column.flags.c_contiguous:
        column = np.ascontiguousarray(column)
    view = memoryview(column).cast("B")
    for start in range(0, len(view), _DIGEST_BLOCK):
        h.update(view[start:start + _DIGEST_BLOCK])


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry (times in seconds from trace start)."""

    time: float
    lbn: int
    sectors: int
    is_write: bool


class Trace:
    """A block I/O trace.

    Parameters
    ----------
    times:
        Arrival times in seconds, non-decreasing.
    lbns, sectors:
        Request start addresses and lengths (512-byte sectors).
    is_write:
        Boolean array; ``False`` = read.
    name, description:
        Identification metadata (mirrors the paper's Table I columns).
    capacity_sectors:
        Size of the traced disk, if known.
    validate:
        Skip the column sanity checks when ``False``.  Only for
        internal fast paths that rebuild a trace from columns already
        validated once (e.g. shared-memory views, streamed chunks);
        the checks are O(n) and a worker attaching a multi-million
        request trace should not re-pay them.
    """

    def __init__(
        self,
        times: np.ndarray,
        lbns: np.ndarray,
        sectors: np.ndarray,
        is_write: np.ndarray,
        name: str = "",
        description: str = "",
        capacity_sectors: Optional[int] = None,
        validate: bool = True,
    ) -> None:
        times = np.asarray(times, dtype=float)
        lbns = np.asarray(lbns, dtype=np.int64)
        sectors = np.asarray(sectors, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if validate:
            lengths = {len(times), len(lbns), len(sectors), len(is_write)}
            if len(lengths) != 1:
                raise ValueError(f"mismatched column lengths: {sorted(lengths)}")
            if len(times) and np.any(np.diff(times) < 0):
                raise ValueError("times must be non-decreasing")
            if np.any(sectors <= 0):
                raise ValueError("sector counts must be positive")
            if np.any(lbns < 0):
                raise ValueError("LBNs must be non-negative")
        self.times = times
        self.lbns = lbns
        self.sectors = sectors
        self.is_write = is_write
        self.name = name
        self.description = description
        self.capacity_sectors = capacity_sectors
        #: Content digest memo (see :meth:`digest`).
        self._digest: Optional[str] = None

    def __len__(self) -> int:
        return len(self.times)

    def digest(self) -> str:
        """Content digest of the trace (SHA-256 over the four columns).

        Two traces with identical requests share a digest regardless of
        how they were built (parsed, generated, shared-memory view),
        while regenerated synthetic traces that merely share a *name*
        do not — which is what makes the digest safe as a cache-key
        component for trace-driven experiments.  ``capacity_sectors``
        participates; the free-text ``name``/``description`` metadata
        does not.  The digest is computed once and memoised, so it must
        not be relied upon after mutating the column arrays in place.

        Hashing streams each column in bounded blocks
        (:func:`update_digest`), so digesting a memory-mapped multi-GB
        trace stays O(block) resident instead of copying every column
        through ``tobytes()``; the digest value is unchanged.
        """
        if self._digest is None:
            h = hashlib.sha256()
            for column in (self.times, self.lbns, self.sectors, self.is_write):
                update_digest(h, column)
            h.update(repr(self.capacity_sectors).encode())
            self._digest = h.hexdigest()
        return self._digest

    @property
    def duration(self) -> float:
        """Span from first to last arrival (0 for empty traces)."""
        if len(self.times) == 0:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive arrivals (length ``len - 1``)."""
        return np.diff(self.times)

    def records(self) -> Iterator[TraceRecord]:
        """Iterate records (lazy; suitable for the replayer)."""
        for i in range(len(self.times)):
            yield TraceRecord(
                time=float(self.times[i]),
                lbn=int(self.lbns[i]),
                sectors=int(self.sectors[i]),
                is_write=bool(self.is_write[i]),
            )

    def window(self, start: float, end: float) -> "Trace":
        """Sub-trace with arrivals in ``[start, end)`` (times re-based)."""
        if end < start:
            raise ValueError(f"empty window: [{start}, {end})")
        mask = (self.times >= start) & (self.times < end)
        return Trace(
            self.times[mask] - start,
            self.lbns[mask],
            self.sectors[mask],
            self.is_write[mask],
            name=self.name,
            description=self.description,
            capacity_sectors=self.capacity_sectors,
        )

    def requests_per_bin(self, bin_seconds: float = 3600.0) -> np.ndarray:
        """Arrival counts per time bin (Fig. 8's requests-per-hour)."""
        if bin_seconds <= 0:
            raise ValueError(f"bin_seconds must be positive: {bin_seconds}")
        if len(self.times) == 0:
            return np.zeros(0, dtype=int)
        span = self.times[-1] - self.times[0]
        nbins = max(1, int(np.ceil(span / bin_seconds)) or 1)
        edges = self.times[0] + np.arange(nbins + 1) * bin_seconds
        counts, _ = np.histogram(self.times, bins=edges)
        return counts

    @classmethod
    def from_records(cls, records, **metadata) -> "Trace":
        """Build from an iterable of :class:`TraceRecord`-like objects."""
        records = list(records)
        return cls(
            np.array([r.time for r in records], dtype=float),
            np.array([r.lbn for r in records], dtype=np.int64),
            np.array([r.sectors for r in records], dtype=np.int64),
            np.array([r.is_write for r in records], dtype=bool),
            **metadata,
        )

    def __repr__(self) -> str:
        return (
            f"<Trace {self.name!r}: {len(self)} requests over "
            f"{self.duration / 3600:.1f} h>"
        )
