"""Synthetic block-trace generation.

The paper's scheduling results (Section V) rest on four statistical
properties of real disk workloads, all of which this generator
reproduces and the :mod:`repro.stats` package verifies:

* **Periodicity** (Fig. 8, 9): arrival intensity follows an hourly
  profile repeating every ``period_hours`` (diurnal by default),
  implemented as an inhomogeneous time-change of a stationary process.
* **Autocorrelation**: arrivals come in bursts (ON/OFF), so successive
  inter-arrival intervals are positively correlated.
* **High CoV / heavy tails with decreasing hazard rates** (Table II,
  Fig. 10–13): OFF gaps are lognormal — a subexponential distribution
  whose hazard rate decreases in the tail, concentrating most idle
  time in a few long intervals.
* **Memorylessness for TPC-C** (Table II): an alternative pure-Poisson
  mode with CoV ≈ 1.

Address streams mix sequential runs with jumps into weighted hot
regions, and request sizes/write ratios are configurable, so the same
traces drive both statistical analysis and full-stack replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.signal import lfilter

from repro.traces.record import Trace

#: Activity multiplier per hour-of-day (mean ~1): office-hours shape.
OFFICE_HOURS = (
    0.25, 0.2, 0.15, 0.15, 0.2, 0.3, 0.6, 1.2, 1.8, 2.2, 2.3, 2.2,
    1.9, 2.1, 2.2, 2.1, 1.9, 1.5, 1.0, 0.7, 0.5, 0.4, 0.35, 0.3,
)
#: Overnight batch/backup shape (spike at 02:00, as in HP Cello).
NIGHTLY_BATCH = (
    1.0, 2.5, 6.0, 2.0, 0.8, 0.6, 0.6, 0.8, 1.0, 1.0, 1.0, 1.0,
    1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.9, 0.8, 0.8, 0.8, 0.9, 1.0,
)
#: Featureless profile (no periodicity).
FLAT = tuple([1.0] * 24)


@dataclass(frozen=True)
class TraceProfile:
    """Parameter set for one synthetic disk workload.

    The generator alternates heavy-tailed OFF gaps with bursts of
    closely spaced requests; ``memoryless=True`` replaces all of that
    with a plain Poisson process (the TPC-C mode).
    """

    name: str
    description: str = ""
    duration: float = 86_400.0
    #: Mean and coefficient of variation of the lognormal OFF gaps.
    idle_gap_mean: float = 0.3
    idle_gap_cov: float = 15.0
    #: AR(1) coefficient of successive log-gaps: recent idle lengths
    #: predict upcoming ones (the autocorrelation the paper's AR policy
    #: tries to exploit).  0 gives independent gaps.
    gap_autocorr: float = 0.5
    #: Mean burst length (geometric) and intra-burst gap (exponential).
    burst_len_mean: float = 40.0
    intra_gap_mean: float = 0.002
    #: Hour-of-day activity multipliers and the repeat period.
    hourly_profile: Tuple[float, ...] = OFFICE_HOURS
    period_hours: float = 24.0
    #: Poisson mode (TPC-C): ignore burst/gap fields, use ``rate``.
    memoryless: bool = False
    rate: float = 700.0
    #: Address/size/op mix.
    capacity_sectors: int = 585_937_500  # 300 GB
    write_fraction: float = 0.3
    seq_prob: float = 0.6
    size_choices: Tuple[int, ...] = (8, 16, 32, 64, 128)
    size_weights: Tuple[float, ...] = (0.3, 0.25, 0.2, 0.15, 0.1)
    #: Hot regions: (centre fraction, width fraction, weight).
    hot_spots: Tuple[Tuple[float, float, float], ...] = (
        (0.1, 0.15, 0.5),
        (0.45, 0.2, 0.3),
        (0.8, 0.3, 0.2),
    )

    def with_overrides(self, **kwargs) -> "TraceProfile":
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.idle_gap_mean <= 0 or self.idle_gap_cov <= 0:
            raise ValueError("idle gap parameters must be positive")
        if self.burst_len_mean < 1:
            raise ValueError("burst_len_mean must be >= 1")
        if not 0.0 <= self.gap_autocorr < 1.0:
            raise ValueError("gap_autocorr must lie in [0, 1)")
        if len(self.hourly_profile) == 0:
            raise ValueError("hourly_profile must be non-empty")
        if len(self.size_choices) != len(self.size_weights):
            raise ValueError("size_choices and size_weights lengths differ")
        if not 0 <= self.write_fraction <= 1 or not 0 <= self.seq_prob <= 1:
            raise ValueError("fractions must lie in [0, 1]")


def _lognormal_params(mean: float, cov: float) -> Tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and CoV."""
    sigma2 = np.log1p(cov * cov)
    mu = np.log(mean) - sigma2 / 2.0
    return mu, float(np.sqrt(sigma2))


class SyntheticTraceGenerator:
    """Generates :class:`~repro.traces.record.Trace` objects from a profile."""

    def __init__(self, profile: TraceProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self.rng = rng

    # -- public ------------------------------------------------------------
    def generate(self) -> Trace:
        p = self.profile
        if p.memoryless:
            times = self._poisson_times()
        else:
            times = self._bursty_times()
        n = len(times)
        sectors = self.rng.choice(
            p.size_choices,
            size=n,
            p=np.asarray(p.size_weights) / np.sum(p.size_weights),
        ).astype(np.int64)
        lbns = self._addresses(sectors)
        is_write = self.rng.random(n) < p.write_fraction
        return Trace(
            times,
            lbns,
            sectors,
            is_write,
            name=p.name,
            description=p.description,
            capacity_sectors=p.capacity_sectors,
        )

    # -- arrival processes ------------------------------------------------------
    def _poisson_times(self) -> np.ndarray:
        p = self.profile
        expected = p.rate * p.duration
        gaps = self.rng.exponential(1.0 / p.rate, size=int(expected * 1.05) + 10)
        times = np.cumsum(gaps)
        return times[times < p.duration]

    def _bursty_times(self) -> np.ndarray:
        """ON/OFF bursts in operational time, warped for periodicity."""
        p = self.profile
        mu, sigma = _lognormal_params(p.idle_gap_mean, p.idle_gap_cov)
        mean_burst_duration = p.burst_len_mean * p.intra_gap_mean
        mean_cycle = p.idle_gap_mean + mean_burst_duration
        n_bursts = int(p.duration / mean_cycle * 1.3) + 10

        gaps = self._correlated_lognormal(mu, sigma, n_bursts)
        # Geometric lengths with the requested mean (support >= 1).
        success = min(1.0, 1.0 / p.burst_len_mean)
        lengths = self.rng.geometric(success, size=n_bursts)
        total = int(lengths.sum())
        intra = self.rng.exponential(p.intra_gap_mean, size=total)

        # Offsets of each arrival inside its burst (cumsum with resets).
        burst_ends = np.cumsum(lengths)
        burst_starts_idx = burst_ends - lengths
        running = np.cumsum(intra)
        base = np.repeat(
            running[burst_starts_idx] - intra[burst_starts_idx], lengths
        )
        offsets = running - base

        burst_durations = running[burst_ends - 1] - (
            running[burst_starts_idx] - intra[burst_starts_idx]
        )
        prior_durations = np.concatenate(([0.0], np.cumsum(burst_durations[:-1])))
        burst_start_times = np.cumsum(gaps) + prior_durations
        times = np.repeat(burst_start_times, lengths) + offsets

        times = self._warp(times)
        return times[times < p.duration]

    def _correlated_lognormal(
        self, mu: float, sigma: float, count: int
    ) -> np.ndarray:
        """Lognormal gaps whose logs follow an AR(1) with the profile's
        ``gap_autocorr`` — the stationary marginal stays lognormal(mu, sigma)."""
        phi = self.profile.gap_autocorr
        if phi == 0.0 or count == 0:
            return self.rng.lognormal(mu, sigma, size=count)
        noise_sigma = sigma * np.sqrt(1.0 - phi * phi)
        noise = self.rng.normal(0.0, noise_sigma, size=count)
        noise[0] = self.rng.normal(0.0, sigma)  # start in stationarity
        logs = lfilter([1.0], [1.0, -phi], noise)  # AR(1) recursion in C
        return np.exp(mu + logs)

    def _warp(self, operational_times: np.ndarray) -> np.ndarray:
        """Map operational time to wall time via the rate profile.

        The cumulative intensity ``L(t) = integral of h`` is piecewise
        linear over hours; arrivals generated in operational time ``s``
        land at wall time ``L^{-1}(s)``, concentrating them in
        high-multiplier hours.
        """
        p = self.profile
        profile = np.asarray(p.hourly_profile, dtype=float)
        if np.allclose(profile, profile[0]):
            return operational_times  # flat: warping is the identity
        profile = profile / profile.mean()
        hour = p.period_hours * 3600.0 / len(profile)
        n_hours = int(np.ceil(p.duration / hour)) + len(profile) + 1
        multipliers = np.tile(profile, -(-n_hours // len(profile)))[:n_hours]
        wall_knots = np.arange(n_hours + 1) * hour
        operational_knots = np.concatenate(
            ([0.0], np.cumsum(multipliers * hour))
        )
        return np.interp(operational_times, operational_knots, wall_knots)

    # -- addresses -----------------------------------------------------------------
    def _addresses(self, sectors: np.ndarray) -> np.ndarray:
        """Sequential runs interleaved with jumps into hot regions."""
        p = self.profile
        n = len(sectors)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        is_jump = self.rng.random(n) >= p.seq_prob
        is_jump[0] = True
        jump_targets = self._jump_targets(int(is_jump.sum()))

        # Run-relative offsets: cumsum of sizes with a reset at each jump.
        shifted = np.concatenate(([0], sectors[:-1]))
        running = np.cumsum(shifted)
        jump_idx = np.flatnonzero(is_jump)
        run_ids = np.cumsum(is_jump) - 1
        base = running[jump_idx][run_ids]
        offsets = running - base
        lbns = jump_targets[run_ids] + offsets
        # Wrap runs that fall off the end of the disk.
        limit = p.capacity_sectors - int(sectors.max())
        return np.mod(lbns, max(1, limit)).astype(np.int64)

    def _jump_targets(self, count: int) -> np.ndarray:
        p = self.profile
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        spots = np.asarray(p.hot_spots, dtype=float)
        weights = spots[:, 2] / spots[:, 2].sum()
        chosen = self.rng.choice(len(spots), size=count, p=weights)
        centres = spots[chosen, 0]
        widths = spots[chosen, 1]
        fractions = centres + (self.rng.random(count) - 0.5) * widths
        fractions = np.clip(fractions, 0.0, 1.0)
        return (fractions * (p.capacity_sectors - 1)).astype(np.int64)
