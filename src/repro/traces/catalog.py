"""Named trace specifications mirroring the paper's Table I / Table II.

Each :class:`TraceSpec` couples a synthetic
:class:`~repro.traces.synth.TraceProfile` with the published statistics
it is calibrated against: request counts per week (Table I) and idle
interval mean/variance/CoV (Table II).  ``generate_trace`` builds a
reproducible trace for a spec.

Calibration notes
-----------------
* OFF-gap means are set to Table II idle means; gap CoVs to Table II
  CoVs (the measured idle CoV tracks the gap CoV because intra-burst
  gaps are shorter than a request service time).
* Burst lengths are solved from Table I request rates:
  ``rate = burst / (gap_mean + burst * intra_gap)``.
* HP Cello disks get the nightly-batch hour profile (Ruemmler &
  Wilkes attribute Cello's spikes to daily backups); MSR disks get an
  office-hours profile; TPC-C is memoryless and flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.rng import RandomStreams
from repro.traces.idle import idle_intervals_from_trace
from repro.traces.record import Trace
from repro.traces.synth import (
    FLAT,
    NIGHTLY_BATCH,
    OFFICE_HOURS,
    SyntheticTraceGenerator,
    TraceProfile,
)

#: 300 GB in 512-byte sectors (the paper's main drive).
_CAP_300GB = 585_937_500
#: 9 GB (a Cello-era disk).
_CAP_9GB = 17_578_125
#: 36 GB (TPC-C data disks).
_CAP_36GB = 70_312_500


@dataclass(frozen=True)
class TraceSpec:
    """A catalog entry: synthetic profile plus published target stats."""

    name: str
    collection: str
    description: str
    profile: TraceProfile
    paper_requests_per_week: Optional[int] = None
    paper_idle_mean: Optional[float] = None
    paper_idle_variance: Optional[float] = None
    paper_idle_cov: Optional[float] = None
    #: Per-request positioning time to assume when reconstructing idle
    #: intervals from this trace.  TPC-C ran against a cached array with
    #: sub-millisecond services (its Table II idle mean equals the mean
    #: inter-arrival time), so it gets a near-zero value.
    service_positioning: float = 0.004


def _spec(
    name: str,
    collection: str,
    description: str,
    idle_mean: float,
    idle_cov: float,
    burst: float,
    intra: float,
    hourly,
    requests: Optional[int] = None,
    variance: Optional[float] = None,
    capacity: int = _CAP_300GB,
    service_positioning: float = 0.004,
    **profile_overrides,
) -> TraceSpec:
    profile = TraceProfile(
        name=name,
        description=description,
        idle_gap_mean=idle_mean,
        idle_gap_cov=idle_cov,
        burst_len_mean=burst,
        intra_gap_mean=intra,
        hourly_profile=hourly,
        capacity_sectors=capacity,
        **profile_overrides,
    )
    return TraceSpec(
        name=name,
        collection=collection,
        description=description,
        profile=profile,
        paper_requests_per_week=requests,
        paper_idle_mean=idle_mean,
        paper_idle_variance=variance,
        paper_idle_cov=idle_cov,
        service_positioning=service_positioning,
    )


CATALOG: Dict[str, TraceSpec] = {
    spec.name: spec
    for spec in [
        # ---- MSR Cambridge (2008): office-hours periodicity ----
        _spec(
            "MSRsrc11", "MSR Cambridge", "Source control",
            idle_mean=0.4640, idle_cov=21.693, burst=40, intra=0.002,
            hourly=OFFICE_HOURS, requests=45_746_222, variance=101.31,
        ),
        _spec(
            "MSRusr1", "MSR Cambridge", "Home dirs",
            idle_mean=0.0997, idle_cov=8.6516, burst=8, intra=0.0015,
            hourly=OFFICE_HOURS, requests=45_283_980, variance=0.7448,
        ),
        _spec(
            "MSRusr2", "MSR Cambridge", "Home dirs (representative disk)",
            idle_mean=0.30, idle_cov=18.0, burst=10, intra=0.002,
            hourly=OFFICE_HOURS,
        ),
        _spec(
            "MSRproj2", "MSR Cambridge", "Project dirs",
            idle_mean=0.1384, idle_cov=200.75, burst=7, intra=0.002,
            hourly=OFFICE_HOURS, requests=29_266_482, variance=772.18,
        ),
        _spec(
            "MSRprn1", "MSR Cambridge", "Print server",
            idle_mean=0.2280, idle_cov=12.641, burst=4, intra=0.002,
            hourly=OFFICE_HOURS, requests=11_233_411, variance=8.3073,
        ),
        # ---- HP Cello (1999): nightly backup spikes ----
        _spec(
            "HPc6t8d0", "HP Cello", "News disk (many short idle intervals)",
            idle_mean=0.1502, idle_cov=13.845, burst=3, intra=0.003,
            hourly=NIGHTLY_BATCH, requests=9_529_855, variance=4.3243,
            capacity=_CAP_9GB, seq_prob=0.4,
        ),
        _spec(
            "HPc6t5d1", "HP Cello", "Project files",
            idle_mean=0.4503, idle_cov=29.807, burst=4, intra=0.003,
            hourly=NIGHTLY_BATCH, requests=4_588_778, variance=180.13,
            capacity=_CAP_9GB,
        ),
        _spec(
            "HPc6t5d0", "HP Cello", "Home dirs",
            idle_mean=0.4345, idle_cov=9.0731, burst=3, intra=0.003,
            hourly=NIGHTLY_BATCH, requests=3_365_078, variance=15.545,
            capacity=_CAP_9GB,
        ),
        _spec(
            "HPc3t3d0", "HP Cello", "Root & swap",
            idle_mean=0.4555, idle_cov=8.2301, burst=2, intra=0.003,
            hourly=NIGHTLY_BATCH, requests=2_742_326, variance=14.051,
            capacity=_CAP_9GB,
        ),
        # ---- MS TPC-C (2009): memoryless ----
        _spec(
            "TPCdisk66", "MS TPC-C", "TPC-C run",
            idle_mean=0.0014, idle_cov=0.8608, burst=1, intra=0.001,
            hourly=FLAT, requests=513_038, variance=1.5e-6,
            capacity=_CAP_36GB, service_positioning=0.0002,
            memoryless=True, rate=714.0, duration=600.0, seq_prob=0.1,
        ),
        _spec(
            "TPCdisk88", "MS TPC-C", "TPC-C run",
            idle_mean=0.0015, idle_cov=0.8785, burst=1, intra=0.001,
            hourly=FLAT, requests=513_844, variance=1.6e-6,
            capacity=_CAP_36GB, service_positioning=0.0002,
            memoryless=True, rate=667.0, duration=600.0, seq_prob=0.1,
        ),
    ]
}


def generate_trace(
    name: str,
    duration: Optional[float] = None,
    seed: int = 0,
    rate_scale: float = 1.0,
) -> Trace:
    """Build the synthetic trace for catalog entry ``name``.

    Parameters
    ----------
    duration:
        Trace length in seconds; defaults to the profile's (one day for
        Cello/MSR entries, ten minutes for TPC-C).
    seed:
        Root seed; the same (name, seed, duration) is fully reproducible.
    rate_scale:
        Scales the request *rate* (via burst length or Poisson rate)
        without changing the idle-gap distribution — useful for cheap
        statistical experiments on long horizons.
    """
    if name not in CATALOG:
        raise KeyError(
            f"unknown trace {name!r}; available: {sorted(CATALOG)}"
        )
    if rate_scale <= 0:
        raise ValueError(f"rate_scale must be positive: {rate_scale}")
    profile = CATALOG[name].profile
    overrides = {}
    if duration is not None:
        overrides["duration"] = float(duration)
    if rate_scale != 1.0:
        if profile.memoryless:
            overrides["rate"] = profile.rate * rate_scale
        else:
            overrides["burst_len_mean"] = max(
                1.0, profile.burst_len_mean * rate_scale
            )
    if overrides:
        profile = profile.with_overrides(**overrides)
    rng = RandomStreams(seed=seed).get(f"trace/{name}")
    return SyntheticTraceGenerator(profile, rng).generate()


def generate_corpus(
    directory,
    names=None,
    duration: Optional[float] = None,
    seed: int = 0,
    rate_scale: float = 1.0,
    repetitions: int = 1,
    chunk_requests: Optional[int] = None,
):
    """Build an on-disk trace corpus from catalog entries.

    One store per entry (see :class:`repro.traces.store.TraceCorpus`),
    each generated with :func:`generate_trace` under the shared
    ``seed`` so the whole corpus is a pure function of
    ``(names, duration, seed, rate_scale, repetitions)``.

    ``repetitions`` tiles the generated day end-to-end (each copy's
    times offset past the previous copy's span) to reach multi-GB
    corpus sizes without ever materialising more than one repetition:
    the copies stream into the store writer as chunks.  Returns the
    opened :class:`~repro.traces.store.TraceCorpus`.
    """
    from repro.traces.store import DEFAULT_CHUNK_REQUESTS, TraceCorpus

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1: {repetitions}")
    if names is None:
        names = sorted(CATALOG)
    unknown = [n for n in names if n not in CATALOG]
    if unknown:
        raise KeyError(
            f"unknown trace(s) {unknown}; available: {sorted(CATALOG)}"
        )
    corpus = TraceCorpus.create(directory)
    for name in names:
        base = generate_trace(
            name, duration=duration, seed=seed, rate_scale=rate_scale
        )
        corpus.add(
            name,
            _tiled_chunks(base, repetitions),
            chunk_requests=(
                DEFAULT_CHUNK_REQUESTS if chunk_requests is None
                else chunk_requests
            ),
            extra={
                "spec": name,
                "seed": seed,
                "duration_arg": duration,
                "rate_scale": rate_scale,
                "repetitions": repetitions,
                "service_positioning": CATALOG[name].service_positioning,
            },
        )
    return corpus


def _tiled_chunks(base: Trace, repetitions: int):
    """Yield ``repetitions`` time-shifted copies of ``base`` as chunks."""
    if len(base) == 0:
        yield base
        return
    # Period covers the base span plus one mean inter-arrival, so the
    # seam gap looks like an ordinary arrival gap, not a cliff.
    span = float(base.times[-1] - base.times[0])
    period = span + max(
        (span / max(len(base) - 1, 1)), 1e-6
    )
    for i in range(repetitions):
        if i == 0:
            yield base
        else:
            yield Trace(
                base.times + i * period,
                base.lbns,
                base.sectors,
                base.is_write,
                name=base.name,
                description=base.description,
                capacity_sectors=base.capacity_sectors,
                validate=False,
            )


def trace_idle_intervals(name: str, trace: Trace, min_duration: float = 0.0):
    """Idle intervals of ``trace`` under catalog entry ``name``'s service model.

    Returns ``(starts, durations)`` numpy arrays; see
    :func:`repro.traces.idle.idle_intervals`.
    """
    if name not in CATALOG:
        raise KeyError(f"unknown trace {name!r}")
    return idle_intervals_from_trace(
        trace,
        positioning=CATALOG[name].service_positioning,
        min_duration=min_duration,
    )
