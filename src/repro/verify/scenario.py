"""Uniform seeded scenario runner for the correctness harness.

Every pillar of :mod:`repro.verify` needs the same primitive: *build
the full stack from a flat picklable parameter dict, run it, and
return a deterministic, picklable outcome*.  :func:`run_scenario` is
that primitive.  It is deliberately close to
:func:`repro.analysis.detection.run_detection_experiment` but exposes
the switches the differential oracle flips — telemetry mode, replay
feed — as first-class parameters, and distils the run into a plain
``dict`` that :func:`repro.parallel.cache.canonicalize` can hash, so
two runs agree iff their outcome signatures agree.

Three scenario families cover the stack's behavioural envelope:

``synthetic``
    A generated catalog trace replayed open-loop against the drive
    while a scrubber walks it.  No faults: the pure scheduling core.
``trace-replay``
    The same trace but *pre-chunked* before feeding, exercising the
    streamed-chunk reassembly path of :class:`TraceReplayer` on top of
    the feed axis.
``fault-injected``
    Adds a seeded fault plan, media-error detection and the full
    split/remap/verify remediation lifecycle.

All three accept ``feed="arrays" | "records"`` (the batched cursor vs
the legacy record-generator replayer path) and
``telemetry="none" | "invariants" | "recorder"``.  Outcomes are split
into *core* keys — which must be bit-identical across every axis the
oracle flips — and the ``"telemetry"`` key, which only exists when a
recorder was attached.

``kernel="reference" | "vector"`` selects the engine backend (the PR 6
differential axis); outcomes must be bit-identical across kernels and
carry no kernel marker of their own.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.detection import compute_detection_metrics, shrunk_spec
from repro.core.policies.device import WaitingScrubber
from repro.core.scrubber import Scrubber
from repro.core.sequential import SequentialScrub
from repro.core.staggered import StaggeredScrub
from repro.disk.drive import Drive
from repro.disk.models import PRESETS
from repro.faults import MediaFaults, RemediationPolicy, build_model
from repro.sched.cfq import CFQScheduler
from repro.sched.device import BlockDevice
from repro.sched.noop import NoopScheduler
from repro.sched.request import PriorityClass
from repro.sim import KERNELS, make_simulation
from repro.traces.catalog import generate_trace
from repro.traces.record import Trace
from repro.workloads.replay import TraceReplayer

__all__ = ["FAMILIES", "FEEDS", "TELEMETRY_MODES", "run_scenario"]

#: Scenario families the harness understands.
FAMILIES = ("synthetic", "trace-replay", "fault-injected")
#: Replay feeds (the PR 4 differential axis).
FEEDS = ("arrays", "records")
#: Telemetry modes (the PR 3 differential axis plus the checker).
TELEMETRY_MODES = ("none", "invariants", "recorder")

#: Default fault-model parameters for the harness's tiny drives and
#: sub-second horizons.  The stock model defaults are calibrated for
#: disk-days and would inject ~0 errors here, leaving the fault
#: lifecycle unexercised; these densities yield a handful of errors
#: per run.
_FAULT_DEFAULTS = {
    "bernoulli": {"per_sector_probability": 0.002},
    "bursts": {
        "inter_burst_mean": 0.08,
        "mean_burst_length": 4.0,
        "in_burst_time_mean": 0.01,
    },
}


def _chunked(trace: Trace, chunk_requests: int):
    """Slice ``trace`` into column-view chunks (no copies)."""
    chunks = []
    for start in range(0, len(trace), chunk_requests):
        end = min(start + chunk_requests, len(trace))
        chunks.append(
            Trace(
                trace.times[start:end],
                trace.lbns[start:end],
                trace.sectors[start:end],
                trace.is_write[start:end],
                name=trace.name,
                capacity_sectors=trace.capacity_sectors,
                validate=False,
            )
        )
    return chunks


def _build_sink(telemetry: str, total_sectors: int):
    if telemetry == "none":
        return None
    if telemetry == "invariants":
        from repro.verify.invariants import InvariantSink

        return InvariantSink(total_sectors=total_sectors)
    if telemetry == "recorder":
        from repro.telemetry import Recorder

        return Recorder(wall_time=False)
    raise ValueError(
        f"telemetry must be one of {TELEMETRY_MODES}: {telemetry!r}"
    )


def run_scenario(
    family: str = "synthetic",
    drive: str = "ultrastar",
    cylinders: int = 30,
    algorithm: str = "sequential",
    regions: int = 8,
    request_kb: int = 64,
    horizon: float = 0.4,
    seed: int = 0,
    trace_name: str = "TPCdisk66",
    rate_scale: float = 1.0,
    time_scale: float = 1.0,
    feed: str = "arrays",
    chunk_requests: int = 64,
    model: str = "bursts",
    model_params: Optional[dict] = None,
    spare_sectors: int = 512,
    cache_enabled: bool = True,
    cache_bug: Optional[bool] = None,
    threshold: float = 0.005,
    idle_gate: float = 0.002,
    scrub_delay: float = 0.0,
    telemetry: str = "none",
    kernel: str = "reference",
) -> dict:
    """Run one seeded scenario end to end; return its outcome dict.

    The function is module-level and all parameters are plain values,
    so it fans out through :class:`~repro.parallel.runner.SweepRunner`
    unchanged — the serial-vs-parallel differential axis maps exactly
    this function.

    Returns a dict whose non-``"telemetry"`` keys are a pure function
    of the parameters: device/request accounting, the foreground
    response-time array, scrub counters, the distilled fault lifecycle
    and the engine's final clock and event sequence.  With
    ``telemetry="recorder"`` the recorder's request event stream and
    metric snapshot ride along under ``"telemetry"``; with
    ``telemetry="invariants"`` the run is validated live (and the
    post-run checks executed) before the outcome is returned.
    """
    if family not in FAMILIES:
        raise ValueError(f"family must be one of {FAMILIES}: {family!r}")
    if feed not in FEEDS:
        raise ValueError(f"feed must be one of {FEEDS}: {feed!r}")
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}: {kernel!r}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive: {horizon}")
    if drive not in PRESETS:
        raise ValueError(f"unknown drive {drive!r}; choose from {sorted(PRESETS)}")

    spec = shrunk_spec(PRESETS[drive](), cylinders=cylinders)
    if cache_bug is not None:
        spec = spec.with_overrides(ata_verify_cache_bug=cache_bug)
    total_sectors = Drive(spec, cache_enabled=False).total_sectors

    sink = _build_sink(telemetry, total_sectors)
    sim = make_simulation(kernel, telemetry=sink)
    drive_model = Drive(spec, cache_enabled=cache_enabled)

    faults = None
    if family == "fault-injected":
        if model_params is None:
            model_params = _FAULT_DEFAULTS.get(model, {})
        plan = build_model(model, **model_params).generate(
            total_sectors, horizon, seed
        )
        faults = MediaFaults(plan, spare_sectors=spare_sectors)
        drive_model.install_faults(faults)

    scheduler = (
        NoopScheduler()
        if algorithm == "waiting"
        else CFQScheduler(idle_gate=idle_gate)
    )
    device = BlockDevice(sim, drive_model, scheduler)

    # Foreground: a generated catalog trace replayed open-loop.  The
    # trace is a pure function of (trace_name, horizon, seed,
    # rate_scale), so every axis of a differential pair rebuilds the
    # identical workload.
    trace = generate_trace(
        trace_name, duration=horizon, seed=seed, rate_scale=rate_scale
    )
    if family == "trace-replay":
        source = _chunked(trace, chunk_requests)
        if feed == "records":
            # Chunk-then-reassemble through the record path: same
            # requests, radically different plumbing.
            source = (r for chunk in source for r in chunk.records())
    else:
        source = trace if feed == "arrays" else trace.records()
    TraceReplayer(
        sim, device, source, time_scale=time_scale, wrap_lbn=True
    ).start()

    remediation = RemediationPolicy() if family == "fault-injected" else None
    if algorithm == "waiting":
        scrubber = WaitingScrubber(
            sim,
            device,
            SequentialScrub(),
            threshold=threshold,
            request_bytes=request_kb * 1024,
            remediation=remediation,
        )
    else:
        scrub_algorithm = (
            StaggeredScrub(regions=regions)
            if algorithm == "staggered"
            else SequentialScrub()
        )
        scrubber = Scrubber(
            sim,
            device,
            scrub_algorithm,
            request_bytes=request_kb * 1024,
            priority=PriorityClass.IDLE,
            delay=scrub_delay,
            remediation=remediation,
        )
    process = scrubber.start()

    sim.run(until=horizon)
    if process.is_alive:
        scrubber.request_stop()
        sim.run(until=process)
    if faults is not None:
        faults.finalize(horizon)

    if telemetry == "invariants":
        sink.finish(faults)

    response_times = device.log.response_times("foreground")
    outcome = {
        "family": family,
        "algorithm": algorithm,
        "seed": seed,
        "clock": sim.now,
        "event_seq": sim._seq,
        "completed": len(device.log),
        "foreground_completed": device.log.count("foreground"),
        "foreground_bytes": device.log.bytes_completed("foreground"),
        "response_times": np.asarray(response_times, dtype=float),
        "scrub": {
            "requests_issued": scrubber.requests_issued,
            "bytes_scrubbed": scrubber.bytes_scrubbed,
            "passes_completed": scrubber.passes_completed,
            "errors_seen": scrubber.errors_seen,
            "sectors_remapped": scrubber.sectors_remapped,
        },
    }
    if faults is not None:
        metrics = compute_detection_metrics(faults.log, horizon)
        outcome["faults"] = {
            "injected": metrics.injected,
            "detected": metrics.detected,
            "scrub_detected": metrics.scrub_detected,
            "cache_mask_events": metrics.cache_mask_events,
            "remapped": metrics.remapped,
            "verified_after_remap": metrics.verified_after_remap,
            "lifecycle_complete": metrics.lifecycle_complete,
            "records": [
                (r.time, r.kind.value, r.lbn, r.source, r.opcode, r.ok)
                for r in faults.log.records
            ],
        }
    if telemetry == "recorder":
        outcome["telemetry"] = {
            "requests": list(sink.requests),
            "instants": list(sink.instants),
            "progress": list(sink.progress_samples),
            "metrics": sink.metrics.snapshot(),
        }
    return outcome
