"""Correctness harness: invariants, differential oracle, config fuzzer.

Four PRs of optimisation (fast kernel, parallel sweeps, telemetry twin
loop, zero-copy replay) left the stack with pairs of code paths that
promise bit-identical behaviour and a web of conservation laws the
simulation must respect.  This package checks both, three ways:

* :mod:`repro.verify.invariants` — :class:`InvariantSink`, a telemetry
  sink that validates conservation laws *live* during any run and
  raises :class:`InvariantViolation` with the offending event window;
* :mod:`repro.verify.differential` — :func:`run_axes` /
  :func:`check_parallel`, flipping one implementation switch at a time
  (fast kernel vs instrumented twin, record vs batched replay feed,
  telemetry on vs off, serial vs shm-parallel) and requiring
  bit-identical outcomes;
* :mod:`repro.verify.fuzzer` — :func:`fuzz`, deterministic random
  configurations driven through both of the above, with failures
  minimised into copy-pasteable repro snippets.

:mod:`repro.verify.selftest` plants seeded bugs and asserts the
harness catches each one.  CLI entry point: ``repro verify``.

PR 7 adds :mod:`repro.verify.fleet`: conservation laws for fleet
campaigns — drive-state accounting across OK/degraded/rebuilding/lost,
shard-range conservation, and checkpoint-digest consistency for the
campaign journal.
"""

from repro.verify.differential import (
    AXES,
    DifferentialMismatch,
    check_monitor,
    check_parallel,
    outcome_signature,
    run_axes,
)
from repro.verify.fleet import (
    check_campaign_journal,
    check_fleet_conservation,
    check_shard_result,
)
from repro.verify.fuzzer import FuzzReport, fuzz, generate_configs, minimise
from repro.verify.invariants import (
    InvariantSink,
    InvariantViolation,
    check_error_log,
    check_media_faults,
)
from repro.verify.scenario import FAMILIES, run_scenario
from repro.verify.search import check_search_vs_grid
from repro.verify.selftest import MUTATIONS, run_selftest

__all__ = [
    "AXES",
    "FAMILIES",
    "MUTATIONS",
    "DifferentialMismatch",
    "FuzzReport",
    "InvariantSink",
    "InvariantViolation",
    "check_error_log",
    "check_campaign_journal",
    "check_fleet_conservation",
    "check_media_faults",
    "check_monitor",
    "check_parallel",
    "check_search_vs_grid",
    "check_shard_result",
    "fuzz",
    "generate_configs",
    "minimise",
    "outcome_signature",
    "run_axes",
    "run_scenario",
    "run_selftest",
]
