"""Differential check: successive-halving search vs exhaustive grid.

The search is a *pruning* optimisation: it may only skip work the
exhaustive grid would have wasted, never change the answer materially.
The contract, checked per workload:

* the searched parameters' **achieved slowdown meets the goal**
  exactly (the final rung simulates them on the full idle sample — no
  tolerance here);
* the searched parameters' **throughput is within ``tolerance``**
  (default 1%, relative) of the exhaustive grid's optimum — the slack
  admits a subsample mis-ranking two near-tied sizes, nothing more;
* with the default schedule the chosen parameters are *identical* to
  the grid's on the seeded catalog suite (asserted by
  ``make bench-corpus``; the tolerance is the documented contract, the
  identity is the observed reality).

A violation raises
:class:`~repro.verify.differential.DifferentialMismatch` with
``axis="search"``, keeping the reporting/fuzzing machinery uniform.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis.service_model import ScrubServiceModel
from repro.analysis.slowdown import SIM_METER
from repro.core.optimizer import (
    DEFAULT_MAX_SLOWDOWN,
    ScrubParameterOptimizer,
)
from repro.core.search import SuccessiveHalvingSearch
from repro.verify.differential import DifferentialMismatch

#: Relative throughput slack the searched optimum is allowed vs the grid.
DEFAULT_SEARCH_TOLERANCE = 0.01


def check_search_vs_grid(
    durations: np.ndarray,
    total_requests: int,
    span: float,
    service_model: ScrubServiceModel,
    slowdown_goal: float,
    sizes: Optional[Sequence[int]] = None,
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
    seed: int = 0,
    tolerance: float = DEFAULT_SEARCH_TOLERANCE,
    runner=None,
) -> dict:
    """Run both optimisers and enforce the search safety contract.

    Returns ``{"grid": OptimalParameters, "search": SearchOutcome,
    "grid_sims": .., "grid_interval_evals": .., "speedup": ..}`` on
    success (the effort numbers are serial-exact; with a ``runner``
    they cover this process only).  Raises
    :class:`DifferentialMismatch` on contract violation; a
    :class:`ValueError` from *both* sides (goal unattainable) is not a
    mismatch and propagates.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative: {tolerance}")
    params = {
        "slowdown_goal": slowdown_goal,
        "seed": seed,
        "idle_samples": int(len(durations)),
        "tolerance": tolerance,
    }
    optimizer = ScrubParameterOptimizer(
        durations, total_requests, span, service_model,
        sizes=sizes, max_slowdown=max_slowdown,
    )
    search = SuccessiveHalvingSearch(
        durations, total_requests, span, service_model,
        sizes=sizes, max_slowdown=max_slowdown, seed=seed,
    )
    before = SIM_METER.snapshot()
    try:
        grid_best = optimizer.optimize(
            slowdown_goal, runner=runner, prune=False
        ) if runner is None else optimizer.optimize(slowdown_goal, runner=runner)
    except ValueError:
        grid_best = None
    after = SIM_METER.snapshot()
    try:
        outcome = search.search(slowdown_goal, runner=runner)
    except ValueError:
        outcome = None

    if (grid_best is None) != (outcome is None):
        raise DifferentialMismatch(
            "search",
            params,
            "feasibility disagreement: grid "
            f"{'found parameters' if grid_best else 'found none'}, search "
            f"{'found parameters' if outcome else 'found none'}",
        )
    if grid_best is None:
        raise ValueError(
            f"no parameters meet slowdown goal {slowdown_goal}s "
            "for this workload"
        )

    best = outcome.best
    if best.achieved_slowdown > slowdown_goal:
        raise DifferentialMismatch(
            "search",
            params,
            f"searched optimum violates the goal: achieved "
            f"{best.achieved_slowdown!r} > goal {slowdown_goal!r}",
        )
    floor = grid_best.throughput * (1.0 - tolerance)
    if best.throughput < floor:
        raise DifferentialMismatch(
            "search",
            params,
            "searched throughput outside tolerance: "
            f"{best.throughput!r} < {floor!r} "
            f"(grid chose {grid_best.request_bytes} B @ "
            f"{grid_best.threshold!r}s = {grid_best.throughput!r} B/s; "
            f"search chose {best.request_bytes} B @ "
            f"{best.threshold!r}s = {best.throughput!r} B/s)",
        )
    grid_sims = after["sims"] - before["sims"]
    grid_evals = after["interval_evals"] - before["interval_evals"]
    return {
        "grid": grid_best,
        "search": outcome,
        "grid_sims": grid_sims,
        "grid_interval_evals": grid_evals,
        "speedup": (
            grid_evals / outcome.interval_evals
            if outcome.interval_evals else float("inf")
        ),
    }
