"""Differential oracle: independent code paths must agree bit-for-bit.

Four PRs of optimisation left the stack with pairs of code paths that
promise identical observable behaviour.  Each promise is an *axis* the
oracle can flip while holding the seeded scenario fixed:

==================  ====================================================
axis                paths compared
==================  ====================================================
``kernel-twin``     engine fast loop vs the instrumented twin loop (the
                    twin is selected whenever an enabled sink is
                    attached)
``kernel-backend``  the reference heap kernel vs the PR 6 numpy
                    batch-advance kernel (:mod:`repro.sim.vector`) —
                    the scenario's own ``kernel`` parameter is
                    overridden on both sides
``feed``            legacy record-generator replay vs the PR 4 batched
                    ``_ReplayCursor`` array feed — compared *with* a
                    recorder attached, so the full event stream and
                    metric snapshot participate in the signature
``telemetry``       telemetry off vs a recording :class:`Recorder` —
                    the sink-passivity contract (observation never
                    perturbs)
``parallel``        serial execution vs the shm-parallel
                    :class:`~repro.parallel.runner.SweepRunner` pool
``monitor``         a fleet campaign with no observer vs the same
                    campaign under a live
                    :class:`~repro.obs.monitor.CampaignMonitor` — the
                    campaign-scale passivity contract (PR 8)
==================  ====================================================

Outcomes are reduced to a SHA-256 *signature* through
:func:`repro.parallel.cache.canonicalize` (floats hex-formatted,
arrays hashed by content), so "agree" means bit-identical — a single
ULP of drift or one reordered event flips the signature.  A mismatch
raises :class:`DifferentialMismatch` naming the axis, the parameters
and the first differing key.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from repro.parallel.cache import canonicalize
from repro.verify.scenario import run_scenario

__all__ = [
    "AXES",
    "DifferentialMismatch",
    "check_monitor",
    "check_parallel",
    "outcome_signature",
    "run_axes",
]

#: All axes, in the order ``run_axes`` exercises them.  ``parallel``
#: is batch-level (one pool spawn amortised over many configs) and
#: lives in :func:`check_parallel`; ``monitor`` runs a small seeded
#: fleet campaign rather than the scenario itself.
AXES = (
    "kernel-twin", "kernel-backend", "feed", "telemetry", "parallel",
    "monitor",
)


class DifferentialMismatch(AssertionError):
    """Two code paths that must agree produced different outcomes."""

    def __init__(self, axis: str, params: dict, detail: str) -> None:
        self.axis = axis
        self.params = dict(params)
        self.detail = detail
        super().__init__(
            f"differential axis {axis!r} diverged: {detail}\n"
            f"  scenario: {params!r}"
        )


def outcome_signature(outcome: dict, include_telemetry: bool = True) -> str:
    """SHA-256 signature of a :func:`run_scenario` outcome.

    ``include_telemetry=False`` drops the ``"telemetry"`` key so
    outcomes recorded with different sinks can still be compared on
    the simulation's core behaviour.
    """
    if not include_telemetry:
        outcome = {k: v for k, v in outcome.items() if k != "telemetry"}
    return hashlib.sha256(
        repr(canonicalize(outcome)).encode()
    ).hexdigest()


def _first_difference(a: dict, b: dict) -> str:
    """Human-readable pointer at the first key where outcomes differ."""
    for key in sorted(set(a) | set(b)):
        if key == "telemetry":
            continue
        ca, cb = canonicalize(a.get(key)), canonicalize(b.get(key))
        if ca != cb:
            return f"key {key!r}: {_clip(ca)} != {_clip(cb)}"
    ta, tb = a.get("telemetry"), b.get("telemetry")
    if ta is not None and tb is not None:
        for key in sorted(set(ta) | set(tb)):
            ca, cb = canonicalize(ta.get(key)), canonicalize(tb.get(key))
            if ca != cb:
                return f"telemetry key {key!r}: {_clip(ca)} != {_clip(cb)}"
    return "signatures differ but no key-level difference found"


def _clip(value, limit: int = 160) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _compare(
    axis: str, params: dict, a: dict, b: dict, include_telemetry: bool
) -> str:
    sig_a = outcome_signature(a, include_telemetry=include_telemetry)
    sig_b = outcome_signature(b, include_telemetry=include_telemetry)
    if sig_a != sig_b:
        raise DifferentialMismatch(axis, params, _first_difference(a, b))
    return sig_a


def run_axes(
    params: dict, axes: Optional[Sequence[str]] = None
) -> Dict[str, str]:
    """Exercise the per-scenario differential axes on one configuration.

    ``params`` are :func:`run_scenario` kwargs *without* ``feed`` /
    ``telemetry`` (the oracle owns those switches).  Returns the agreed
    signature per axis; raises :class:`DifferentialMismatch` on the
    first divergence.  The ``parallel`` axis is intentionally absent —
    it compares whole batches (:func:`check_parallel`) so the process
    pool is spawned once per fleet, not once per config.
    """
    selected = tuple(axes) if axes is not None else AXES
    unknown = set(selected) - set(AXES)
    if unknown:
        raise ValueError(f"unknown axes {sorted(unknown)}; choose from {AXES}")
    base = {k: v for k, v in params.items() if k not in ("feed", "telemetry")}
    signatures: Dict[str, str] = {}

    if "kernel-twin" in selected:
        fast = run_scenario(**base, telemetry="none")
        twin = run_scenario(**base, telemetry="invariants")
        signatures["kernel-twin"] = _compare(
            "kernel-twin", base, fast, twin, include_telemetry=False
        )
    if "kernel-backend" in selected:
        kb = {k: v for k, v in base.items() if k != "kernel"}
        reference = run_scenario(**kb, kernel="reference", telemetry="none")
        vector = run_scenario(**kb, kernel="vector", telemetry="none")
        signatures["kernel-backend"] = _compare(
            "kernel-backend", kb, reference, vector, include_telemetry=False
        )
    if "feed" in selected:
        arrays = run_scenario(**base, feed="arrays", telemetry="recorder")
        records = run_scenario(**base, feed="records", telemetry="recorder")
        signatures["feed"] = _compare(
            "feed", base, arrays, records, include_telemetry=True
        )
    if "telemetry" in selected:
        off = run_scenario(**base, telemetry="none")
        on = run_scenario(**base, telemetry="recorder")
        signatures["telemetry"] = _compare(
            "telemetry", base, off, on, include_telemetry=False
        )
    if "monitor" in selected:
        signatures["monitor"] = check_monitor(int(base.get("seed", 0) or 0))
    return signatures


def check_monitor(seed: int = 0) -> str:
    """The ``monitor`` axis: campaign observability must be passive.

    Runs one small seeded fleet campaign twice — bare, then under a
    live :class:`~repro.obs.monitor.CampaignMonitor` writing every
    surface (status.json on each event, events JSONL, spans) into a
    temp directory — and requires the canonical campaign metrics and
    the merged telemetry snapshot to be bit-identical.  Latent windows
    are given explicitly so the check stays milliseconds-fast (no MLET
    schedule replay).
    """
    import tempfile

    from repro.fleet.campaign import CampaignRunner
    from repro.fleet.spec import (
        CampaignSpec,
        DriveClass,
        FleetSpec,
        ScrubPolicySpec,
    )
    from repro.obs.monitor import CampaignMonitor

    spec = CampaignSpec(
        fleet=FleetSpec(
            groups=16,
            disks_per_group=4,
            classes=(
                DriveClass(mttf_hours=2.0e4, lse_burst_rate_per_hour=1e-3),
            ),
        ),
        policies=(
            ScrubPolicySpec(name="weekly", latent_window_hours=84.0),
            ScrubPolicySpec(
                name="staggered", algorithm="staggered",
                latent_window_hours=62.0,
            ),
        ),
        mission_years=5.0,
        seed=seed,
        shards=4,
    )
    bare = CampaignRunner(spec).run()
    with tempfile.TemporaryDirectory() as tmp:
        monitored = CampaignRunner(
            spec, monitor=CampaignMonitor(tmp, interval=0.0)
        ).run()
    off = {"metrics": bare.metrics_dict(), "telemetry": bare.telemetry}
    on = {"metrics": monitored.metrics_dict(), "telemetry": monitored.telemetry}
    return _compare("monitor", {"seed": seed}, off, on, include_telemetry=True)


def check_parallel(
    param_sets: Sequence[dict], workers: int = 2
) -> List[str]:
    """The ``parallel`` axis: serial vs pooled sweep over a whole batch.

    Maps :func:`run_scenario` over ``param_sets`` twice through
    :class:`~repro.parallel.runner.SweepRunner` — once with one worker
    (in-process) and once with ``workers`` processes (shared-memory
    trace shipping enabled) — and requires position-wise identical
    outcome signatures.  Returns the per-config signatures.
    """
    from repro.parallel.runner import SweepRunner

    if len(param_sets) == 0:
        return []
    jobs = [dict(p, telemetry="recorder") for p in param_sets]
    serial = SweepRunner(workers=1).map(run_scenario, jobs)
    pooled = SweepRunner(workers=workers).map(run_scenario, jobs)
    signatures: List[str] = []
    for params, a, b in zip(jobs, serial, pooled):
        signatures.append(
            _compare("parallel", params, a, b, include_telemetry=True)
        )
    return signatures
