"""Runtime invariant checking: conservation laws validated live.

:class:`InvariantSink` is a :class:`~repro.telemetry.sink.TelemetrySink`
that *validates* instead of recording: attached to a simulation it
watches the same blktrace-style hook stream the
:class:`~repro.telemetry.sink.Recorder` consumes and raises a
structured :class:`InvariantViolation` the moment an event breaks one
of the stack's conservation laws:

* **clock monotonicity** — no hook may report a time earlier than the
  previous hook (the engine pops events in time order, so a backwards
  timestamp means a component cached a stale ``now``);
* **request lifecycle** — every request is queued, dispatched and
  completed *exactly once*, in that order, tracked by its submission
  sequence number;
* **queue accounting** (Little's-law bookkeeping) — at all times
  ``queued >= dispatched >= completed`` and at most one request is on
  the (single-server) drive; at the end of a run everything dispatched
  must have completed;
* **LBN bounds** — no command may touch sectors outside
  ``[0, total_sectors)``;
* **scrub-pass coverage** — when a scrub pass completes, the union of
  the ``VERIFY`` extents issued during that pass must cover the whole
  disk, for sequential and staggered orders alike;
* **fault lifecycle** — detection implies a prior onset, no sector is
  reallocated twice, the spare pool never over-drains, and a
  ``verify_after_remap`` implies a prior remap.

Violations carry the offending event plus a window of the events that
led up to it, so a failure inside a million-event run pinpoints its
context without a debugger.  The sink only observes — attaching it
never changes what a simulation does — and when it is *not* attached
the engine runs the untouched fast loop, so the checker costs nothing
unless asked for (``benchmarks/perf_verify.py`` gates the enabled
overhead on the PR 1 churn workload).

Post-run checks that need whole-run state (:func:`check_error_log`,
:func:`check_media_faults`) live here too; :meth:`InvariantSink.finish`
runs them when given the run's fault state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.telemetry.sink import TelemetrySink

__all__ = [
    "InvariantSink",
    "InvariantViolation",
    "check_error_log",
    "check_media_faults",
]

#: Events of context retained for violation reports.
_WINDOW = 32


class InvariantViolation(AssertionError):
    """A simulation broke a conservation law.

    Parameters
    ----------
    invariant:
        Short machine-readable name (``"request-lifecycle"``,
        ``"scrub-coverage"``, ...).
    message:
        Human-readable description of what was violated and by what.
    time:
        Simulation time of the offending event, when known.
    window:
        The most recent hook events (``(time, hook, detail)`` tuples)
        leading up to the violation, oldest first.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        time: Optional[float] = None,
        window: Optional[List[Tuple]] = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.time = time
        self.window = list(window or [])
        super().__init__(self.report())

    def report(self) -> str:
        """The violation plus its event window, ready to print."""
        at = f" at t={self.time:.6f}" if self.time is not None else ""
        lines = [f"invariant {self.invariant!r} violated{at}: {self.message}"]
        if self.window:
            lines.append(
                f"  last {len(self.window)} events leading up to the violation:"
            )
            for when, hook, detail in self.window:
                lines.append(f"    t={when:<12.6f} {hook:<20} {detail}")
        return "\n".join(lines)


def _merge_extents(extents: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge ``(lbn, sectors)`` extents into sorted disjoint intervals."""
    if not extents:
        return []
    intervals = sorted((lbn, lbn + sectors) for lbn, sectors in extents)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


class InvariantSink(TelemetrySink):
    """Validating telemetry sink: conservation laws checked per event.

    Parameters
    ----------
    total_sectors:
        Disk size for LBN-bound and scrub-coverage checks; ``None``
        skips both (the other invariants still run).
    check_coverage:
        Validate that completed scrub passes covered the full disk.
        Leave on unless the scenario legitimately scrubs a subset.
    """

    enabled = True

    def __init__(
        self,
        total_sectors: Optional[int] = None,
        check_coverage: bool = True,
    ) -> None:
        super().__init__()
        self.total_sectors = total_sectors
        self.check_coverage = check_coverage
        self.last_time = float("-inf")
        self.events_seen = 0
        #: Lifecycle state by request sequence number.
        self._queued: Set[int] = set()
        self._dispatched: Set[int] = set()
        self._done: Set[int] = set()
        self.queued_total = 0
        self.dispatched_total = 0
        self.completed_total = 0
        #: VERIFY extents per scrub source since its last pass start.
        self._pass_extents: Dict[str, List[Tuple[int, int]]] = {}
        self._pass_open: Dict[str, int] = {}
        #: Fault lifecycle bookkeeping from ``fault_event`` hooks.
        self._remapped_lbns: Set[int] = set()
        self._window: Deque[Tuple] = deque(maxlen=_WINDOW)

    # -- helpers -------------------------------------------------------------
    def _note(self, now: float, hook: str, detail: str) -> None:
        self._window.append((now, hook, detail))
        self.events_seen += 1
        if now < self.last_time - 1e-12:
            self._fail(
                "clock-monotonicity",
                f"{hook} reported t={now!r} after t={self.last_time!r}",
                now,
            )
        self.last_time = max(self.last_time, now)

    def _fail(self, invariant: str, message: str, now: Optional[float]) -> None:
        raise InvariantViolation(
            invariant, message, time=now, window=list(self._window)
        )

    def _check_bounds(self, now: float, command: Any) -> None:
        if self.total_sectors is None:
            return
        lbn = command.lbn
        sectors = command.sectors
        if lbn < 0 or sectors <= 0 or lbn + sectors > self.total_sectors:
            self._fail(
                "lbn-bounds",
                f"{command.opcode.value} [{lbn}, {lbn + sectors}) outside "
                f"disk of {self.total_sectors} sectors",
                now,
            )

    # -- request lifecycle ---------------------------------------------------
    def request_queued(self, now: float, request: Any) -> None:
        self._note(now, "request_queued", repr(request))
        self._check_bounds(now, request.command)
        seq = request.seq
        if seq in self._queued or seq in self._dispatched or seq in self._done:
            self._fail(
                "request-lifecycle", f"request #{seq} queued twice: {request!r}", now
            )
        self._queued.add(seq)
        self.queued_total += 1
        if request.command.opcode.value == "verify" and request.source:
            self._pass_extents.setdefault(request.source, []).append(
                (request.command.lbn, request.command.sectors)
            )

    def request_dispatched(self, now: float, request: Any) -> None:
        self._note(now, "request_dispatched", repr(request))
        seq = request.seq
        if seq not in self._queued:
            origin = "completed" if seq in self._done else (
                "already dispatched" if seq in self._dispatched else "never queued"
            )
            self._fail(
                "request-lifecycle",
                f"request #{seq} dispatched but {origin}: {request!r}",
                now,
            )
        if len(self._dispatched) >= 1:
            self._fail(
                "queue-accounting",
                f"second request on the single-server drive: {request!r} "
                f"joins #{sorted(self._dispatched)}",
                now,
            )
        self._queued.discard(seq)
        self._dispatched.add(seq)
        self.dispatched_total += 1

    def request_completed(self, now: float, request: Any) -> None:
        self._note(now, "request_completed", repr(request))
        seq = request.seq
        if seq not in self._dispatched:
            origin = "completed twice" if seq in self._done else (
                "still queued" if seq in self._queued else "never dispatched"
            )
            self._fail(
                "request-lifecycle",
                f"request #{seq} completed but {origin}: {request!r}",
                now,
            )
        self._dispatched.discard(seq)
        self._done.add(seq)
        self.completed_total += 1
        if request.complete_time is not None and request.submit_time is not None:
            if request.complete_time < request.submit_time:
                self._fail(
                    "request-lifecycle",
                    f"request #{seq} completed before submission "
                    f"({request.complete_time} < {request.submit_time})",
                    now,
                )

    # -- scrubbing -----------------------------------------------------------
    def scrub_pass_started(self, now: float, source: str, index: int) -> None:
        self._note(now, "scrub_pass_started", f"{source} pass {index}")
        self._pass_extents[source] = []
        self._pass_open[source] = index

    def scrub_pass_completed(
        self, now: float, source: str, index: int, bytes_scrubbed: int
    ) -> None:
        self._note(
            now, "scrub_pass_completed", f"{source} pass {index} ({bytes_scrubbed}B)"
        )
        open_index = self._pass_open.pop(source, None)
        if open_index is not None and open_index != index:
            self._fail(
                "scrub-coverage",
                f"{source} completed pass {index} but pass {open_index} was open",
                now,
            )
        extents = self._pass_extents.pop(source, [])
        if not self.check_coverage or self.total_sectors is None:
            return
        merged = _merge_extents(extents)
        covered = sum(end - start for start, end in merged)
        if (
            len(merged) != 1
            or merged[0][0] != 0
            or merged[0][1] < self.total_sectors
        ):
            gaps = []
            cursor = 0
            for start, end in merged:
                if start > cursor:
                    gaps.append((cursor, start))
                cursor = max(cursor, end)
            if cursor < self.total_sectors:
                gaps.append((cursor, self.total_sectors))
            self._fail(
                "scrub-coverage",
                f"{source} pass {index} covered {covered} of "
                f"{self.total_sectors} sectors; gaps: {gaps[:4]}"
                + ("..." if len(gaps) > 4 else ""),
                now,
            )

    def scrub_progress(self, now: float, source: str, fraction: float) -> None:
        self._note(now, "scrub_progress", f"{source} {fraction:.4f}")
        if not -1e-9 <= fraction <= 1.0 + 1e-9:
            self._fail(
                "scrub-coverage",
                f"{source} progress fraction {fraction} outside [0, 1]",
                now,
            )

    # -- faults --------------------------------------------------------------
    def fault_event(self, now: float, kind: str, lbn: int, **args: Any) -> None:
        self._note(now, "fault_event", f"{kind} lbn={lbn} {args}")
        if self.total_sectors is not None and not 0 <= lbn < self.total_sectors:
            self._fail(
                "lbn-bounds",
                f"fault event {kind!r} for LBN {lbn} outside disk of "
                f"{self.total_sectors} sectors",
                now,
            )
        if kind == "remap":
            if lbn in self._remapped_lbns:
                self._fail(
                    "fault-lifecycle",
                    f"sector {lbn} reallocated twice",
                    now,
                )
            self._remapped_lbns.add(lbn)
        elif kind == "verify_after_remap" and lbn not in self._remapped_lbns:
            self._fail(
                "fault-lifecycle",
                f"verify_after_remap for LBN {lbn} with no prior remap",
                now,
            )

    # -- engine --------------------------------------------------------------
    def engine_run(
        self, events: int, sim_time: float, wall_seconds: Optional[float]
    ) -> None:
        self._note(sim_time, "engine_run", f"{events} events")
        if events < 0:
            self._fail("queue-accounting", f"negative event count {events}", sim_time)

    # -- generic -------------------------------------------------------------
    def instant(
        self, now: float, category: str, name: str, args: Optional[dict] = None
    ) -> None:
        self._note(now, "instant", f"{category}.{name}")

    # -- post-run ------------------------------------------------------------
    def finish(self, faults: Any = None) -> None:
        """End-of-run accounting; call after the simulation drains.

        Verifies that nothing is left on the drive, that total counts
        balance (``queued == dispatched + waiting``,
        ``dispatched == completed``), and — when given the run's
        :class:`~repro.faults.state.MediaFaults` — the whole error
        lifecycle (:func:`check_media_faults`).

        Requests still waiting in a scheduler queue at the horizon are
        legal (an open-loop replay can end mid-burst), and so is the
        single request the non-preemptive drive was servicing when the
        clock stopped — but never more than one, and the totals must
        balance: ``queued == completed + waiting + in-flight``.
        """
        at = self.last_time if self.last_time > float("-inf") else None
        in_flight = len(self._dispatched)
        if in_flight > 1:
            self._fail(
                "queue-accounting",
                f"run ended with {in_flight} requests on the single-server "
                f"drive: #{sorted(self._dispatched)}",
                at,
            )
        waiting = len(self._queued)
        if self.queued_total != self.completed_total + waiting + in_flight:
            self._fail(
                "queue-accounting",
                f"queued {self.queued_total} != completed "
                f"{self.completed_total} + waiting {waiting} + in-flight "
                f"{in_flight}",
                at,
            )
        if faults is not None:
            check_media_faults(faults, total_sectors=self.total_sectors)


def check_error_log(log: Any) -> None:
    """Validate an :class:`~repro.faults.log.ErrorLog`'s lifecycle.

    Raises :class:`InvariantViolation` when: a detection precedes its
    sector's onset (or has none), a sector is reallocated twice, a
    successful post-remap verify has no preceding remap, or any record
    stream goes backwards in time.
    """
    from repro.faults.log import ErrorEventKind

    last = float("-inf")
    remapped: Set[int] = set()
    for record in log.records:
        # INJECTED records are appended lazily (when the clock first
        # sweeps past the onset) carrying the *onset* time, so they are
        # legitimately backdated; every other kind records "now".
        if record.kind is not ErrorEventKind.INJECTED:
            if record.time < last - 1e-12:
                raise InvariantViolation(
                    "clock-monotonicity",
                    f"error log goes backwards at {record}",
                    time=record.time,
                )
            last = max(last, record.time)
        if record.kind is ErrorEventKind.MEDIA_ERROR:
            onset = log.onsets.get(record.lbn)
            if onset is None:
                raise InvariantViolation(
                    "fault-lifecycle",
                    f"MEDIA_ERROR for LBN {record.lbn} with no recorded onset",
                    time=record.time,
                )
            if record.time < onset - 1e-12:
                raise InvariantViolation(
                    "fault-lifecycle",
                    f"LBN {record.lbn} detected at {record.time} before its "
                    f"onset at {onset}",
                    time=record.time,
                )
        elif record.kind is ErrorEventKind.REALLOCATED:
            if record.lbn in remapped:
                raise InvariantViolation(
                    "fault-lifecycle",
                    f"sector {record.lbn} reallocated twice",
                    time=record.time,
                )
            remapped.add(record.lbn)
        elif record.kind is ErrorEventKind.VERIFY_AFTER_REMAP:
            if record.lbn not in remapped:
                raise InvariantViolation(
                    "fault-lifecycle",
                    f"verify_after_remap for LBN {record.lbn} with no prior "
                    f"reallocation",
                    time=record.time,
                )


def check_media_faults(faults: Any, total_sectors: Optional[int] = None) -> None:
    """Validate a run's final :class:`~repro.faults.state.MediaFaults`.

    Raises :class:`InvariantViolation` when the spare pool over-drained
    or counts don't balance (every activated error is either still
    active or remapped), then defers to :func:`check_error_log` for the
    per-record lifecycle.
    """
    if faults.spares_used < 0 or faults.spares_used > faults.spare_sectors:
        raise InvariantViolation(
            "fault-lifecycle",
            f"spare pool out of range: {faults.spares_used} used of "
            f"{faults.spare_sectors}",
        )
    if faults.remapped_count > faults.spares_used:
        raise InvariantViolation(
            "fault-lifecycle",
            f"{faults.remapped_count} sectors remapped but only "
            f"{faults.spares_used} spares consumed",
        )
    activated = len(faults._onset)
    accounted = faults.active_count + sum(
        1 for lbn in faults._onset if lbn in faults._remapped
    )
    if accounted != activated:
        raise InvariantViolation(
            "fault-lifecycle",
            f"{activated} activated errors but {accounted} accounted for "
            f"(active {faults.active_count} + remapped-after-onset)",
        )
    if total_sectors is not None:
        for lbn in faults._active:
            if not 0 <= lbn < total_sectors:
                raise InvariantViolation(
                    "lbn-bounds",
                    f"active bad sector {lbn} outside disk of "
                    f"{total_sectors} sectors",
                )
    check_error_log(faults.log)
