"""Seeded configuration fuzzer for the correctness harness.

:func:`fuzz` draws deterministic random configurations from the cross
product (workload trace × scrub algorithm × drive/interface × fault
plan × scheduler tunables), runs each one under the runtime invariant
checker and the differential oracle, and — batch-level, one process
pool per fleet — through the serial-vs-parallel axis.  The same
``(seed, n)`` always draws the same configurations, so a CI failure
reproduces locally with nothing but the seed.

A failing configuration is **minimised** greedily: every parameter
that differs from the quiet baseline defaults is reset in turn, and
the reset sticks whenever the failure (any
:class:`~repro.verify.invariants.InvariantViolation` or
:class:`~repro.verify.differential.DifferentialMismatch`) persists.
The survivor — usually two or three interesting parameters — is
reprinted as a copy-pasteable snippet::

    from repro.verify import run_axes
    run_axes({'family': 'fault-injected', 'algorithm': 'staggered', 'seed': 4111})
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.verify.differential import AXES, DifferentialMismatch, check_parallel, run_axes
from repro.verify.invariants import InvariantViolation

__all__ = ["DEFAULTS", "FuzzFailure", "FuzzReport", "fuzz", "generate_configs", "minimise"]

#: The quiet baseline configuration minimisation shrinks towards; keys
#: double as the set of parameters the fuzzer is allowed to vary.
DEFAULTS: Dict[str, object] = {
    "kernel": "reference",
    "family": "synthetic",
    "drive": "ultrastar",
    "cylinders": 30,
    "algorithm": "sequential",
    "regions": 8,
    "request_kb": 64,
    "horizon": 0.3,
    "seed": 0,
    "trace_name": "TPCdisk66",
    "rate_scale": 1.0,
    "chunk_requests": 64,
    "model": "bursts",
    "spare_sectors": 512,
    "cache_enabled": True,
    "cache_bug": None,
    "threshold": 0.005,
    "idle_gate": 0.002,
    "scrub_delay": 0.0,
}

#: Failure classes the harness is designed to catch; anything else
#: (e.g. a raw crash) is reported as a failure too, not swallowed.
_EXPECTED = (InvariantViolation, DifferentialMismatch)


def generate_configs(seed: int, n: int) -> List[dict]:
    """Draw ``n`` deterministic scenario configurations.

    Every field is drawn on every iteration (no draw depends on a
    previous choice), so config ``i`` of ``(seed, n)`` equals config
    ``i`` of ``(seed, m)`` for ``i < min(n, m)`` — trimming a fuzz run
    never reshuffles it.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative: {n}")
    rng = np.random.default_rng(seed)
    configs = []
    for _ in range(n):
        family = ("synthetic", "trace-replay", "fault-injected")[
            int(rng.integers(3))
        ]
        drive = ("ultrastar", "max3073rc", "caviar")[int(rng.integers(3))]
        algorithm = ("sequential", "staggered", "waiting")[int(rng.integers(3))]
        regions = int(rng.integers(2, 17))
        request_kb = (16, 32, 64, 128)[int(rng.integers(4))]
        cylinders = int(rng.integers(20, 41))
        horizon = round(float(rng.uniform(0.15, 0.4)), 3)
        trace_name = ("TPCdisk66", "MSRusr1", "HPc6t8d0")[int(rng.integers(3))]
        rate_scale = round(float(rng.uniform(0.5, 2.0)), 3)
        chunk_requests = (16, 64, 256)[int(rng.integers(3))]
        model = ("bernoulli", "bursts")[int(rng.integers(2))]
        spare_sectors = (4, 64, 512)[int(rng.integers(3))]
        cache_enabled = bool(rng.integers(2))
        cache_bug = (None, False, True)[int(rng.integers(3))]
        threshold = round(float(rng.uniform(0.001, 0.02)), 4)
        idle_gate = round(float(rng.uniform(0.0005, 0.005)), 4)
        scrub_delay = (0.0, 0.0005)[int(rng.integers(2))]
        kernel = ("reference", "vector")[int(rng.integers(2))]
        run_seed = int(rng.integers(0, 2**31 - 1))
        configs.append(
            {
                "kernel": kernel,
                "family": family,
                "drive": drive,
                "cylinders": cylinders,
                "algorithm": algorithm,
                "regions": regions,
                "request_kb": request_kb,
                "horizon": horizon,
                "seed": run_seed,
                "trace_name": trace_name,
                "rate_scale": rate_scale,
                "chunk_requests": chunk_requests,
                "model": model,
                "spare_sectors": spare_sectors,
                "cache_enabled": cache_enabled,
                "cache_bug": cache_bug,
                "threshold": threshold,
                "idle_gate": idle_gate,
                "scrub_delay": scrub_delay,
            }
        )
    return configs


def _failure_of(params: dict, axes: Sequence[str]):
    """Run one config through the oracle.

    Returns ``(failure-or-None, agreed-signatures)``.
    """
    try:
        return None, run_axes(params, axes=axes)
    except _EXPECTED as exc:
        return exc, {}


def minimise(
    params: dict,
    axes: Sequence[str],
    still_fails: Optional[Callable[[dict], bool]] = None,
) -> dict:
    """Greedy one-pass shrink of a failing configuration.

    Resets each parameter to its :data:`DEFAULTS` value (most-complex
    first: family, then fault/workload knobs, then tunables) and keeps
    the reset whenever the configuration still fails.  One pass is
    enough in practice; the result is a local minimum, not a global
    one — it exists to make the repro snippet readable, not canonical.
    """
    if still_fails is None:
        still_fails = lambda p: _failure_of(p, axes)[0] is not None
    current = dict(params)
    for key in DEFAULTS:
        if key not in current or current[key] == DEFAULTS[key]:
            continue
        candidate = dict(current)
        candidate[key] = DEFAULTS[key]
        if still_fails(candidate):
            current = candidate
    return current


def repro_snippet(params: dict, axes: Sequence[str]) -> str:
    """Copy-pasteable reproduction of a failing configuration."""
    interesting = {
        k: v
        for k, v in params.items()
        if k not in DEFAULTS or DEFAULTS[k] != v
    }
    lines = ["from repro.verify import run_axes", ""]
    per_config_axes = tuple(a for a in AXES if a != "parallel")
    if tuple(axes) != per_config_axes and tuple(axes) != tuple(AXES):
        lines.append(f"run_axes({interesting!r}, axes={tuple(axes)!r})")
    else:
        lines.append(f"run_axes({interesting!r})")
    return "\n".join(lines)


@dataclass
class FuzzFailure:
    """One failing configuration, minimised and ready to reprint."""

    index: int
    params: dict
    error: Exception
    minimised: dict
    snippet: str

    def describe(self) -> str:
        head = type(self.error).__name__
        return (
            f"config #{self.index} failed ({head}):\n"
            f"{self.error}\n"
            f"minimised repro:\n{self.snippet}"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz` fleet."""

    seed: int
    configs: int
    axes: tuple
    passed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: Agreed differential signatures per config index (diagnostics).
    signatures: Dict[int, Dict[str, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else "FAIL"
        return (
            f"verify fuzz [{status}]: {self.passed}/{self.configs} configs "
            f"passed (seed {self.seed}, axes {'/'.join(self.axes)})"
        )


def fuzz(
    seed: int = 0,
    n: int = 50,
    axes: Optional[Sequence[str]] = None,
    parallel_workers: int = 2,
    progress: Optional[Callable[[int, int], None]] = None,
    kernel: Optional[str] = None,
) -> FuzzReport:
    """Fuzz ``n`` seeded configurations under the full harness.

    Per config: the invariant checker (via the ``kernel-twin`` axis,
    which runs it as the twin's sink) and the per-scenario differential
    axes.  Per fleet: one batch serial-vs-parallel comparison over
    every configuration that passed, so the pool is spawned twice per
    fuzz run rather than twice per config.  ``axes=()`` restricts to
    invariants only (each config runs once, validated).

    ``kernel`` forces every drawn configuration onto one engine backend
    (the fuzzer otherwise draws it per config); the ``kernel-backend``
    axis still compares both backends regardless.

    Never raises on a finding — failures are minimised and collected
    into the returned :class:`FuzzReport`.
    """
    selected = tuple(axes) if axes is not None else AXES
    per_config = tuple(a for a in selected if a != "parallel")
    report = FuzzReport(seed=seed, configs=n, axes=selected)
    healthy: List[dict] = []
    configs = generate_configs(seed, n)
    if kernel is not None:
        for params in configs:
            params["kernel"] = kernel
    for index, params in enumerate(configs):
        if progress is not None:
            progress(index, n)
        if per_config:
            error, signatures = _failure_of(params, per_config)
        else:
            # Invariants only: a single validated run.
            from repro.verify.scenario import run_scenario

            error, signatures = None, {}
            try:
                run_scenario(**params, telemetry="invariants")
            except _EXPECTED as exc:
                error = exc
        if error is None:
            report.passed += 1
            healthy.append(params)
            if signatures:
                report.signatures[index] = signatures
            continue
        minimised = (
            minimise(params, per_config) if per_config else dict(params)
        )
        report.failures.append(
            FuzzFailure(
                index=index,
                params=params,
                error=error,
                minimised=minimised,
                snippet=repro_snippet(minimised, per_config or selected),
            )
        )
    if "parallel" in selected and healthy:
        try:
            check_parallel(healthy, workers=parallel_workers)
        except _EXPECTED as exc:
            report.failures.append(
                FuzzFailure(
                    index=-1,
                    params=getattr(exc, "params", {}),
                    error=exc,
                    minimised=getattr(exc, "params", {}),
                    snippet=(
                        "from repro.verify import check_parallel\n"
                        f"check_parallel([{getattr(exc, 'params', {})!r}])"
                    ),
                )
            )
    return report
