"""Checker-of-the-checker: seeded bugs the harness must catch.

A verification layer that never fires is indistinguishable from one
that doesn't work.  This module keeps a registry of :data:`MUTATIONS`
— context managers that monkeypatch a *single, realistic* bug into the
stack — together with the scenario that exposes each one.  The
self-test plants every bug in turn and asserts the invariant checker
or the differential oracle rejects the run; it then re-runs the clean
scenario to prove the patch fully reverted.

The planted bugs (one per conservation law / differential axis):

``skip-last-extent``
    :class:`SequentialScrub` silently drops the tail extent of every
    pass — the classic off-by-one a refactor of the pass loop would
    introduce.  Caught by the *scrub-coverage* invariant.
``skip-last-region``
    :class:`StaggeredScrub` never visits its final region.  Same
    invariant, staggered order.
``drop-completion``
    The block device loses one request-completed notification — a
    dropped event in the lifecycle stream.  Caught by *queue
    accounting* (the single-server drive appears doubly occupied).
``double-remap``
    Remediation reallocates the same sector twice, over-drawing the
    spare pool.  Caught by the *fault-lifecycle* state machine.
``backdate-clock``
    A component reports a stale timestamp.  Caught by *clock
    monotonicity*.
``cursor-drift``
    The batched replay cursor drifts its due times by one part in
    10^12 — far below anything a summary statistic would notice.
    Caught by the differential oracle's *feed* axis.

Used by ``tests/test_verify_selftest.py`` and ``repro verify
--self-test``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, NamedTuple, Tuple

from repro.verify.differential import DifferentialMismatch, run_axes
from repro.verify.invariants import InvariantViolation
from repro.verify.scenario import run_scenario

__all__ = ["MUTATIONS", "Mutation", "SelfTestResult", "run_selftest"]

#: Scenario each mutation is planted into (chosen to reach the buggy
#: code quickly: short horizon, tiny drive, dense fault plan).
#: The Cello news disk's sparse load leaves the scrubber room to
#: complete full passes inside the default horizon, which the coverage
#: mutations need (a pass that never completes is never coverage-checked).
_SEQ = {
    "family": "synthetic",
    "algorithm": "sequential",
    "trace_name": "HPc6t8d0",
    "rate_scale": 0.5,
    "seed": 11,
}
_STAG = {**_SEQ, "algorithm": "staggered", "regions": 6}
_FAULTY = {
    "family": "fault-injected",
    "algorithm": "sequential",
    "trace_name": "HPc6t8d0",
    "rate_scale": 0.5,
    "seed": 11,
    "model": "bernoulli",
    "model_params": {"per_sector_probability": 0.002},
    "cache_enabled": False,
}


@contextmanager
def _patched(owner, name, replacement):
    original = getattr(owner, name)
    setattr(owner, name, replacement)
    try:
        yield
    finally:
        setattr(owner, name, original)


@contextmanager
def _skip_last_extent():
    from repro.core.sequential import SequentialScrub

    original = SequentialScrub.next_extent

    def patched(self):
        if self._next < self._total and self._total - self._next <= self._step:
            self._next = self._total  # drop the tail extent
            return None
        return original(self)

    with _patched(SequentialScrub, "next_extent", patched):
        yield


@contextmanager
def _skip_last_region():
    from repro.core.staggered import StaggeredScrub

    original = StaggeredScrub.next_extent

    def patched(self):
        if self._region == self.regions - 1:
            self._region += 1  # never visit the final region
        return original(self)

    with _patched(StaggeredScrub, "next_extent", patched):
        yield


class _LossySink:
    """Forwarding sink proxy that corrupts the event stream.

    ``drop_completed_at``: swallow the Nth ``request_completed``.
    ``backdate_at``: report the Nth ``request_queued`` 50 ms early.
    Models a component losing or mis-timestamping a notification; the
    simulation itself is untouched.
    """

    def __init__(self, inner, drop_completed_at=None, backdate_at=None):
        self._inner = inner
        self._drop = drop_completed_at
        self._backdate = backdate_at
        self._completed = 0
        self._queued = 0
        self.enabled = inner.enabled

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def request_completed(self, now, request):
        self._completed += 1
        if self._completed == self._drop:
            return
        self._inner.request_completed(now, request)

    def request_queued(self, now, request):
        self._queued += 1
        if self._queued == self._backdate:
            now = now - 0.05
        self._inner.request_queued(now, request)


def _lossy_device(**proxy_kwargs):
    """Patch ``BlockDevice`` to wrap its sink in a :class:`_LossySink`."""
    from repro.sched.device import BlockDevice

    original = BlockDevice.__init__

    def patched(self, *args, **kwargs):
        original(self, *args, **kwargs)
        if self.telemetry is not None:
            self.telemetry = _LossySink(self.telemetry, **proxy_kwargs)

    return _patched(BlockDevice, "__init__", patched)


@contextmanager
def _drop_completion():
    with _lossy_device(drop_completed_at=5):
        yield


@contextmanager
def _backdate_clock():
    with _lossy_device(backdate_at=8):
        yield


@contextmanager
def _double_remap():
    from repro.faults import remediation

    original = remediation._remap_sector

    def patched(sim, device, lbn, policy, submit_verify, stats):
        yield from original(sim, device, lbn, policy, submit_verify, stats)
        # A second reallocation of the same (now healthy) sector: burns
        # a spare and double-records the remap.
        faults = device.drive.faults
        if faults is not None:
            faults.reallocate(lbn, sim.now)
            sink = sim.telemetry
            if sink is not None and sink.enabled:
                sink.fault_event(sim.now, "remap", lbn)

    with _patched(remediation, "_remap_sector", patched):
        yield


@contextmanager
def _cursor_drift():
    from repro.workloads import replay

    original = replay._ReplayCursor._convert

    def patched(self, chunk, a, b):
        original(self, chunk, a, b)
        self._dues = [d + 5e-10 for d in self._dues]

    with _patched(replay._ReplayCursor, "_convert", patched):
        yield


def _check_invariants(params: dict) -> None:
    run_scenario(**params, telemetry="invariants")


def _check_feed_axis(params: dict) -> None:
    run_axes(params, axes=("feed",))


class Mutation(NamedTuple):
    """One planted bug: how to plant it, how it should be caught."""

    description: str
    patch: Callable
    scenario: dict
    check: Callable[[dict], None]
    expect: Tuple[type, ...]


MUTATIONS: Dict[str, Mutation] = {
    "skip-last-extent": Mutation(
        "sequential pass drops its final extent",
        _skip_last_extent,
        _SEQ,
        _check_invariants,
        (InvariantViolation,),
    ),
    "skip-last-region": Mutation(
        "staggered pass never visits its last region",
        _skip_last_region,
        _STAG,
        _check_invariants,
        (InvariantViolation,),
    ),
    "drop-completion": Mutation(
        "one request-completed notification is lost",
        _drop_completion,
        _SEQ,
        _check_invariants,
        (InvariantViolation,),
    ),
    "double-remap": Mutation(
        "remediation reallocates the same sector twice",
        _double_remap,
        _FAULTY,
        _check_invariants,
        (InvariantViolation,),
    ),
    "backdate-clock": Mutation(
        "a hook reports a stale timestamp",
        _backdate_clock,
        _SEQ,
        _check_invariants,
        (InvariantViolation,),
    ),
    "cursor-drift": Mutation(
        "batched replay cursor drifts due times by 0.5 ns",
        _cursor_drift,
        # The dense TPC trace: hundreds of replayed arrivals for the
        # drift to land on (the sparse Cello trace has too few).
        {"family": "synthetic", "algorithm": "sequential", "seed": 11},
        _check_feed_axis,
        (DifferentialMismatch,),
    ),
}


class SelfTestResult(NamedTuple):
    """Outcome for one mutation."""

    name: str
    caught: bool
    #: The violation/mismatch report (or why nothing fired).
    detail: str
    #: The clean scenario still passes after the patch reverted.
    clean_after: bool


def run_selftest(names=None) -> List[SelfTestResult]:
    """Plant each mutation; the harness must reject every one.

    Returns one :class:`SelfTestResult` per mutation.  ``caught`` is
    ``True`` only when the expected exception type fired *and* the
    clean scenario passes again afterwards (no patch leakage).
    """
    selected = list(names) if names is not None else list(MUTATIONS)
    results = []
    for name in selected:
        mutation = MUTATIONS[name]
        caught = False
        detail = "no violation raised — the planted bug went undetected"
        with mutation.patch():
            try:
                mutation.check(mutation.scenario)
            except mutation.expect as exc:
                caught = True
                detail = str(exc)
            except Exception as exc:  # wrong failure mode: report, not crash
                detail = f"unexpected {type(exc).__name__}: {exc}"
        clean_after = True
        try:
            mutation.check(mutation.scenario)
        except Exception as exc:
            clean_after = False
            detail += f"\n  clean re-run failed after unpatch: {exc}"
        results.append(
            SelfTestResult(
                name=name, caught=caught, detail=detail, clean_after=clean_after
            )
        )
    return results
