"""Fleet-level invariants: conservation laws for campaigns.

The single-drive invariants (:mod:`repro.verify.invariants`) audit one
simulation's event stream; a fleet campaign adds a layer of accounting
that can silently rot — shards merged twice, a group counted in two
states, checkpoints from a different campaign — so PR 7 adds the
matching conservation laws:

* **drive-state conservation** (:func:`check_shard_result`) — every
  group ends the mission in exactly one of OK / degraded / rebuilding
  / lost; loss modes sum to losses; lost groups equal losses; a group
  cannot rebuild more often than drives failed; observed time is
  bounded by the mission;
* **fleet conservation** (:func:`check_fleet_conservation`) — shard
  ranges are disjoint and inside the fleet, every policy block agrees
  on its shard's group count, and a complete campaign covers exactly
  the fleet;
* **checkpoint-digest consistency** (:func:`check_campaign_journal`) —
  the journal's manifest digest matches the spec, every recorded shard
  key equals the key recomputed from the spec today, and every
  checkpoint still loads (corrupt ones having been evicted, not
  trusted).

All violations raise the same structured
:class:`~repro.verify.invariants.InvariantViolation` the runtime
checker uses, so CI treats fleet rot exactly like an engine bug.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.verify.invariants import InvariantViolation

__all__ = [
    "check_campaign_journal",
    "check_fleet_conservation",
    "check_shard_result",
]

_STATES = ("ok", "degraded", "rebuilding", "lost")
_MODES = ("double", "lse", "unprotected")


def _violation(invariant: str, message: str) -> InvariantViolation:
    return InvariantViolation(invariant, message)


def check_shard_result(spec, result: dict) -> None:
    """Audit one shard result's internal ledger."""
    mission_hours = spec.mission_years * 8760.0
    groups = result.get("group_count")
    start = result.get("group_start")
    if not isinstance(groups, int) or groups <= 0:
        raise _violation(
            "fleet-shard-shape", f"bad group_count {groups!r} in shard"
        )
    if not 0 <= start < spec.fleet.groups:
        raise _violation(
            "fleet-shard-shape",
            f"shard group_start {start} outside fleet [0, {spec.fleet.groups})",
        )
    blocks = result.get("policies", [])
    if len(blocks) != len(spec.policies):
        raise _violation(
            "fleet-shard-shape",
            f"shard has {len(blocks)} policy blocks for "
            f"{len(spec.policies)} policies",
        )
    for block in blocks:
        name = block.get("name", "?")
        states = block.get("states", {})
        total_states = sum(states.get(state, 0) for state in _STATES)
        if set(states) - set(_STATES):
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: unknown drive-group states "
                f"{sorted(set(states) - set(_STATES))}",
            )
        if total_states != block.get("groups") or total_states != groups:
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: states sum to {total_states}, "
                f"expected {groups} groups "
                f"(ok={states.get('ok', 0)}, degraded={states.get('degraded', 0)}, "
                f"rebuilding={states.get('rebuilding', 0)}, lost={states.get('lost', 0)})",
            )
        losses = block.get("losses", 0)
        by_mode = block.get("losses_by_mode", {})
        mode_sum = sum(by_mode.get(mode, 0) for mode in _MODES)
        if set(by_mode) - set(_MODES) or mode_sum != losses:
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: loss modes {by_mode} sum to {mode_sum}, "
                f"expected {losses}",
            )
        if states.get("lost", 0) != losses:
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: {states.get('lost', 0)} lost groups but "
                f"{losses} loss events",
            )
        if block.get("rebuilds_completed", 0) > block.get("drive_failures", 0):
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: more rebuilds "
                f"({block.get('rebuilds_completed')}) than drive failures "
                f"({block.get('drive_failures')})",
            )
        observed = block.get("observed_group_hours", 0.0)
        if not 0.0 <= observed <= groups * mission_hours * (1 + 1e-9):
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: observed {observed:.1f} group-hours "
                f"outside [0, {groups * mission_hours:.1f}]",
            )
        group_hours = block.get("group_hours")
        if group_hours is None or len(group_hours) != groups:
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: {0 if group_hours is None else len(group_hours)} "
                f"per-group hour entries for {groups} groups",
            )
        if math.fsum(group_hours) != observed:
            raise _violation(
                "fleet-state-conservation",
                f"policy {name}: per-group hours sum to "
                f"{math.fsum(group_hours):.6f}, ledger says {observed:.6f}",
            )


def check_fleet_conservation(
    spec, shard_results: Sequence[dict], allow_partial: bool = False
) -> None:
    """Audit a set of shard results as one fleet.

    ``allow_partial`` accepts gaps (a degraded campaign) but still
    rejects overlaps, out-of-range shards, and over-coverage.
    """
    covered = []
    for result in shard_results:
        check_shard_result(spec, result)
        covered.append(
            (result["group_start"], result["group_start"] + result["group_count"])
        )
    covered.sort()
    previous_end = None
    total = 0
    for start, end in covered:
        if end > spec.fleet.groups:
            raise _violation(
                "fleet-conservation",
                f"shard range [{start}, {end}) exceeds fleet of "
                f"{spec.fleet.groups} groups",
            )
        if previous_end is not None and start < previous_end:
            raise _violation(
                "fleet-conservation",
                f"shard ranges overlap at group {start}",
            )
        previous_end = end
        total += end - start
    if total > spec.fleet.groups:
        raise _violation(
            "fleet-conservation",
            f"shards cover {total} groups, fleet has {spec.fleet.groups}",
        )
    if not allow_partial and total != spec.fleet.groups:
        raise _violation(
            "fleet-conservation",
            f"shards cover {total} of {spec.fleet.groups} groups "
            "(campaign incomplete)",
        )


def check_campaign_journal(journal_dir, spec) -> int:
    """Audit a journal directory against its campaign spec.

    Returns the number of verified checkpoints.  Raises
    :class:`InvariantViolation` on digest drift: a manifest belonging
    to a different campaign, a recorded key that no longer matches the
    key recomputed from the spec, an out-of-range shard index, or a
    referenced checkpoint that fails to load (missing or evicted as
    corrupt).
    """
    from repro.fleet.campaign import CampaignRunner
    from repro.fleet.journal import CampaignJournal, JournalError

    try:
        journal = CampaignJournal(journal_dir, spec)
    except JournalError as exc:
        raise _violation("checkpoint-digest", str(exc))
    param_sets = CampaignRunner.shard_param_sets(spec)
    expected = {
        params["shard_index"]: journal.key_for(params) for params in param_sets
    }
    verified = 0
    for shard_index, recorded_key in journal.completed().items():
        if shard_index not in expected:
            raise _violation(
                "checkpoint-digest",
                f"journal records shard {shard_index}, campaign has "
                f"{len(expected)} shards",
            )
        if recorded_key != expected[shard_index]:
            raise _violation(
                "checkpoint-digest",
                f"shard {shard_index} checkpoint key {recorded_key[:12]}... "
                f"does not match the spec-derived key "
                f"{expected[shard_index][:12]}...",
            )
        hit, result = journal.cache.get(recorded_key)
        if not hit:
            raise _violation(
                "checkpoint-digest",
                f"shard {shard_index} checkpoint {recorded_key[:12]}... "
                "is missing or corrupt (evicted)",
            )
        check_shard_result(spec, result)
        verified += 1
    return verified
