"""repro — a reproduction of "Practical Scrubbing: Getting to the bad
sector at the right time" (Amvrosiadis, Oprea, Schroeder; DSN 2012).

The library is organised bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.disk` — mechanical drive model (geometry, seek/rotation,
  cache, SCSI/ATA ``VERIFY`` semantics, paper drive presets);
* :mod:`repro.sched` — block layer: requests, CFQ/NOOP/Deadline
  schedulers, soft barriers, the :class:`~repro.sched.device.BlockDevice`;
* :mod:`repro.workloads` — synthetic foreground workloads and an
  open-loop trace replayer;
* :mod:`repro.traces` — trace container/parsers, synthetic trace
  generators calibrated to the paper's trace statistics, idle-interval
  extraction;
* :mod:`repro.stats` — ANOVA periodicity, autocorrelation/Hurst, AR(p)
  fitting, hazard-rate and tail estimators;
* :mod:`repro.core` — the paper's contribution: scrubbing framework,
  sequential/staggered orders, Waiting/AR/Oracle policies, adaptive
  request sizing, the (size, threshold) optimizer, and an MLET model;
* :mod:`repro.analysis` — the experiment harnesses behind every figure
  and table;
* :mod:`repro.telemetry` — blktrace-style tracing, a metrics registry,
  and Chrome-trace/JSONL exports across the whole stack.

Quickstart::

    from repro import quickstart_scrub_throughput
    print(quickstart_scrub_throughput())  # sequential vs staggered, MB/s
"""

from repro.core import Scrubber, SequentialScrub, StaggeredScrub
from repro.core.optimizer import OptimalParameters, ScrubParameterOptimizer
from repro.core.policies import (
    ARPolicy,
    ARWaitingPolicy,
    LosslessWaitingPolicy,
    OraclePolicy,
    WaitingPolicy,
    WaitingScrubber,
)
from repro.disk import Drive, hitachi_ultrastar_15k450
from repro.faults import (
    BernoulliFaultModel,
    ClusteredBurstFaultModel,
    FaultPlan,
    MediaFaults,
    RemediationPolicy,
)
from repro.sched import BlockDevice, CFQScheduler, NoopScheduler
from repro.sim import Simulation
from repro.telemetry import Recorder, TelemetrySink
from repro.traces import Trace, generate_trace

__version__ = "1.10.0"

__all__ = [
    "ARPolicy",
    "ARWaitingPolicy",
    "BernoulliFaultModel",
    "BlockDevice",
    "CFQScheduler",
    "ClusteredBurstFaultModel",
    "Drive",
    "FaultPlan",
    "LosslessWaitingPolicy",
    "MediaFaults",
    "NoopScheduler",
    "OptimalParameters",
    "OraclePolicy",
    "Recorder",
    "RemediationPolicy",
    "ScrubParameterOptimizer",
    "Scrubber",
    "SequentialScrub",
    "Simulation",
    "StaggeredScrub",
    "TelemetrySink",
    "Trace",
    "WaitingPolicy",
    "WaitingScrubber",
    "generate_trace",
    "hitachi_ultrastar_15k450",
    "quickstart_scrub_throughput",
]


def quickstart_scrub_throughput(horizon: float = 5.0) -> dict:
    """Five-second taste of the library: scrub throughput by algorithm.

    Returns a dict of MB/s for a sequential and a 128-region staggered
    scrubber running alone on the paper's main drive.
    """
    from repro.analysis.throughput import standalone_scrub_throughput

    spec = hitachi_ultrastar_15k450()
    return {
        "sequential": standalone_scrub_throughput(
            spec, SequentialScrub(), horizon=horizon
        ) / 1e6,
        "staggered-128": standalone_scrub_throughput(
            spec, StaggeredScrub(128), horizon=horizon
        ) / 1e6,
    }
