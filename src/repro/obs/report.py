"""Self-contained HTML run reports from campaign observability output.

:func:`build_report` reads the files a :class:`CampaignMonitor` left
behind (``summary.json`` primarily, ``status.json`` and
``events.jsonl`` as fallback / enrichment) and renders one static HTML
page — inline CSS, inline SVG, zero external assets — that answers the
operator's post-run questions:

* how reliable was each policy? (per-policy MTTDL / P(loss) table,
  Monte-Carlo CI next to the closed-form prediction);
* how did the run behave? (shard duration histogram, retry /
  timeout / stall / speculation counters, worker utilization);
* where did the time go? (kernel-phase wall-time table).

Everything is computed from JSON on disk, so reports can be built long
after the campaign, on a different machine, with no simulator import.
"""

from __future__ import annotations

import html
import json
import os
import tempfile
from typing import List, Optional

__all__ = ["build_report", "load_obs_dir", "render_html"]


def load_obs_dir(obs_dir: str) -> dict:
    """Load whatever observability output exists in ``obs_dir``.

    Returns ``{"summary": ..., "status": ..., "events": [...]}`` with
    ``None`` / ``[]`` for missing pieces; raises ``FileNotFoundError``
    only when *nothing* usable is present.
    """
    data = {"summary": None, "status": None, "events": []}
    summary_path = os.path.join(obs_dir, "summary.json")
    status_path = os.path.join(obs_dir, "status.json")
    events_path = os.path.join(obs_dir, "events.jsonl")
    if os.path.exists(summary_path):
        with open(summary_path, encoding="utf-8") as handle:
            data["summary"] = json.load(handle)
    if os.path.exists(status_path):
        with open(status_path, encoding="utf-8") as handle:
            data["status"] = json.load(handle)
    if os.path.exists(events_path):
        with open(events_path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data["events"].append(json.loads(line))
                except ValueError:
                    continue  # torn tail line from a crash: skip
    if data["summary"] is None and data["status"] is None:
        raise FileNotFoundError(
            f"no summary.json or status.json under {obs_dir!r} "
            "(run the campaign with --monitor first)"
        )
    return data


def _svg_histogram(
    values: List[float], width: int = 640, height: int = 180, bins: int = 24
) -> str:
    """A dependency-free SVG bar histogram of shard durations."""
    if not values:
        return "<p class='empty'>no shard durations recorded</p>"
    low = min(values)
    high = max(values)
    span = (high - low) or max(high, 1e-9)
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts)
    bar_w = width / bins
    bars = []
    for index, count in enumerate(counts):
        if not count:
            continue
        bar_h = (count / peak) * (height - 30)
        x = index * bar_w
        y = height - 20 - bar_h
        lo = low + span * index / bins
        hi = low + span * (index + 1) / bins
        bars.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w - 2:.1f}" '
            f'height="{bar_h:.1f}" class="bar">'
            f"<title>{count} shard(s) in [{lo:.3f}s, {hi:.3f}s)</title></rect>"
        )
    labels = (
        f'<text x="2" y="{height - 6}" class="axis">{low:.3f}s</text>'
        f'<text x="{width - 4}" y="{height - 6}" class="axis" '
        f'text-anchor="end">{high:.3f}s</text>'
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(bars)}{labels}</svg>'
    )


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "∞"
    if isinstance(value, float):
        if value != value:  # NaN
            return "—"
        return f"{value:.{digits}g}"
    return html.escape(str(value))


def _policy_table(policies: List[dict]) -> str:
    if not policies:
        return "<p class='empty'>no policy estimates</p>"
    rows = []
    for policy in policies:
        ci = policy.get("mttdl_ci_years") or [None, None]
        p_ci = policy.get("p_loss_ci") or [None, None]
        modes = policy.get("losses_by_mode") or {}
        mode_text = ", ".join(
            f"{mode}={count}" for mode, count in sorted(modes.items()) if count
        ) or "—"
        rows.append(
            "<tr>"
            f"<td>{html.escape(str(policy.get('name', '?')))}</td>"
            f"<td class='num'>{policy.get('groups', 0):,}</td>"
            f"<td class='num'>{_fmt(policy.get('drive_years'), 6)}</td>"
            f"<td class='num'>{policy.get('losses', 0):,}</td>"
            f"<td>{mode_text}</td>"
            f"<td class='num'>{_fmt(policy.get('mttdl_years'))}</td>"
            f"<td class='num'>[{_fmt(ci[0])}, {_fmt(ci[1])}]</td>"
            f"<td class='num'>{_fmt(policy.get('p_loss_mission'))}</td>"
            f"<td class='num'>[{_fmt(p_ci[0])}, {_fmt(p_ci[1])}]</td>"
            f"<td class='num'>{_fmt(policy.get('closed_form_p_loss'))}</td>"
            f"<td class='num'>{_fmt(policy.get('latent_window_hours'))}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        "<th>policy</th><th>groups</th><th>drive-years</th><th>losses</th>"
        "<th>by mode</th><th>MTTDL (y)</th><th>95% CI</th>"
        "<th>P(loss)</th><th>95% CI</th><th>closed-form P</th>"
        "<th>latent window (h)</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


def _phase_table(phases: List[dict]) -> str:
    if not phases:
        return "<p class='empty'>no phase timings recorded</p>"
    rows = [
        "<tr>"
        f"<td>{html.escape(str(phase.get('name', '?')))}</td>"
        f"<td class='num'>{phase.get('count', 0):,}</td>"
        f"<td class='num'>{_fmt(phase.get('total_s'))}</td>"
        f"<td class='num'>{_fmt(phase.get('mean_s'))}</td>"
        f"<td class='num'>{_fmt(phase.get('max_s'))}</td>"
        "</tr>"
        for phase in phases
    ]
    return (
        "<table><thead><tr>"
        "<th>phase</th><th>spans</th><th>total (s)</th>"
        "<th>mean (s)</th><th>max (s)</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )


_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; background: #fff; }
th, td { border: 1px solid #ccc; padding: .3rem .55rem; text-align: left; }
th { background: #eef; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { fill: #4a6fa5; } .bar:hover { fill: #c0504d; }
.axis { font-size: 11px; fill: #555; }
.kpis { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.kpi { background: #fff; border: 1px solid #ccc; border-radius: 6px;
       padding: .5rem .9rem; }
.kpi b { display: block; font-size: 1.25rem; }
.degraded { color: #c0504d; font-weight: 600; }
.empty { color: #777; font-style: italic; }
footer { margin-top: 2rem; color: #777; font-size: .85rem; }
"""


def render_html(data: dict) -> str:
    """Render loaded observability data as one self-contained page."""
    summary = data.get("summary") or {}
    status = data.get("status") or {}
    final = summary.get("final") or status.get("final") or {}
    digest = summary.get("campaign") or status.get("campaign") or "?"
    state = summary.get("state") or status.get("state") or "?"
    elapsed = summary.get("elapsed_s", status.get("elapsed_s", 0.0))
    drive_years = summary.get(
        "drive_years", (status.get("throughput") or {}).get("drive_years", 0.0)
    )
    utilization = summary.get(
        "utilization", (status.get("workers") or {}).get("utilization", 0.0)
    )
    supervision = summary.get("supervision") or status.get("supervision") or {}
    durations = summary.get("shard_durations_s") or []
    policies = final.get("policies") or []
    completeness = final.get("completeness")
    state_class = "degraded" if state == "degraded" else ""
    rate = drive_years / elapsed if elapsed else 0.0

    kpis = [
        ("state", f"<span class='{state_class}'>{html.escape(state)}</span>"),
        ("wall time", f"{elapsed:,.1f}s"),
        ("drive-years", f"{drive_years:,.0f}"),
        ("drive-years/s", f"{rate:,.0f}"),
        ("utilization", f"{utilization * 100:.0f}%"),
        (
            "shards",
            f"{final.get('shards_completed', '?')}"
            f"/{final.get('shards_total', '?')}"
            + (
                f" ({final.get('shards_resumed')} resumed)"
                if final.get("shards_resumed")
                else ""
            ),
        ),
    ]
    if completeness is not None:
        kpis.append(("completeness", f"{completeness * 100:.2f}%"))
    kpi_html = "".join(
        f"<div class='kpi'><b>{value}</b>{html.escape(label)}</div>"
        for label, value in kpis
    )

    sup_items = " · ".join(
        f"{html.escape(key)}: {value:,}"
        for key, value in sorted(supervision.items())
    ) or "none recorded"

    failed = final.get("failed_shards") or [
        row["index"]
        for row in status.get("per_shard") or []
        if row.get("state") == "failed"
    ]
    errors = {
        row["index"]: row["error"]
        for row in status.get("per_shard") or []
        if row.get("state") == "failed" and row.get("error")
    }
    failed_html = (
        "<p class='degraded'>failed shards: "
        + ", ".join(
            f"{index}"
            + (f" ({html.escape(errors[index])})" if index in errors else "")
            for index in failed
        )
        + "</p>"
        if failed
        else ""
    )

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>repro campaign report — {html.escape(digest[:12])}</title>
<style>{_CSS}</style></head><body>
<h1>Fleet campaign report <code>{html.escape(digest[:16])}</code></h1>
<div class="kpis">{kpi_html}</div>
{failed_html}
<h2>Per-policy reliability</h2>
{_policy_table(policies)}
<h2>Shard durations</h2>
{_svg_histogram(durations)}
<h2>Supervision</h2>
<p>{sup_items}</p>
<h2>Kernel phase timings</h2>
{_phase_table(summary.get("phases") or [])}
<footer>generated from {html.escape(str(len(data.get("events", []))))}
logged events · repro.obs report</footer>
</body></html>
"""


def build_report(obs_dir: str, out_path: Optional[str] = None) -> str:
    """Build the HTML report for ``obs_dir``; returns the output path.

    Writes atomically (temp + rename) so a half-generated report never
    replaces a good one.
    """
    data = load_obs_dir(obs_dir)
    target = out_path or os.path.join(obs_dir, "report.html")
    text = render_html(data)
    directory = os.path.dirname(os.path.abspath(target)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".report-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target
