"""Live campaign aggregation: status.json, events, spans, progress.

:class:`CampaignMonitor` is the supervisor-side half of campaign
observability.  The :class:`~repro.fleet.campaign.CampaignRunner`
feeds it lifecycle events — shard attempts starting, heartbeat
progress samples shipped over the supervision pipes, shards landing
or failing — and the monitor folds them into four operator surfaces:

* ``status.json`` — an atomically replaced machine-readable summary
  (the future HTTP endpoint's payload): progress fraction, per-shard
  states, worker utilization, straggler lag, retry counters and
  drive-years/s throughput;
* ``events.jsonl`` — an append-only event log that *persists across
  resume* (the file is opened in append mode), so a campaign killed
  and resumed leaves one continuous, monotone progress record;
* a :class:`~repro.obs.spans.SpanRecorder` — the campaign → shard →
  attempt → kernel-phase flame view, written as ``trace.json`` for
  Perfetto;
* periodic progress lines through an optional callback (the CLI's
  ``--monitor`` stream).

Metric snapshots from landed shards merge incrementally with
:func:`~repro.telemetry.metrics.merge_snapshots`; every merge
operation is order-independent, so the monitor's live view converges
to exactly the campaign's final merged telemetry.

**Passivity is the contract.**  The monitor only *observes*: it never
touches a result dict, and every filesystem write is wrapped so an
unwritable output directory degrades monitoring, never the campaign.
Simulation results are bit-identical with a monitor attached or not.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional

from .spans import SpanRecorder

__all__ = [
    "CampaignMonitor",
    "STATUS_VERSION",
    "follow_events",
    "read_events_chunk",
]

STATUS_VERSION = 1

_HOURS_PER_YEAR = 8760.0  # matches repro.raid.reliability.HOURS_PER_YEAR


class _Shard:
    """What the monitor knows about one shard of the campaign."""

    __slots__ = (
        "index", "state", "attempts", "done", "total", "group_count",
        "started", "last_beat", "duration", "peak_rss_kb", "error",
        "speculated",
    )

    def __init__(self, index: int, group_count: int) -> None:
        self.index = index
        self.state = "pending"  # pending|running|done|failed|resumed
        self.attempts = 0
        self.done = 0
        self.total = 0
        self.group_count = group_count
        self.started: Optional[float] = None
        self.last_beat: Optional[float] = None
        self.duration: Optional[float] = None
        self.peak_rss_kb: Optional[int] = None
        self.error: Optional[str] = None
        self.speculated = 0

    def fraction(self) -> float:
        """How much of this shard's work is done, in [0, 1]."""
        if self.state in ("done", "resumed"):
            return 1.0
        if self.total > 0:
            return min(1.0, self.done / self.total)
        return 0.0


class CampaignMonitor:
    """Merge worker-side samples into live operator surfaces.

    Parameters
    ----------
    out_dir:
        Directory for ``status.json`` / ``events.jsonl`` /
        ``trace.json`` / ``summary.json``; created if missing.
    interval:
        Minimum seconds between status rewrites and progress lines
        (events always log; pass ``0`` to rewrite on every event).
    on_progress:
        Optional ``(line: str) -> None`` callback for rendered
        progress lines.
    clock / wall_clock:
        Injectable monotonic and wall clocks, for tests.
    """

    def __init__(
        self,
        out_dir: str,
        interval: float = 2.0,
        on_progress: Optional[Callable[[str], None]] = None,
        clock=time.monotonic,
        wall_clock=time.time,
    ) -> None:
        self.out_dir = out_dir
        self.interval = float(interval)
        self.on_progress = on_progress
        self._clock = clock
        self._wall = wall_clock
        self._started: Optional[float] = None
        self._last_status = -float("inf")
        self._shards: Dict[int, _Shard] = {}
        self._workers = 1
        self._digest = ""
        self._groups_total = 0
        self._policy_names: List[str] = []
        self._mission_years = 0.0
        self._disks_per_group = 1
        self._merged: Optional[dict] = None
        self._drive_hours = 0.0
        self._busy_seconds = 0.0
        self._durations: List[float] = []
        self._counts: Dict[str, int] = {
            "attempts": 0, "retries": 0, "timeouts": 0,
            "worker_deaths": 0, "stalls": 0, "speculated": 0,
        }
        self._state = "running"
        self._final: Optional[dict] = None
        self.spans = SpanRecorder("campaign", clock=clock)
        self.io_errors = 0
        self._events_handle = None
        os.makedirs(out_dir, exist_ok=True)

    # -- paths ---------------------------------------------------------

    @property
    def status_path(self) -> str:
        return os.path.join(self.out_dir, "status.json")

    @property
    def events_path(self) -> str:
        return os.path.join(self.out_dir, "events.jsonl")

    @property
    def trace_path(self) -> str:
        return os.path.join(self.out_dir, "trace.json")

    @property
    def summary_path(self) -> str:
        return os.path.join(self.out_dir, "summary.json")

    # -- campaign lifecycle (called by CampaignRunner) ----------------

    def campaign_started(
        self,
        digest: str,
        shard_ranges,
        policy_names,
        workers: int,
        mission_years: float,
        disks_per_group: int,
    ) -> None:
        self._started = self._clock()
        self._digest = digest
        self._workers = max(1, int(workers))
        self._policy_names = list(policy_names)
        self._mission_years = float(mission_years)
        self._disks_per_group = int(disks_per_group)
        self._shards = {
            index: _Shard(index, count)
            for index, (start, count) in enumerate(shard_ranges)
        }
        self._groups_total = sum(s.group_count for s in self._shards.values())
        self.spans = SpanRecorder(digest, clock=self._clock)
        self.spans.name_thread(0, "campaign")
        for index in self._shards:
            self.spans.name_thread(index + 1, f"shard {index}")
        self.spans.begin(
            f"campaign {digest[:12]}", "campaign",
            category="campaign", tid=0,
            args={"shards": len(self._shards), "groups": self._groups_total},
        )
        self._event("campaign_started", shards=len(self._shards),
                    groups=self._groups_total, workers=self._workers)
        self._write_status(force=True)

    def shard_resumed(self, shard_index: int, result: dict) -> None:
        shard = self._shard(shard_index)
        shard.state = "resumed"
        shard.duration = 0.0
        self._land_result(result)
        self._event("shard_resumed", shard=shard_index)
        self._maybe_status()

    def shard_started(
        self, shard_index: int, attempt: int, speculative: bool = False
    ) -> None:
        shard = self._shard(shard_index)
        shard.state = "running"
        shard.attempts = max(shard.attempts, attempt)
        if speculative:
            shard.speculated += 1
            self._counts["speculated"] += 1
        now = self._clock()
        if shard.started is None or not speculative:
            shard.started = now
        shard.last_beat = now
        self._counts["attempts"] += 1
        if attempt > 1 and not speculative:
            self._counts["retries"] += 1
        self.spans.begin(
            f"shard {shard_index} attempt {attempt}"
            + (" (speculative)" if speculative else ""),
            "shard", shard_index, "attempt", attempt,
            *(("spec",) if speculative else ()),
            category="attempt", tid=shard_index + 1,
            args={"attempt": attempt, "speculative": speculative},
        )
        self._event("attempt_started", shard=shard_index, attempt=attempt,
                    speculative=speculative)
        self._maybe_status()

    def shard_heartbeat(
        self, shard_index: int, attempt: int, payload: Optional[dict]
    ) -> None:
        shard = self._shard(shard_index)
        shard.last_beat = self._clock()
        if not payload:
            return
        done = int(payload.get("done") or 0)
        total = int(payload.get("total") or 0)
        if total:
            shard.total = total
        shard.done = max(shard.done, done)
        rss = payload.get("rss_kb")
        if rss is not None:
            shard.peak_rss_kb = max(shard.peak_rss_kb or 0, int(rss))
        self._event(
            "heartbeat", shard=shard_index, attempt=attempt,
            done=done, total=total, rss_kb=rss,
            progress=round(self.progress(), 6),
            live=round(self.live_progress(), 6),
        )
        self._maybe_status()

    def shard_attempt_failed(
        self,
        shard_index: int,
        attempt: int,
        kind: str,
        error: str,
        duration: float,
    ) -> None:
        shard = self._shard(shard_index)
        shard.error = error
        if kind in ("timeout", "stall", "death"):
            key = {
                "timeout": "timeouts",
                "stall": "stalls",
                "death": "worker_deaths",
            }[kind]
            self._counts[key] += 1
        self._busy_seconds += max(0.0, duration)
        self.spans.end(
            "shard", shard_index, "attempt", attempt,
            args={"outcome": kind, "error": error},
        )
        self.spans.instant(
            f"shard {shard_index} {kind}",
            category="failure", tid=shard_index + 1,
            args={"attempt": attempt, "error": error},
        )
        self._event("attempt_failed", shard=shard_index, attempt=attempt,
                    kind=kind, error=error, duration_s=round(duration, 6))
        self._maybe_status()

    def shard_completed(
        self,
        shard_index: int,
        result: dict,
        attempt: int = 1,
        duration: Optional[float] = None,
    ) -> None:
        shard = self._shard(shard_index)
        now = self._clock()
        if duration is None:
            duration = (now - shard.started) if shard.started is not None else 0.0
        shard.state = "done"
        shard.duration = duration
        shard.done = shard.total or shard.done
        shard.error = None
        self._durations.append(duration)
        self._busy_seconds += max(0.0, duration)
        self._land_result(result)
        self.spans.end(
            "shard", shard_index, "attempt", attempt,
            args={"outcome": "ok", "groups": result.get("group_count")},
        )
        self._phase_spans(shard_index, attempt, result, now)
        self._event(
            "shard_completed", shard=shard_index, attempt=attempt,
            duration_s=round(duration, 6),
            groups=result.get("group_count"),
            progress=round(self.progress(), 6),
        )
        self._maybe_status()

    def shard_failed(self, shard_index: int, error: str) -> None:
        shard = self._shard(shard_index)
        shard.state = "failed"
        shard.error = error
        self._event("shard_failed", shard=shard_index, error=error)
        self._maybe_status()

    def campaign_finished(self, result) -> None:
        """Final fold: close the campaign span, write every surface.

        ``result`` is a :class:`~repro.fleet.campaign.CampaignResult`
        (duck-typed — the monitor reads plain attributes only).
        """
        self._state = "degraded" if result.shards_failed else "done"
        supervision = dict(result.supervision or {})
        for key, value in supervision.items():
            if key in self._counts:
                self._counts[key] = max(self._counts[key], int(value))
        self._final = {
            "completeness": result.completeness,
            "shards_total": result.shards_total,
            "shards_completed": result.shards_completed,
            "shards_resumed": result.shards_resumed,
            "shards_failed": result.shards_failed,
            "failed_shards": list(result.failed_shards),
            "supervision": supervision,
            "policies": [
                {
                    "name": p.name,
                    "groups": p.groups,
                    "losses": p.losses,
                    "losses_by_mode": dict(p.losses_by_mode),
                    "drive_years": p.drive_years,
                    "mttdl_years": _json_num(p.mttdl_years),
                    "mttdl_ci_years": [
                        _json_num(p.mttdl_ci_hours[0] / _HOURS_PER_YEAR),
                        _json_num(p.mttdl_ci_hours[1] / _HOURS_PER_YEAR),
                    ],
                    "p_loss_mission": p.p_loss_mission,
                    "p_loss_ci": list(p.p_loss_ci),
                    "closed_form_p_loss": p.closed_form_p_loss,
                    "latent_window_hours": p.latent_window_hours,
                }
                for p in result.policies
            ],
        }
        self._merged = result.telemetry
        self.spans.end("campaign", args={"state": self._state})
        self._event("campaign_finished", state=self._state,
                    progress=round(self.progress(), 6))
        self._write_status(force=True)
        self._write_summary()
        self.write_trace()
        if self._events_handle is not None:
            try:
                self._events_handle.close()
            except OSError:
                pass
            self._events_handle = None

    # -- derived views -------------------------------------------------

    def progress(self) -> float:
        """Durable progress: fraction of groups landed (in [0, 1]).

        Counts only shards that are checkpoint-durable (``done`` or
        ``resumed``), which makes this number **monotone across kill +
        resume**: in-flight partial work is excluded precisely because
        a SIGKILL loses it.  The smoke test asserts this monotonicity;
        use :meth:`live_progress` for the streaming estimate.
        """
        if not self._groups_total:
            return 0.0
        done = sum(
            shard.group_count
            for shard in self._shards.values()
            if shard.state in ("done", "resumed")
        )
        return min(1.0, done / self._groups_total)

    def live_progress(self) -> float:
        """Progress including in-flight shards' heartbeat fractions."""
        if not self._groups_total:
            return 0.0
        done = sum(
            shard.group_count * shard.fraction()
            for shard in self._shards.values()
        )
        return min(1.0, done / self._groups_total)

    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        return self._clock() - self._started

    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        elapsed = self.elapsed()
        if elapsed <= 0:
            return 0.0
        busy = self._busy_seconds
        now = self._clock()
        for shard in self._shards.values():
            if shard.state == "running" and shard.started is not None:
                busy += now - shard.started
        return min(1.0, busy / (elapsed * self._workers))

    def stragglers(self) -> List[dict]:
        """Running shards whose age exceeds the median done duration."""
        if not self._durations:
            return []
        median = sorted(self._durations)[len(self._durations) // 2]
        now = self._clock()
        lagging = []
        for shard in self._shards.values():
            if shard.state != "running" or shard.started is None:
                continue
            age = now - shard.started
            if age > median:
                lagging.append(
                    {
                        "shard": shard.index,
                        "age_s": round(age, 3),
                        "lag_s": round(age - median, 3),
                        "progress": round(shard.fraction(), 4),
                    }
                )
        lagging.sort(key=lambda entry: -entry["lag_s"])
        return lagging

    def status(self) -> dict:
        """The full machine-readable status payload."""
        elapsed = self.elapsed()
        drive_years = self._drive_hours / _HOURS_PER_YEAR
        states = {"pending": 0, "running": 0, "done": 0, "failed": 0,
                  "resumed": 0}
        for shard in self._shards.values():
            states[shard.state] += 1
        counters = {}
        if self._merged is not None:
            counters = dict(self._merged.get("counters", {}))
        now = self._clock()
        per_shard = []
        for index in sorted(self._shards):
            shard = self._shards[index]
            per_shard.append(
                {
                    "index": index,
                    "state": shard.state,
                    "attempts": shard.attempts,
                    "progress": round(shard.fraction(), 6),
                    "duration_s": (
                        round(shard.duration, 6)
                        if shard.duration is not None else None
                    ),
                    "last_beat_age_s": (
                        round(now - shard.last_beat, 3)
                        if shard.last_beat is not None
                        and shard.state == "running"
                        else None
                    ),
                    "peak_rss_kb": shard.peak_rss_kb,
                    "error": shard.error,
                }
            )
        groups_done = sum(
            shard.group_count
            for shard in self._shards.values()
            if shard.state in ("done", "resumed")
        )
        payload = {
            "version": STATUS_VERSION,
            "campaign": self._digest,
            "state": self._state,
            "updated_unix": self._wall(),
            "elapsed_s": round(elapsed, 3),
            "progress": round(self.progress(), 6),
            "progress_live": round(self.live_progress(), 6),
            "shards": {
                "total": len(self._shards),
                "done": states["done"] + states["resumed"],
                "failed": states["failed"],
                "resumed": states["resumed"],
                "running": states["running"],
            },
            "groups": {"total": self._groups_total, "done": groups_done},
            "throughput": {
                "drive_years": round(drive_years, 3),
                "drive_years_per_s": (
                    round(drive_years / elapsed, 3) if elapsed > 0 else 0.0
                ),
            },
            "workers": {
                "configured": self._workers,
                "busy": states["running"],
                "utilization": round(self.utilization(), 4),
            },
            "supervision": dict(self._counts),
            "counters": counters,
            "stragglers": self.stragglers(),
            "per_shard": per_shard,
        }
        if self._final is not None:
            payload["final"] = self._final
        return payload

    def merged_snapshot(self) -> dict:
        """The live merged telemetry snapshot (landed shards so far)."""
        return self._merged if self._merged is not None else {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def progress_line(self) -> str:
        """One human progress line for streaming output."""
        status = self.status()
        shards = status["shards"]
        parts = [
            f"[{status['elapsed_s']:8.1f}s]",
            f"{status['progress_live'] * 100:5.1f}%",
            f"shards {shards['done']}/{shards['total']}",
            f"({shards['running']} running)",
            f"util {status['workers']['utilization'] * 100:.0f}%",
        ]
        rate = status["throughput"]["drive_years_per_s"]
        if rate:
            parts.append(f"{rate:,.0f} dy/s")
        retries = status["supervision"]["retries"]
        if retries:
            parts.append(f"{retries} retries")
        if status["stragglers"]:
            parts.append(f"{len(status['stragglers'])} straggling")
        if shards["failed"]:
            parts.append(f"{shards['failed']} FAILED")
        return "  ".join(parts)

    # -- output plumbing ----------------------------------------------

    def write_trace(self, path: Optional[str] = None) -> Optional[str]:
        """Write the span flame view as a Perfetto-loadable trace."""
        from ..telemetry.trace import write_chrome_trace

        target = path or self.trace_path
        try:
            write_chrome_trace(target, self.spans.chrome_events())
        except OSError:
            self.io_errors += 1
            return None
        return target

    def _shard(self, index: int) -> _Shard:
        shard = self._shards.get(index)
        if shard is None:
            shard = self._shards[index] = _Shard(index, 0)
        return shard

    def _land_result(self, result: dict) -> None:
        from ..telemetry.metrics import merge_snapshots

        snapshot = (result.get("telemetry") or {}).get("metrics")
        if snapshot:
            self._merged = merge_snapshots(
                [self._merged, snapshot] if self._merged else [snapshot]
            )
        for block in result.get("policies", []):
            self._drive_hours += block.get("drive_hours", 0.0)

    def _phase_spans(
        self, shard_index: int, attempt: int, result: dict, end: float
    ) -> None:
        """Nest worker-reported kernel phases under the attempt span."""
        phases = result.get("phases") or []
        total = sum(p.get("wall_s", 0.0) for p in phases)
        start = end - total
        for phase in phases:
            wall = phase.get("wall_s", 0.0)
            name = phase.get("policy") or phase.get("name") or "phase"
            self.spans.add_timed(
                f"policy {name}", start, wall,
                "shard", shard_index, "attempt", attempt, "phase", name,
                category="phase", tid=shard_index + 1,
                args={"wall_s": wall},
            )
            start += wall

    def _event(self, event: str, **fields) -> None:
        record = {"t": round(self._wall(), 6), "event": event}
        record.update(fields)
        # The append handle stays open across events (open/close per
        # line dominates monitoring cost otherwise) but every line is
        # flushed, so the on-disk log is complete up to the last event
        # even through a SIGKILL.
        try:
            if self._events_handle is None:
                self._events_handle = open(
                    self.events_path, "a", encoding="utf-8"
                )
            self._events_handle.write(json.dumps(record) + "\n")
            self._events_handle.flush()
        except (OSError, ValueError):
            self.io_errors += 1
            self._events_handle = None

    def _maybe_status(self) -> None:
        now = self._clock()
        if now - self._last_status < self.interval:
            return
        self._write_status(force=True)

    def _write_status(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_status < self.interval:
            return
        self._last_status = now
        payload = self.status()
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.out_dir, prefix=".status-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
                os.replace(tmp, self.status_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.io_errors += 1
        if self.on_progress is not None:
            try:
                self.on_progress(self.progress_line())
            except Exception:
                pass

    def _write_summary(self) -> None:
        payload = {
            "version": STATUS_VERSION,
            "campaign": self._digest,
            "state": self._state,
            "generated_unix": self._wall(),
            "elapsed_s": round(self.elapsed(), 3),
            "mission_years": self._mission_years,
            "workers": self._workers,
            "utilization": round(self.utilization(), 4),
            "supervision": dict(self._counts),
            "shard_durations_s": [round(d, 6) for d in self._durations],
            "drive_years": round(self._drive_hours / _HOURS_PER_YEAR, 3),
            "final": self._final,
            "telemetry": self.merged_snapshot(),
            "phases": self._phase_summary(),
        }
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.out_dir, prefix=".summary-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
                os.replace(tmp, self.summary_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.io_errors += 1

    def _phase_summary(self) -> List[dict]:
        """Aggregate kernel-phase wall time across shards, by phase."""
        totals: Dict[str, List[float]] = {}
        for span in self.spans.spans():
            if span.category != "phase":
                continue
            name = span.name
            totals.setdefault(name, []).append(span.duration)
        return [
            {
                "name": name,
                "count": len(walls),
                "total_s": round(sum(walls), 6),
                "mean_s": round(sum(walls) / len(walls), 6),
                "max_s": round(max(walls), 6),
            }
            for name, walls in sorted(totals.items())
        ]


def read_events_chunk(path: str, offset: int = 0) -> "tuple[bytes, int]":
    """Read new raw bytes of an ``events.jsonl`` from ``offset``.

    Returns ``(chunk, new_offset)``; a missing file (the monitor has
    not written its first event yet) is simply an empty chunk.  The
    bytes are returned verbatim — the orchestration service's
    ``GET /campaigns/{id}/events`` endpoint relays them unmodified,
    which is what makes the streamed NDJSON *byte-identical* to the
    on-disk log and lets a disconnected client resume from the offset
    it already has.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return b"", offset
    return chunk, offset + len(chunk)


def follow_events(
    path: str,
    offset: int = 0,
    poll: float = 0.1,
    should_stop=None,
):
    """Yield event-log byte chunks as the file grows (a ``tail -f``).

    Polls every ``poll`` seconds; the generator finishes when
    ``should_stop()`` returns true *and* the log is drained, so a
    consumer that stops the campaign still receives every event written
    before the stop.  With no ``should_stop`` it follows forever —
    callers stream it until they close the generator.
    """
    while True:
        chunk, offset = read_events_chunk(path, offset)
        if chunk:
            yield chunk
            continue
        if should_stop is not None and should_stop():
            chunk, offset = read_events_chunk(path, offset)
            if chunk:
                yield chunk
            return
        time.sleep(poll)


def _json_num(value: float):
    """JSON-safe number: infinities become None (null)."""
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value
