"""Deterministic hierarchical span tracing for fleet campaigns.

A campaign is a tree of timed work:

.. code-block:: text

    campaign <digest>
    └── shard 3
        └── attempt 1            (a SupervisedRunner launch)
            ├── policy weekly    (kernel phase inside the worker)
            └── policy staggered

Span *identity* must survive resume and re-runs: the same campaign
spec always yields the same span IDs, so traces from a fresh run and
a post-SIGKILL resume can be diffed or overlaid.  :func:`span_id`
therefore derives a 64-bit ID from the campaign digest plus the path
of coordinates down the tree — no global counters, no randomness.

Span *timing* is wall clock, which is inherently non-deterministic;
that is fine because spans are an operator surface, never an input to
simulation results.  :class:`SpanRecorder` collects closed spans and
exports them as Chrome trace-event dicts compatible with
:func:`repro.telemetry.trace.write_chrome_trace`, so a whole fleet
campaign loads in Perfetto as one flame view: one process row, the
campaign on thread 0, each shard (with its attempts and kernel
phases nested) on its own thread.

Timestamps in the export are seconds since the first span opened, so
the viewer's time axis starts at zero regardless of when the campaign
ran.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["Span", "SpanRecorder", "span_id"]

_US = 1e6  # seconds -> trace microseconds


def span_id(root: str, *path: Union[str, int]) -> int:
    """Deterministic 63-bit span ID for a node of the campaign tree.

    ``root`` is typically the campaign digest; ``path`` alternates
    level names and coordinates, e.g. ``("shard", 3, "attempt", 1,
    "phase", "weekly")``.  Same inputs, same ID — across processes,
    resumes, and Python versions.
    """
    text = root + "".join(f"/{part}" for part in path)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class Span:
    """One open interval of campaign work."""

    __slots__ = ("sid", "name", "category", "tid", "start", "end", "args")

    def __init__(
        self,
        sid: int,
        name: str,
        category: str,
        tid: int,
        start: float,
        args: Optional[dict] = None,
    ) -> None:
        self.sid = sid
        self.name = name
        self.category = category
        self.tid = tid
        self.start = start
        self.end: Optional[float] = None
        self.args = dict(args or {})

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


class SpanRecorder:
    """Collects campaign/shard/attempt/phase spans for Perfetto export.

    The recorder is clock-injectable (pass ``clock`` for tests) and
    tolerant of out-of-order lifecycles: finishing an unknown span is
    a no-op, re-opening a live span ID replaces it.  Thread layout in
    the export is deterministic: tid 0 carries the campaign span, tid
    ``shard_index + 1`` carries everything belonging to that shard.
    """

    def __init__(self, root: str, clock=time.monotonic) -> None:
        self.root = root
        self._clock = clock
        self._epoch: Optional[float] = None
        self._open: Dict[int, Span] = {}
        self._closed: List[Span] = []
        self._thread_names: Dict[int, str] = {}

    # -- lifecycle ----------------------------------------------------

    def _now(self) -> float:
        now = self._clock()
        if self._epoch is None:
            self._epoch = now
        return now - self._epoch

    def begin(
        self,
        name: str,
        *path: Union[str, int],
        category: str = "campaign",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> int:
        """Open a span; returns its deterministic ID."""
        sid = span_id(self.root, *path) if path else span_id(self.root, name)
        self._open[sid] = Span(sid, name, category, tid, self._now(), args)
        return sid

    def end(self, *path: Union[str, int], args: Optional[dict] = None) -> None:
        """Close the span at ``path``; unknown paths are ignored."""
        sid = span_id(self.root, *path)
        span = self._open.pop(sid, None)
        if span is None:
            return
        span.end = self._now()
        if args:
            span.args.update(args)
        self._closed.append(span)

    def instant(
        self,
        name: str,
        *,
        category: str = "campaign",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """Record a zero-duration marker (retry, eviction, SIGKILL...)."""
        span = Span(0, name, category, tid, self._now(), args)
        span.end = span.start
        self._closed.append(span)

    def add_timed(
        self,
        name: str,
        start: float,
        duration: float,
        *path: Union[str, int],
        category: str = "phase",
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> None:
        """Insert an already-measured span (e.g. a worker-reported phase).

        ``start`` is seconds on this recorder's relative axis —
        callers re-home worker-local timings onto the recorder's epoch
        before inserting.
        """
        sid = span_id(self.root, *path) if path else 0
        span = Span(sid, name, category, tid, start, args)
        span.end = start + max(0.0, duration)
        self._closed.append(span)

    def name_thread(self, tid: int, name: str) -> None:
        self._thread_names[tid] = name

    def elapsed(self) -> float:
        """Seconds since the first span opened (0.0 before any did)."""
        if self._epoch is None:
            return 0.0
        return self._clock() - self._epoch

    # -- export -------------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        """All closed spans, in completion order."""
        return tuple(self._closed)

    def chrome_events(self, pid: int = 0, process_name: str = "campaign") -> List[dict]:
        """Flatten to Chrome trace-event dicts (feed ``write_chrome_trace``).

        Any still-open spans are exported as if they ended now, so a
        trace written mid-campaign (or after a crash) is still valid.
        """
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for tid, name in sorted(self._thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        now = self._now() if self._epoch is not None else 0.0
        live = [
            Span(s.sid, s.name, s.category, s.tid, s.start, s.args)
            for s in self._open.values()
        ]
        for span in live:
            span.end = now
        for span in list(self._closed) + live:
            if span.end == span.start and span.sid == 0:
                events.append(
                    {
                        "name": span.name,
                        "cat": span.category,
                        "ph": "i",
                        "s": "t",
                        "ts": span.start * _US,
                        "pid": pid,
                        "tid": span.tid,
                        "args": span.args,
                    }
                )
                continue
            args = dict(span.args)
            args["span_id"] = f"{span.sid:016x}"
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": span.start * _US,
                    "dur": (span.end - span.start) * _US,
                    "pid": pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
        return events
