"""Campaign-scale observability: spans, live aggregation, reports.

``repro.obs`` is the layer above :mod:`repro.telemetry`: where a
Recorder watches one simulation from the inside, this package watches
a whole fleet campaign from the outside — per-worker progress probes
(:mod:`~repro.obs.worker`), deterministic hierarchical span tracing
(:mod:`~repro.obs.spans`), the live cross-process aggregator writing
``status.json`` / ``events.jsonl`` (:mod:`~repro.obs.monitor`), a
Prometheus textfile exporter (:mod:`~repro.obs.prometheus`) and a
self-contained HTML run report (:mod:`~repro.obs.report`).

Everything here is *passive*: campaign results are bit-identical with
observability on or off.
"""

from repro.obs.monitor import (
    STATUS_VERSION,
    CampaignMonitor,
    follow_events,
    read_events_chunk,
)
from repro.obs.prometheus import prometheus_lines, write_textfile
from repro.obs.report import build_report, load_obs_dir, render_html
from repro.obs.spans import Span, SpanRecorder, span_id
from repro.obs.worker import PROBE, WorkerProbe, peak_rss_kb

__all__ = [
    "CampaignMonitor",
    "PROBE",
    "STATUS_VERSION",
    "Span",
    "SpanRecorder",
    "WorkerProbe",
    "build_report",
    "follow_events",
    "load_obs_dir",
    "read_events_chunk",
    "peak_rss_kb",
    "prometheus_lines",
    "render_html",
    "span_id",
    "write_textfile",
]
