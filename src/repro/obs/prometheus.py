"""Prometheus textfile exporter for metrics snapshots.

Serialises any :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
(or :func:`~repro.telemetry.metrics.merge_snapshots` result) into the
Prometheus text exposition format, suitable for the node_exporter
textfile collector: counters become ``TYPE counter``, gauges become
``TYPE gauge``, and the fixed log-bucket histograms become native
Prometheus histograms with cumulative ``_bucket{le=...}`` series plus
``_count`` and ``_sum``.

Metric names are sanitised (``sim.requests.completed`` →
``repro_sim_requests_completed``); values render with :func:`repr` so
the round trip through text is lossless for floats.  Writing goes
through a temp file + :func:`os.replace` because node_exporter may
scrape the directory at any moment.
"""

from __future__ import annotations

import math
import os
import re
import tempfile
from typing import List

from ..telemetry.metrics import Histogram

__all__ = ["prometheus_lines", "write_textfile"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(prefix: str, name: str) -> str:
    cleaned = _NAME_RE.sub("_", name)
    full = f"{prefix}_{cleaned}" if prefix else cleaned
    if not re.match(r"[a-zA-Z_]", full):
        full = "_" + full
    return full


def _fmt(value: float) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(value)


def prometheus_lines(snapshot: dict, prefix: str = "repro") -> List[str]:
    """Render a metrics snapshot as Prometheus exposition-format lines."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for index, bucket in enumerate(hist["counts"]):
            cumulative += bucket
            bound = Histogram.bucket_bound(index)
            lines.append(
                f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        lines.append(f"{metric}_count {hist['count']}")
        lines.append(f"{metric}_sum {_fmt(hist['sum'])}")
    return lines


def write_textfile(path: str, snapshot: dict, prefix: str = "repro") -> int:
    """Atomically write ``snapshot`` in exposition format; returns lines.

    Safe against concurrent scrapes: the file at ``path`` is always
    either the previous complete export or the new one, never partial.
    """
    lines = prometheus_lines(snapshot, prefix=prefix)
    text = "\n".join(lines) + "\n"
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".prom-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(lines)
