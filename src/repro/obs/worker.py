"""In-worker progress probe: what a shard task tells its supervisor.

A :class:`~repro.parallel.supervise.SupervisedRunner` worker already
owns a pipe to its supervisor and a heartbeat thread beating on it.
This module is the *payload* side of those beats: a process-global
:data:`PROBE` that the task function advances as it works (one
``advance()`` per unit of work) and that the heartbeat thread samples
— so a supervisor learns not just "the worker is alive" but "the
worker is 1,180/2,000 groups in, using 41 MB".

Design constraints, in order:

* **Passive.**  Advancing the probe touches two integers; it never
  blocks, allocates, raises, or reads a clock.  A task's results are
  bit-identical whether anything ever samples the probe or not.
* **Lock-free.**  The heartbeat thread reads while the task thread
  writes.  Both sides tolerate torn reads (the CPython GIL makes the
  individual int stores atomic); a sample that is one unit stale is
  perfectly good telemetry.
* **Dependency-free.**  Importable from worker processes before the
  simulator is; imports nothing from :mod:`repro`.

Peak RSS comes from ``resource.getrusage`` when the platform provides
it (Linux reports kilobytes) and is ``None`` elsewhere — consumers
must treat it as best-effort.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["PROBE", "WorkerProbe", "peak_rss_kb"]


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB, if knowable."""
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # pragma: no cover - non-POSIX platforms
        return None
    # Linux reports KiB; macOS reports bytes.  Normalise to KiB.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux container
        rss //= 1024
    return int(rss)


class WorkerProbe:
    """Work-done counter a task publishes and a heartbeat samples."""

    __slots__ = ("done", "total")

    def __init__(self) -> None:
        self.done = 0
        self.total = 0

    def reset(self, total: int = 0) -> None:
        """Start a new unit of supervised work with ``total`` steps."""
        self.done = 0
        self.total = int(total)

    def advance(self, amount: int = 1) -> None:
        """One (or ``amount``) steps of work finished."""
        self.done += amount

    def payload(self) -> dict:
        """Sample for a heartbeat: progress plus best-effort peak RSS.

        Always safe to call from another thread; the ``done``/``total``
        pair may be one step stale, never torn mid-int.
        """
        return {
            "done": self.done,
            "total": self.total,
            "rss_kb": peak_rss_kb(),
        }


#: The process-global probe.  ``fleet_shard_task`` (and any future
#: supervised task) advances it; the supervised-worker heartbeat
#: thread ships :meth:`WorkerProbe.payload` with every beat.
PROBE = WorkerProbe()
