"""Campaign orchestration service (PR 10).

``repro fleet`` runs one campaign in one process; operators queue
*many* campaigns from many clients and want them deduplicated,
fairly scheduled, observable while running and durable across service
crashes.  This package is that layer, stdlib-only:

* :mod:`repro.service.queue` — persistent content-addressed job queue
  (job id = campaign digest; atomic per-job records; crash recovery
  never leaves a ``running`` orphan);
* :mod:`repro.service.scheduler` — fair-share dispatcher feeding
  :class:`~repro.fleet.campaign.CampaignRunner` slots, with the queue's
  cancel flag wired into cooperative cancellation;
* :mod:`repro.service.api` — minimal asyncio HTTP API (submit, status,
  NDJSON event streaming, HTML reports, cancel);
* :mod:`repro.service.client` — stdlib client used by ``repro submit``
  and the contract tests.

Durability composes instead of duplicating: the queue journal decides
*which* campaign runs, the PR 7 campaign journal makes *resuming* it
bit-identical, and the PR 8 monitor's ``events.jsonl`` is what the API
streams — byte for byte.

CLI entry points: ``repro serve`` and ``repro submit``.
"""

from repro.service.api import CampaignService
from repro.service.client import ServiceClient, ServiceTimeout
from repro.service.queue import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    Job,
    JobQueue,
    QueueError,
)
from repro.service.scheduler import CampaignScheduler

__all__ = [
    "ACTIVE_STATES",
    "CampaignScheduler",
    "CampaignService",
    "Job",
    "JobQueue",
    "QueueError",
    "ServiceClient",
    "ServiceTimeout",
    "TERMINAL_STATES",
]
