"""Thin stdlib HTTP client for the campaign service.

``http.client`` only — the same zero-dependency rule as the server.
Every JSON method returns ``(status, payload)`` and never raises on
HTTP error codes, so contract tests can assert on 400/404/405 bodies
directly.  :meth:`ServiceClient.stream_events` hands back the raw
response object instead, letting tests read partial NDJSON, kill the
connection mid-stream and reconnect from a byte offset.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional, Tuple
from urllib.parse import urlencode, urlsplit

from repro.service.queue import TERMINAL_STATES

__all__ = ["ServiceClient", "ServiceTimeout"]


class ServiceTimeout(TimeoutError):
    """``wait`` ran out of time before the job reached a terminal state."""


class ServiceClient:
    """Client for one service base URL (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 30.0, client: str = "") -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"base_url must be http://host:port, got {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        #: Sent as ``X-Client`` on submissions; server quota key.
        self.client = client

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
    ) -> Tuple[int, dict]:
        status, raw, ctype = self._request_raw(method, path, body, query)
        if "json" not in ctype:
            return status, {"raw": raw.decode("utf-8", "replace")}
        try:
            return status, json.loads(raw.decode("utf-8"))
        except ValueError:
            return status, {"raw": raw.decode("utf-8", "replace")}

    def _request_raw(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
    ) -> Tuple[int, bytes, str]:
        conn = self._connect(method, path, body, query)
        try:
            response = conn.getresponse()
            data = response.read()
            return response.status, data, response.headers.get("Content-Type", "")
        finally:
            conn.close()

    def _connect(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        query: Optional[dict] = None,
    ) -> http.client.HTTPConnection:
        if query:
            path = f"{path}?{urlencode(query)}"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        headers = {}
        if self.client:
            headers["X-Client"] = self.client
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        return conn

    # -- API -----------------------------------------------------------------

    def health(self) -> Tuple[int, dict]:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict, client: Optional[str] = None) -> Tuple[int, dict]:
        body = {"spec": spec}
        if client or self.client:
            body["client"] = client or self.client
        return self._request("POST", "/campaigns", body=body)

    def jobs(self) -> Tuple[int, dict]:
        return self._request("GET", "/campaigns")

    def job(self, job_id: str) -> Tuple[int, dict]:
        return self._request("GET", f"/campaigns/{job_id}")

    def cancel(self, job_id: str) -> Tuple[int, dict]:
        return self._request("DELETE", f"/campaigns/{job_id}")

    def report(self, job_id: str) -> Tuple[int, bytes]:
        status, raw, _ctype = self._request_raw("GET", f"/campaigns/{job_id}/report")
        return status, raw

    def events(
        self, job_id: str, offset: int = 0, follow: bool = False
    ) -> Tuple[int, bytes]:
        """Fetch the event stream fully (blocks until it closes)."""
        status, raw, _ctype = self._request_raw(
            "GET",
            f"/campaigns/{job_id}/events",
            query={"offset": offset, "follow": int(follow)},
        )
        return status, raw

    def stream_events(
        self, job_id: str, offset: int = 0, follow: bool = True
    ) -> Tuple[int, http.client.HTTPResponse, http.client.HTTPConnection]:
        """Open the event stream and return it unread.

        Returns ``(status, response, connection)``; the caller reads
        (and may abandon) the response, then closes the connection.
        """
        conn = self._connect(
            "GET",
            f"/campaigns/{job_id}/events",
            query={"offset": offset, "follow": int(follow)},
        )
        response = conn.getresponse()
        return response.status, response, conn

    # -- conveniences --------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> dict:
        """Block until the job is terminal; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self.job(job_id)
            if status != 200:
                raise RuntimeError(f"GET /campaigns/{job_id} -> {status}: {payload}")
            job = payload["job"]
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceTimeout(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)

    def iter_events(self, job_id: str, follow: bool = True) -> Iterator[dict]:
        """Yield parsed events; reconnects are the caller's concern."""
        status, response, conn = self.stream_events(job_id, follow=follow)
        try:
            if status != 200:
                raise RuntimeError(f"event stream -> {status}")
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()
