"""Async HTTP API over the job queue and scheduler.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no new dependencies, every response ``Connection: close``.
The event loop runs in its own daemon thread so the service embeds in
tests and the CLI alike; campaign execution never touches the loop
(the scheduler owns its thread pool), and the one blocking endpoint
(report generation) is pushed to an executor.

Routes::

    GET    /healthz                  liveness + queue state counts
    POST   /campaigns                submit (201 created / 200 duplicate)
    GET    /campaigns                list jobs
    GET    /campaigns/{id}           job record + live progress
    GET    /campaigns/{id}/events    NDJSON event stream (?offset=&follow=)
    GET    /campaigns/{id}/report    self-contained HTML run report
    DELETE /campaigns/{id}           cancel (idempotent)

The events endpoint relays the monitor's ``events.jsonl`` *bytes*
verbatim from a client-supplied offset, so what a client assembles —
across any number of disconnect/reconnect cycles — is byte-identical
to the file on disk.

Errors are JSON, ``{"error": "<message>"}``, with conventional status
codes: 400 malformed JSON or spec, 404 unknown job or route, 405
wrong method.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.monitor import read_events_chunk
from repro.obs.report import build_report
from repro.service.queue import JobQueue, QueueError, TERMINAL_STATES
from repro.service.scheduler import CampaignScheduler

__all__ = ["CampaignService"]

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEAD = 64 * 1024
_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
}
#: Poll cadence for the follow-mode event stream, seconds.
_STREAM_POLL = 0.05


def _json_bytes(payload) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class CampaignService:
    """The orchestration service: queue + scheduler + HTTP front end.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  Use as a context manager in tests::

        with CampaignService(data_dir, port=0) as svc:
            client = ServiceClient(svc.url)
    """

    def __init__(
        self,
        data_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: int = 1,
        workers: int = 0,
        client_quota: int = 0,
        task_timeout: Optional[float] = None,
        max_attempts: int = 3,
        status_interval: float = 0.0,
    ) -> None:
        self.data_dir = str(data_dir)
        self.host = host
        self.port = port
        os.makedirs(self.data_dir, exist_ok=True)
        self.queue = JobQueue(self.data_dir)
        self.scheduler = CampaignScheduler(
            self.queue,
            os.path.join(self.data_dir, "campaigns"),
            max_jobs=max_jobs,
            workers=workers,
            client_quota=client_quota,
            task_timeout=task_timeout,
            max_attempts=max_attempts,
            status_interval=status_interval,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CampaignService":
        if self._thread is not None:
            raise RuntimeError("service already started")
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("service failed to start listening")
        return self

    def _serve_forever(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot():
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            self._started.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop accepting, drain the scheduler, stop the loop."""
        if self._loop is not None:

            async def teardown():
                if self._server is not None:
                    self._server.close()
                    await self._server.wait_closed()

            asyncio.run_coroutine_threadsafe(teardown(), self._loop).result(10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.stop()
        self._loop = None
        self._server = None
        self._started.clear()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # pragma: no cover - last-ditch 500
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, reader, writer) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            await self._respond(writer, 413, {"error": "request head too large"})
            return
        if len(head) > _MAX_HEAD:
            await self._respond(writer, 413, {"error": "request head too large"})
            return
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        if method in ("POST", "PUT"):
            try:
                length = int(headers.get("content-length", ""))
            except ValueError:
                await self._respond(writer, 411, {"error": "Content-Length required"})
                return
            if length > _MAX_BODY:
                await self._respond(writer, 413, {"error": "body too large"})
                return
            body = await reader.readexactly(length)
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        await self._route(writer, method, split.path, query, headers, body)

    async def _respond(
        self,
        writer,
        status: int,
        payload,
        content_type: str = "application/json",
    ) -> None:
        data = payload if isinstance(payload, bytes) else _json_bytes(payload)
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(data)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(self, writer, method, path, query, headers, body) -> None:
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            if method != "GET":
                await self._respond(writer, 405, {"error": "use GET"})
                return
            await self._respond(
                writer, 200, {"ok": True, "counts": self.queue.counts()}
            )
            return
        if not parts or parts[0] != "campaigns":
            await self._respond(writer, 404, {"error": f"no such route: {path}"})
            return
        if len(parts) == 1:
            if method == "POST":
                await self._submit(writer, headers, body)
            elif method == "GET":
                await self._respond(
                    writer, 200, {"jobs": [j.to_dict() for j in self.queue.jobs()]}
                )
            else:
                await self._respond(writer, 405, {"error": "use GET or POST"})
            return
        job_id = parts[1]
        try:
            job = self.queue.get(job_id)
        except KeyError:
            await self._respond(writer, 404, {"error": f"unknown campaign: {job_id}"})
            return
        if len(parts) == 2:
            if method == "GET":
                await self._job_detail(writer, job)
            elif method == "DELETE":
                cancelled = self.queue.request_cancel(job_id)
                await self._respond(writer, 200, {"job": cancelled.to_dict()})
            else:
                await self._respond(writer, 405, {"error": "use GET or DELETE"})
            return
        if len(parts) == 3 and method == "GET":
            if parts[2] == "events":
                await self._stream_events(writer, job_id, query)
                return
            if parts[2] == "report":
                await self._report(writer, job_id)
                return
        await self._respond(writer, 404, {"error": f"no such route: {path}"})

    # -- endpoints -----------------------------------------------------------

    async def _submit(self, writer, headers, body) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            await self._respond(writer, 400, {"error": "body is not valid JSON"})
            return
        if not isinstance(payload, dict):
            await self._respond(writer, 400, {"error": "body must be a JSON object"})
            return
        # Either a bare CampaignSpec or {"spec": ..., "client": ...}.
        if "spec" in payload:
            spec = payload.get("spec")
            client = payload.get("client") or headers.get("x-client", "anonymous")
        else:
            spec = payload
            client = headers.get("x-client", "anonymous")
        if not isinstance(client, str) or not client:
            await self._respond(writer, 400, {"error": "client must be a string"})
            return
        try:
            job, created = self.queue.submit(spec, client=client)
        except QueueError as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        await self._respond(
            writer,
            201 if created else 200,
            {"job": job.to_dict(), "created": created},
        )

    async def _job_detail(self, writer, job) -> None:
        detail = {"job": job.to_dict()}
        status_path = os.path.join(self.scheduler.obs_dir(job.id), "status.json")
        try:
            with open(status_path, encoding="utf-8") as handle:
                detail["status"] = json.load(handle)
        except (OSError, ValueError):
            detail["status"] = None
        detail["paths"] = {
            "journal": os.path.join(self.scheduler.job_dir(job.id), "journal"),
            "events": self.scheduler.events_path(job.id),
        }
        await self._respond(writer, 200, detail)

    async def _stream_events(self, writer, job_id: str, query) -> None:
        try:
            offset = int(query.get("offset", "0"))
        except ValueError:
            await self._respond(writer, 400, {"error": "offset must be an integer"})
            return
        if offset < 0:
            await self._respond(writer, 400, {"error": "offset must be >= 0"})
            return
        follow = query.get("follow", "0") not in ("0", "false", "")
        path = self.scheduler.events_path(job_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        while True:
            chunk, offset = read_events_chunk(path, offset)
            if chunk:
                writer.write(chunk)
                await writer.drain()
                continue
            if not follow:
                break
            # Follow until the job is terminal *and* the file is drained.
            try:
                state = self.queue.get(job_id).state
            except KeyError:  # pragma: no cover - job deleted mid-stream
                break
            if state in TERMINAL_STATES:
                chunk, offset = read_events_chunk(path, offset)
                if chunk:
                    writer.write(chunk)
                    await writer.drain()
                    continue
                break
            await asyncio.sleep(_STREAM_POLL)
        await writer.drain()

    async def _report(self, writer, job_id: str) -> None:
        obs_dir = self.scheduler.obs_dir(job_id)
        loop = asyncio.get_running_loop()
        try:
            path = await loop.run_in_executor(None, build_report, obs_dir)
        except FileNotFoundError:
            await self._respond(
                writer, 404, {"error": "no observability data for this campaign yet"}
            )
            return
        with open(path, "rb") as handle:
            html = handle.read()
        await self._respond(writer, 200, html, content_type="text/html; charset=utf-8")
