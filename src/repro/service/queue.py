"""Persistent, content-addressed campaign job queue.

The orchestration service's source of truth.  Every job is one file,
``jobs/<id>.json``, written with the same atomic temp-file +
``os.replace`` pattern the campaign journal uses for its manifest: a
crash can lose at most the *latest* transition, never corrupt a
record.  The job id is :func:`~repro.fleet.spec.campaign_digest` of
the submitted spec, so identical campaigns are identical jobs —
resubmission is answered from the existing record and never schedules
duplicate work.

States and transitions::

    queued ──claim──▶ running ──finish──▶ done | failed
      │                  │
      │ cancel           │ cancel flag, honoured by the runner's
      ▼                  ▼ ``should_stop`` poll
    cancelled         cancelled

``release`` moves ``running`` back to ``queued`` (service drain: the
shards already checkpointed stay in the journal, so the re-claim is a
resume, not a redo).  Recovery on open does the same for any job a
dead service left ``running`` — unless its cancel flag was up, in
which case it lands in ``cancelled``.  Either way an opened queue
never contains an orphaned ``running`` entry.

Ordering is made *assertable*, not just fair on average: every
transition stamps a monotone sequence number (``seq`` at submit,
``started_seq`` at claim, ``finished_seq`` at finish), so tests can
check "B's first job started before A's second" as a total order
instead of sampling timings.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.fleet.spec import campaign_digest, spec_from_dict, spec_to_dict

__all__ = [
    "ACTIVE_STATES",
    "Job",
    "JobQueue",
    "QueueError",
    "TERMINAL_STATES",
]

#: States a job can be observed in.
STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})
ACTIVE_STATES = frozenset({"queued", "running"})


class QueueError(ValueError):
    """Malformed submission or an impossible state transition."""


@dataclass
class Job:
    """One campaign job; the on-disk record is :meth:`to_dict`."""

    id: str
    spec: dict
    client: str
    state: str = "queued"
    #: Monotone submission order (first submission; dedup keeps it).
    seq: int = 0
    #: Monotone claim order; ``-1`` until first claimed.
    started_seq: int = -1
    #: Monotone completion order; ``-1`` until terminal.
    finished_seq: int = -1
    #: Times this job was claimed (resumes and retries included).
    attempts: int = 0
    cancel_requested: bool = False
    error: Optional[str] = None
    #: Scheduler-written payload (metrics, completeness, ...) for
    #: ``done`` jobs.
    result: Optional[dict] = None
    shards_total: int = 0
    created: float = 0.0
    updated: float = 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec,
            "client": self.client,
            "state": self.state,
            "seq": self.seq,
            "started_seq": self.started_seq,
            "finished_seq": self.finished_seq,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "result": self.result,
            "shards_total": self.shards_total,
            "created": self.created,
            "updated": self.updated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        fields = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - fields
        if unknown:
            raise QueueError(f"job record has unknown fields: {sorted(unknown)}")
        missing = {"id", "spec", "client"} - set(data)
        if missing:
            raise QueueError(f"job record missing fields: {sorted(missing)}")
        job = cls(**data)
        if job.state not in STATES:
            raise QueueError(f"job {job.id}: unknown state {job.state!r}")
        return job


class JobQueue:
    """Crash-safe on-disk queue with content-addressed dedup.

    All methods are thread-safe (one lock; every mutation persists the
    record before returning).  Reads return *copies* so callers can
    never mutate queue state behind the lock's back.
    """

    def __init__(self, root) -> None:
        self.root = str(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._started_seq = 0
        self._finished_seq = 0
        self._recovered: List[str] = []
        self._load()

    # -- persistence ---------------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _persist(self, job: Job) -> None:
        job.updated = time.time()
        path = self._path(job.id)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(job.to_dict(), handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _load(self) -> None:
        """Read every record; heal interrupted states.

        A job left ``running`` by a dead service is re-queued (its
        checkpoints make the next claim a resume) — unless cancellation
        was already requested, in which case the cancel wins.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    job = Job.from_dict(json.load(handle))
            except (OSError, ValueError) as exc:
                raise QueueError(f"unreadable job record {name}: {exc}") from exc
            if job.id != name[: -len(".json")]:
                raise QueueError(f"job record {name} claims id {job.id}")
            if job.state == "running":
                if job.cancel_requested:
                    job.state = "cancelled"
                    job.error = "cancelled while service was down"
                    job.finished_seq = self._finished_seq
                else:
                    job.state = "queued"
                self._persist(job)
                self._recovered.append(job.id)
            self._jobs[job.id] = job
        self._seq = 1 + max((j.seq for j in self._jobs.values()), default=-1)
        self._started_seq = 1 + max(
            (j.started_seq for j in self._jobs.values()), default=-1
        )
        self._finished_seq = 1 + max(
            (j.finished_seq for j in self._jobs.values()), default=-1
        )

    @property
    def recovered(self) -> Tuple[str, ...]:
        """Job ids healed out of ``running`` when this queue opened."""
        return tuple(self._recovered)

    # -- submission ----------------------------------------------------------

    def submit(self, spec_dict: dict, client: str = "anonymous") -> Tuple[Job, bool]:
        """Submit a campaign; returns ``(job, created)``.

        The spec is validated by round-tripping through
        :func:`spec_from_dict` and the job id is the digest of the
        *canonical* spec, so two submissions that differ only in JSON
        accidents (key order, ``6`` vs ``6.0``) still collide.  Dedup:

        * active (queued/running) or ``done`` → the existing job,
          ``created=False``; no new work is scheduled;
        * ``failed`` / ``cancelled`` → the job is reset to ``queued``
          (``created=False``): the journal still holds its completed
          shards, so the retry resumes rather than restarts.
        """
        if not isinstance(spec_dict, dict):
            raise QueueError("campaign spec must be a JSON object")
        try:
            spec = spec_from_dict(spec_dict)
        except ValueError as exc:
            raise QueueError(f"invalid campaign spec: {exc}") from exc
        job_id = campaign_digest(spec)
        canonical = spec_to_dict(spec)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.state in ("failed", "cancelled"):
                    existing.state = "queued"
                    existing.cancel_requested = False
                    existing.error = None
                    existing.finished_seq = -1
                    self._persist(existing)
                return replace(existing), False
            job = Job(
                id=job_id,
                spec=canonical,
                client=client,
                seq=self._seq,
                shards_total=spec.shards,
                created=time.time(),
            )
            self._seq += 1
            self._persist(job)
            self._jobs[job_id] = job
            return replace(job), True

    # -- scheduling ----------------------------------------------------------

    def claim_next(self, client_quota: int = 0) -> Optional[Job]:
        """Claim the next runnable job, fair-share across clients.

        Among queued jobs, picks the one whose client currently has the
        fewest ``running`` jobs (ties broken by submission order), so a
        client that dumped fifty campaigns cannot starve one that
        submitted a single job.  ``client_quota > 0`` caps running jobs
        per client; clients at quota are skipped entirely.
        """
        with self._lock:
            running: Dict[str, int] = {}
            for job in self._jobs.values():
                if job.state == "running":
                    running[job.client] = running.get(job.client, 0) + 1
            best: Optional[Job] = None
            best_key: Tuple[int, int] = (0, 0)
            for job in self._jobs.values():
                if job.state != "queued":
                    continue
                load = running.get(job.client, 0)
                if client_quota > 0 and load >= client_quota:
                    continue
                key = (load, job.seq)
                if best is None or key < best_key:
                    best, best_key = job, key
            if best is None:
                return None
            best.state = "running"
            best.attempts += 1
            best.started_seq = self._started_seq
            self._started_seq += 1
            self._persist(best)
            return replace(best)

    def finish(
        self,
        job_id: str,
        state: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> Job:
        """Move a running job to a terminal state."""
        if state not in TERMINAL_STATES:
            raise QueueError(f"finish() requires a terminal state, got {state!r}")
        with self._lock:
            job = self._require(job_id)
            if job.state != "running":
                raise QueueError(
                    f"job {job_id} is {job.state}, cannot finish to {state}"
                )
            job.state = state
            job.result = result
            job.error = error
            job.finished_seq = self._finished_seq
            self._finished_seq += 1
            self._persist(job)
            return replace(job)

    def release(self, job_id: str) -> Job:
        """Return a running job to the queue (service drain, not failure)."""
        with self._lock:
            job = self._require(job_id)
            if job.state != "running":
                raise QueueError(f"job {job_id} is {job.state}, cannot release")
            job.state = "queued"
            self._persist(job)
            return replace(job)

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a job.

        ``queued`` jobs cancel immediately; ``running`` jobs get the
        flag raised for the runner's ``should_stop`` poll; terminal
        jobs are a no-op (cancellation is idempotent).
        """
        with self._lock:
            job = self._require(job_id)
            if job.state == "queued":
                job.state = "cancelled"
                job.cancel_requested = True
                job.finished_seq = self._finished_seq
                self._finished_seq += 1
                self._persist(job)
            elif job.state == "running":
                if not job.cancel_requested:
                    job.cancel_requested = True
                    self._persist(job)
            return replace(job)

    # -- inspection ----------------------------------------------------------

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            return replace(self._require(job_id))

    def jobs(self) -> List[Job]:
        """All jobs in submission order (copies)."""
        with self._lock:
            return [replace(j) for j in sorted(self._jobs.values(), key=lambda j: j.seq)]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
            return out
