"""Dispatch loop: feeds queued jobs to :class:`CampaignRunner` pools.

The scheduler owns the execution side of the service: a small
dispatcher thread claims jobs from the :class:`~repro.service.queue.
JobQueue` (fair-share, quota-capped) and hands each to a slot in a
thread pool.  Each slot runs one campaign end to end — journal under
``campaigns/<job id>``, a :class:`~repro.obs.monitor.CampaignMonitor`
writing ``events.jsonl`` for the API's streaming endpoint, and the
queue's cancel flag wired into the runner's ``should_stop`` poll.

Outcome mapping::

    CampaignResult            → done   (metrics payload on the job)
    CampaignCancelled + flag  → cancelled
    CampaignCancelled + drain → released back to queued (resume later)
    anything else             → failed (message on the job)

Because every campaign checkpoints per shard, none of these paths can
duplicate work: a resumed or retried job replays completed shards from
the journal as cache hits.
"""

from __future__ import annotations

import os
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.fleet.campaign import CampaignCancelled, CampaignRunner
from repro.fleet.spec import spec_from_dict
from repro.obs.monitor import CampaignMonitor
from repro.parallel.supervise import RetryPolicy
from repro.service.queue import Job, JobQueue

__all__ = ["CampaignScheduler"]


class CampaignScheduler:
    """Runs queued campaigns until stopped.

    Parameters
    ----------
    queue:
        The persistent job queue.
    campaigns_dir:
        Root for per-job journal + observability directories.
    max_jobs:
        Campaigns executing concurrently (thread-pool slots).
    workers:
        Worker processes *per campaign* (``0``/``1`` = serial shards).
    client_quota:
        Max running jobs per client (``0`` = unlimited).
    poll:
        Dispatcher sleep between empty claim attempts, seconds.
    task_timeout, max_attempts:
        Per-shard supervision knobs, forwarded to the runner.
    status_interval:
        Seconds between ``status.json`` rewrites (0 = every event).
    """

    def __init__(
        self,
        queue: JobQueue,
        campaigns_dir,
        max_jobs: int = 1,
        workers: int = 0,
        client_quota: int = 0,
        poll: float = 0.05,
        task_timeout: Optional[float] = None,
        max_attempts: int = 3,
        status_interval: float = 0.0,
    ) -> None:
        self.queue = queue
        self.campaigns_dir = str(campaigns_dir)
        os.makedirs(self.campaigns_dir, exist_ok=True)
        self.max_jobs = max(1, int(max_jobs))
        self.workers = workers
        self.client_quota = client_quota
        self.poll = poll
        self.task_timeout = task_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.status_interval = status_interval
        self._stop = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._inflight: Dict[str, object] = {}
        self._inflight_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("scheduler already started")
        self._stop.clear()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_jobs, thread_name_prefix="repro-campaign"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True
        )
        self._dispatcher.start()

    def stop(self, wait: bool = True) -> None:
        """Drain: stop claiming, ask running campaigns to pause.

        In-flight campaigns see ``should_stop`` fire, checkpoint what
        they finished, and are *released* back to ``queued`` — the next
        service picks them up as resumes.
        """
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.campaigns_dir, job_id)

    def obs_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "obs")

    def events_path(self, job_id: str) -> str:
        return os.path.join(self.obs_dir(job_id), "events.jsonl")

    # -- dispatch ------------------------------------------------------------

    def _slots_free(self) -> bool:
        with self._inflight_lock:
            return len(self._inflight) < self.max_jobs

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim_next(self.client_quota) if self._slots_free() else None
            if job is None:
                self._stop.wait(self.poll)
                continue
            with self._inflight_lock:
                self._inflight[job.id] = self._pool.submit(self._execute, job)

    def _execute(self, job: Job) -> None:
        try:
            self._run_job(job)
        except Exception:  # pragma: no cover - defensive: keep the slot alive
            try:
                self.queue.finish(job.id, "failed", error=traceback.format_exc(limit=20))
            except Exception:
                pass
        finally:
            with self._inflight_lock:
                self._inflight.pop(job.id, None)

    def _run_job(self, job: Job) -> None:
        spec = spec_from_dict(job.spec)
        jdir = self.job_dir(job.id)
        os.makedirs(jdir, exist_ok=True)
        monitor = CampaignMonitor(
            self.obs_dir(job.id), interval=self.status_interval
        )

        def should_stop() -> bool:
            if self._stop.is_set():
                return True
            try:
                return self.queue.get(job.id).cancel_requested
            except KeyError:  # pragma: no cover - record vanished underneath us
                return True

        runner = CampaignRunner(
            spec,
            journal_dir=os.path.join(jdir, "journal"),
            workers=self.workers,
            task_timeout=self.task_timeout,
            retry=RetryPolicy(max_attempts=self.max_attempts, seed=spec.seed),
            monitor=monitor,
            should_stop=should_stop,
        )
        try:
            result = runner.run()
        except CampaignCancelled as exc:
            if self.queue.get(job.id).cancel_requested:
                self.queue.finish(job.id, "cancelled", error=str(exc))
            else:
                # Drain, not cancel: hand the job back for a later resume.
                self.queue.release(job.id)
            return
        except Exception as exc:
            self.queue.finish(
                job.id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
            return
        payload = {
            "campaign_digest": job.id,
            "metrics": result.metrics_dict(),
            "shards_total": result.shards_total,
            "shards_completed": result.shards_completed,
            "shards_resumed": result.shards_resumed,
            "shards_failed": result.shards_failed,
            "completeness": result.completeness,
            "supervision": dict(result.supervision),
        }
        self.queue.finish(job.id, "done", result=payload)
