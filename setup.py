"""Legacy setup shim.

The offline build environment has no ``wheel`` package, so PEP 660
editable installs are unavailable; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the
classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
