"""Corpus-scale tuning benchmark: out-of-core stores + halving search.

Writes ``BENCH_PR9.json`` next to the repo root.  Three rows:

* ``corpus_build`` — streams a >=1 GB single-entry corpus to disk
  through the bounded re-pack writer (tiled repetitions of a seeded
  catalog day; the writer never holds more than one chunk).
  **Gated**: the entry's packed data really is >= 1 GB;
* ``corpus_open_rss`` — a subprocess opens that corpus and streams a
  full idle-interval extraction over every chunk, reporting its
  ``ru_maxrss`` high-water mark against an import-only baseline
  subprocess.  **Gated**: the scan's resident growth is bounded by a
  fixed multiple of the 25 MiB chunk size — and far below the corpus
  size — so opening a multi-GB corpus costs O(chunk), not O(corpus);
* ``search_vs_grid`` — for every seeded catalog workload, the
  successive-halving search against the true exhaustive grid
  (``optimize(prune=False)``) through
  :func:`repro.verify.search.check_search_vs_grid`.  **Gated**: the
  differential contract holds (slowdown goal met, throughput within
  1% of the grid's optimum) and the search spends >= 5x fewer
  interval-evaluations (the :data:`~repro.analysis.slowdown.SIM_METER`
  effort proxy — deterministic, so this gate cannot flake) on every
  workload.

Effort is counted in interval-evaluations rather than wall seconds:
each fixed-waiting simulation is one vectorised pass over the idle
sample, so evaluations are proportional to simulation-seconds but
identical across machines and runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.service_model import ScrubServiceModel  # noqa: E402
from repro.disk.models import PRESETS  # noqa: E402
from repro.traces import CATALOG, generate_trace  # noqa: E402
from repro.traces.catalog import generate_corpus  # noqa: E402
from repro.traces.idle import idle_intervals_from_trace  # noqa: E402
from repro.traces.shm import packed_nbytes  # noqa: E402
from repro.traces.store import DEFAULT_CHUNK_REQUESTS  # noqa: E402
from repro.verify.search import check_search_vs_grid  # noqa: E402

#: Gates.
MIN_CORPUS_BYTES = 1 << 30  # the big entry must really be >= 1 GB
MIN_SPEEDUP = 5.0  # search effort vs the exhaustive grid, per workload
#: The streaming scan may grow RSS by at most this many chunk sizes
#: (one mapped chunk + per-chunk numpy temporaries + allocator slack).
RSS_CHUNK_MULTIPLE = 16

#: Workload suite: every seeded catalog day at this window.
SUITE_DURATION = 3600.0
SUITE_SEED = 0
GOAL = 0.002  # 2 ms mean-slowdown goal, the paper's midpoint


def _check(failures, label, ok, detail=""):
    print(f"  [{'ok' if ok else 'FAIL'}] {label}"
          + (f": {detail}" if detail else ""))
    return failures + (not ok)


def _subprocess_maxrss(code: str) -> dict:
    """Run ``code`` in a fresh interpreter; it must print one JSON line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        check=True, capture_output=True, text=True, env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


_BASELINE_CODE = """
import json, resource
import numpy as np
import repro.traces.store  # same imports as the scan, no data
print(json.dumps({"maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss}))
"""

_SCAN_CODE = """
import json, resource, sys
from repro.traces.idle import idle_intervals_streaming
from repro.traces.store import TraceCorpus

corpus = TraceCorpus.open(sys.argv[1])
name = corpus.names()[0]
stored = corpus.entry(name)
starts, durations = idle_intervals_streaming(stored.iter_chunks())
print(json.dumps({
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "requests": len(stored),
    "chunks": stored.chunk_count,
    "idle_intervals": int(len(durations)),
}))
"""


def bench_big_corpus(rows, failures, tmp):
    """Build the >= 1 GB corpus and gate the streaming scan's RSS."""
    base = generate_trace("MSRusr2", seed=SUITE_SEED)  # one 4h day
    per_rep = packed_nbytes(len(base))
    repetitions = -(-MIN_CORPUS_BYTES // per_rep)  # ceil to >= 1 GB
    corpus_dir = os.path.join(tmp, "corpus1g")
    start = time.perf_counter()
    corpus = generate_corpus(
        corpus_dir, names=["MSRusr2"], seed=SUITE_SEED,
        repetitions=int(repetitions),
    )
    build_s = time.perf_counter() - start
    row = corpus.describe("MSRusr2")
    data_bytes = packed_nbytes(row["requests"])
    print(
        f"corpus_build: {row['requests']:,} requests, "
        f"{data_bytes / 1e9:.2f} GB in {row['chunks']} chunks, "
        f"{build_s:.1f}s ({data_bytes / build_s / 1e6:.0f} MB/s)"
    )
    failures = _check(
        failures, "corpus >= 1 GB", data_bytes >= MIN_CORPUS_BYTES,
        f"{data_bytes:,} bytes",
    )
    rows["corpus_build"] = {
        "workload": f"MSRusr2 x{int(repetitions)} repetitions",
        "requests": int(row["requests"]),
        "bytes": int(data_bytes),
        "chunks": int(row["chunks"]),
        "wall_s": round(build_s, 2),
        "write_mb_per_s": round(data_bytes / build_s / 1e6, 1),
    }

    baseline = _subprocess_maxrss(_BASELINE_CODE)
    scan_code = _SCAN_CODE.replace("sys.argv[1]", repr(corpus_dir))
    start = time.perf_counter()
    scan = _subprocess_maxrss(scan_code)
    scan_s = time.perf_counter() - start
    chunk_bytes = packed_nbytes(DEFAULT_CHUNK_REQUESTS)
    delta = (scan["maxrss_kb"] - baseline["maxrss_kb"]) * 1024
    limit = RSS_CHUNK_MULTIPLE * chunk_bytes
    print(
        f"corpus_open_rss: scan of {scan['chunks']} chunks grew RSS by "
        f"{delta / 1e6:.0f} MB (limit {limit / 1e6:.0f} MB, "
        f"corpus {data_bytes / 1e9:.2f} GB) in {scan_s:.1f}s"
    )
    failures = _check(
        failures, "scan RSS bounded by chunk size", 0 <= delta <= limit,
        f"{delta / 1e6:.0f} MB vs {RSS_CHUNK_MULTIPLE}x{chunk_bytes / 1e6:.0f} MB",
    )
    failures = _check(
        failures, "scan RSS far below corpus size", delta <= data_bytes / 4,
        f"{delta / 1e6:.0f} MB vs {data_bytes / 1e6:.0f} MB on disk",
    )
    rows["corpus_open_rss"] = {
        "workload": "open + full streaming idle extraction, subprocess",
        "baseline_maxrss_kb": int(baseline["maxrss_kb"]),
        "scan_maxrss_kb": int(scan["maxrss_kb"]),
        "delta_bytes": int(delta),
        "limit_bytes": int(limit),
        "chunk_bytes": int(chunk_bytes),
        "idle_intervals": int(scan["idle_intervals"]),
        "scan_wall_s": round(scan_s, 2),
    }
    return failures


def bench_search_suite(rows, failures):
    """Search-vs-grid differential + effort gate on every catalog day."""
    model = ScrubServiceModel.from_spec(PRESETS["ultrastar"]())
    suite = {}
    identical = 0
    for name in sorted(CATALOG):
        trace = generate_trace(name, duration=SUITE_DURATION, seed=SUITE_SEED)
        _, durations = idle_intervals_from_trace(
            trace, positioning=CATALOG[name].service_positioning
        )
        start = time.perf_counter()
        report = check_search_vs_grid(
            durations, len(trace), trace.duration, model, GOAL,
        )
        wall_s = time.perf_counter() - start
        grid, outcome = report["grid"], report["search"]
        same = grid.request_bytes == outcome.best.request_bytes
        identical += same
        rel = outcome.best.throughput / grid.throughput
        print(
            f"  {name:<10} speedup {report['speedup']:5.1f}x  "
            f"grid {grid.request_bytes >> 10:5d}KB  "
            f"search {outcome.best.request_bytes >> 10:5d}KB  "
            f"rel throughput {rel:.5f}  ({wall_s:.1f}s)"
        )
        failures = _check(
            failures, f"{name}: search effort >= {MIN_SPEEDUP:.0f}x cheaper",
            report["speedup"] >= MIN_SPEEDUP, f"{report['speedup']:.1f}x",
        )
        suite[name] = {
            "idle_intervals": int(len(durations)),
            "speedup": round(report["speedup"], 2),
            "grid_interval_evals": int(report["grid_interval_evals"]),
            "search_interval_evals": int(outcome.interval_evals),
            "grid_request_kb": grid.request_bytes >> 10,
            "search_request_kb": outcome.best.request_bytes >> 10,
            "identical_choice": bool(same),
            "relative_throughput": round(rel, 6),
            "achieved_slowdown_ms": round(
                outcome.best.achieved_slowdown * 1e3, 4
            ),
        }
    speedups = [row["speedup"] for row in suite.values()]
    print(
        f"search_vs_grid: {len(suite)} workloads, speedups "
        f"{min(speedups):.1f}x..{max(speedups):.1f}x, "
        f"{identical}/{len(suite)} identical parameter choices"
    )
    rows["search_vs_grid"] = {
        "workload": (
            f"catalog suite, {SUITE_DURATION:.0f}s days, seed {SUITE_SEED}, "
            f"goal {GOAL * 1e3:.0f}ms"
        ),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "identical_choices": int(identical),
        "workloads": suite,
    }
    return failures


def main() -> int:
    rows = {}
    failures = 0
    print("== corpus store: build + bounded-RSS scan ==")
    with tempfile.TemporaryDirectory() as tmp:
        failures = bench_big_corpus(rows, failures, tmp)
    print("== successive-halving search vs exhaustive grid ==")
    failures = bench_search_suite(rows, failures)

    payload = {"python": platform.python_version(), "rows": rows}
    out = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_PR9.json",
    )
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")
    if failures:
        print(f"FAIL: {failures} corpus gate(s) failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
