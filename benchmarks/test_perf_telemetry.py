"""Tier gate for the telemetry overhead benchmark (``make bench-telemetry``).

A scaled-down run of :mod:`perf_telemetry` under the lite-timeout
plugin: checks the record shape and that disabled telemetry stays in
the same cost class as the bare kernel.  The headline ≤5% budget is
enforced at full scale by ``benchmarks/perf_telemetry.py`` itself
(where the 1M-event workload pushes timing noise well below the
budget); at this tiny scale we only assert a generous noise ceiling.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_telemetry import CONFIGS, run_telemetry_benchmark  # noqa: E402


def test_telemetry_overhead_record():
    record = run_telemetry_benchmark(scale=0.05, reps=2)
    total = record["total"]
    for name in CONFIGS:
        assert total[f"{name}_s"] > 0
        for row in record["phases"].values():
            assert row[f"{name}_s"] >= 0
    assert record["events"] >= 3000
    # Generous small-scale ceiling; the 5% budget is checked at full scale.
    assert total["null_overhead"] < 0.30, (
        f"NullSink overhead {total['null_overhead']:.1%} — the disabled "
        f"path should be indistinguishable from the bare kernel"
    )
    assert total["recorder_events_per_s"] > 0
