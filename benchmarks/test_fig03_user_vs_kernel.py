"""Fig. 3 — user-level vs kernel-level scrubbing under CFQ.

Paper: with back-to-back requests, the kernel scrubber (requests
disguised as reads) achieves higher throughput than the user-level
scrubber (ioctl soft barriers), and priorities only matter for the
kernel scrubber — Idle(U) equals Default(U).  With 16 ms delays the
user scrubber reaches 3.9 MB/s (= 64 KB / 16 ms, issue-to-issue
timing) while the kernel scrubber is limited to ~3 MB/s (delay +
service).  The kernel scrubber at Default priority takes throughput
away from the foreground workload.
"""

import pytest

from conftest import run_once, show
from repro.analysis.impact import ScrubberSetup, run_impact_experiment
from repro.sched.request import PriorityClass

HORIZON = 25.0

CONFIGS = {
    "None": None,
    "Idle (U)": ScrubberSetup(priority=PriorityClass.IDLE, user_level=True),
    "Idle (K)": ScrubberSetup(priority=PriorityClass.IDLE),
    "Default (U)": ScrubberSetup(priority=PriorityClass.BE, user_level=True),
    "Default (K)": ScrubberSetup(priority=PriorityClass.BE),
    "Def. 16ms (U)": ScrubberSetup(
        priority=PriorityClass.BE, user_level=True, delay=0.016
    ),
    "Def. 16ms (K)": ScrubberSetup(priority=PriorityClass.BE, delay=0.016),
}


def measure(ultrastar):
    results = {}
    for label, setup in CONFIGS.items():
        outcome = run_impact_experiment(
            ultrastar, "sequential", scrubber=setup, horizon=HORIZON,
            idle_gate=0.010,
        )
        results[label] = (outcome.foreground_mbps, outcome.scrubber_mbps)
    return results


def test_fig03_user_vs_kernel(benchmark, ultrastar):
    results = run_once(benchmark, lambda: measure(ultrastar))
    benchmark.extra_info["mbps"] = {
        k: {"foreground": fg, "scrubber": s} for k, (fg, s) in results.items()
    }
    show(
        "Fig. 3: user (U) vs kernel (K) scrubber (MB/s)",
        f"{'config':<16}{'foreground':>12}{'scrubber':>10}",
        [f"{k:<16}{fg:>12.2f}{s:>10.2f}" for k, (fg, s) in results.items()],
    )

    baseline_fg = results["None"][0]
    # Priorities have no effect on the user-level scrubber (barriers).
    assert results["Idle (U)"][1] == pytest.approx(
        results["Default (U)"][1], rel=0.15
    )
    assert results["Idle (U)"][0] == pytest.approx(
        results["Default (U)"][0], rel=0.15
    )
    # Back-to-back kernel scrubbing at Default outpaces the user scrubber.
    assert results["Default (K)"][1] > results["Default (U)"][1]
    # ... and costs the foreground dearly.
    assert results["Default (K)"][0] < 0.8 * baseline_fg
    # Kernel-level prioritisation works: the Idle class protects the
    # foreground, unlike user-level barriers which cannot be deprioritised.
    assert results["Idle (K)"][0] > 0.9 * baseline_fg
    assert results["Idle (K)"][0] > results["Idle (U)"][0]
    # With 16 ms delays, only the user scrubber reaches 64KB/16ms
    # (issue-to-issue timing); the delayed kernel scrubber pays
    # scheduling and service on top of the delay.
    assert results["Def. 16ms (U)"][1] == pytest.approx(3.9, rel=0.1)
    assert results["Def. 16ms (U)"][1] > results["Def. 16ms (K)"][1]
