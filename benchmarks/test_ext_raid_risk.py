"""Extension — from MLET to data loss: rebuild exposure vs scrubbing.

The paper's opening argument: an LSE that is still latent when a disk
fails is hit by the rebuild, and the data is gone.  This bench closes
that chain quantitatively on the RAID substrate: rebuild exposure
(expected unrecoverable sectors per rebuild, probability of any loss)
as a function of (a) whether/how fast we scrub, and (b) the scrub
order — staggered scrubbing's MLET advantage translates directly into
fewer exposed sectors for bursty LSEs.
"""

import numpy as np
import pytest

from conftest import run_once, show
from repro.core import SequentialScrub, StaggeredScrub
from repro.core.mlet import sector_visit_times
from repro.raid import RebuildRiskModel

TOTAL_SECTORS = 500_000
REQUEST_SECTORS = 128
BURST_RATE = 0.3  # bursts/second/disk (accelerated for the experiment)


def risk_for(algorithm, scrub_rate, horizon, seed=7, trials=400):
    visits, pass_duration = sector_visit_times(
        algorithm, TOTAL_SECTORS, REQUEST_SECTORS, scrub_rate
    )
    model = RebuildRiskModel(
        visits, pass_duration, burst_rate=BURST_RATE,
        mean_burst_length=3000.0, max_burst_length=20_000,
    )
    return model.simulate(
        np.random.default_rng(seed), trials=trials, horizon=horizon
    )


def measure():
    # All configurations are compared over the same horizon: ten fast
    # passes.  The "rare scrubbing" configuration's pass is far longer
    # than the horizon, so errors effectively stay latent until failure.
    fast_pass = TOTAL_SECTORS * 512 / 30e6
    horizon = 10 * fast_pass
    results = {}
    for label, algorithm, rate in [
        ("rare scrubbing (0.05 MB/s)", SequentialScrub(), 0.05e6),
        ("sequential @ 3 MB/s", SequentialScrub(), 3e6),
        ("sequential @ 30 MB/s", SequentialScrub(), 30e6),
        ("staggered-128 @ 3 MB/s", StaggeredScrub(128), 3e6),
        ("staggered-128 @ 30 MB/s", StaggeredScrub(128), 30e6),
    ]:
        risk = risk_for(algorithm, rate, horizon)
        results[label] = {
            "exposed": risk.expected_exposed_sectors,
            "loss_prob": risk.loss_probability,
        }
    return results


def test_ext_rebuild_risk(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["risk"] = results
    show(
        "Extension: rebuild exposure vs scrub configuration",
        f"{'config':<30}{'E[exposed sectors]':>20}{'P(loss)':>10}",
        [
            f"{label:<30}{r['exposed']:>20.1f}{r['loss_prob']:>10.2f}"
            for label, r in results.items()
        ],
    )
    # Scrubbing sharply reduces exposure vs. (nearly) not scrubbing.
    assert (
        results["sequential @ 30 MB/s"]["exposed"]
        < 0.2 * results["rare scrubbing (0.05 MB/s)"]["exposed"]
    )
    # Faster scrubbing helps at fixed order.
    assert (
        results["sequential @ 30 MB/s"]["exposed"]
        < results["sequential @ 3 MB/s"]["exposed"]
    )
    # Staggering helps at fixed rate (bursty LSEs).
    for rate in ("3 MB/s", "30 MB/s"):
        assert (
            results[f"staggered-128 @ {rate}"]["exposed"]
            < results[f"sequential @ {rate}"]["exposed"]
        ), rate
