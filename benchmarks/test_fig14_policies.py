"""Fig. 14 — policy comparison: idle utilisation vs collision rate.

Paper (two panels: HPc6t8d0, a worst case with many short intervals,
and MSRusr2, representative): the simple Waiting policy consistently
utilises more idle time at a given collision rate than AR and the
AR+Waiting combinations; pure AR is by far the worst; Lossless Waiting
(Waiting's selection without the waiting cost) almost coincides with
the clairvoyant Oracle.
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.analysis import sweep_policy_cls
from repro.core.policies import (
    ARPolicy,
    ARWaitingPolicy,
    LosslessWaitingPolicy,
    OraclePolicy,
    WaitingPolicy,
)
from repro.stats.ar import select_ar_order

DISKS = ["HPc6t8d0", "MSRusr2"]
THRESHOLDS = [0.016, 0.032, 0.064, 0.128, 0.256, 0.512, 1.024, 2.048]
DURATION = 4 * 3600.0


def interpolate_utilisation(points, collision_rate):
    """Linear interpolation of a policy curve at a collision rate."""
    rates = np.array([p.collision_rate for p in points])
    utils = np.array([p.utilisation for p in points])
    order = np.argsort(rates)
    return float(np.interp(collision_rate, rates[order], utils[order]))


def measure(runner):
    outcome = {}
    for name in DISKS:
        trace, durations = cached_idle(name, DURATION)
        total = len(trace)
        model = select_ar_order(durations, max_order=8)
        predictions = model.predict_series(durations)
        ar_thresholds = np.percentile(predictions, [10, 30, 50, 70, 90])

        waiting = sweep_policy_cls(
            WaitingPolicy, THRESHOLDS, durations, total, runner=runner
        )
        lossless = sweep_policy_cls(
            LosslessWaitingPolicy, THRESHOLDS, durations, total, runner=runner
        )
        ar = sweep_policy_cls(
            ARPolicy, ar_thresholds, durations, total,
            policy_kwargs={"model": model}, runner=runner,
        )
        combined = {
            f"AR({pct}th)+Waiting": sweep_policy_cls(
                ARWaitingPolicy, THRESHOLDS, durations, total,
                policy_kwargs={"ar_threshold": float(c), "model": model},
                runner=runner,
            )
            for pct, c in zip(
                (20, 40, 60, 80), np.percentile(predictions, [20, 40, 60, 80])
            )
        }
        budgets = sorted(
            {p.collisions / len(durations) for p in waiting if p.collisions}
        )
        oracle = sweep_policy_cls(
            OraclePolicy, budgets, durations, total, runner=runner
        )
        outcome[name] = {
            "waiting": waiting,
            "lossless": lossless,
            "ar": ar,
            "combined": combined,
            "oracle": oracle,
        }
    return outcome


def test_fig14_policy_comparison(benchmark, sweep_runner):
    outcome = run_once(benchmark, lambda: measure(sweep_runner))
    info = {}
    for name, curves in outcome.items():
        rows = []
        for label, points in (
            ("Waiting", curves["waiting"]),
            ("Lossless", curves["lossless"]),
            ("AR", curves["ar"]),
            ("Oracle", curves["oracle"]),
        ):
            rows.append(
                f"{label:<10}"
                + "  ".join(
                    f"({p.collision_rate:.4f},{p.utilisation:.2f})"
                    for p in points[:6]
                )
            )
        show(f"Fig. 14 [{name}]: (collision rate, utilisation)", "", rows)
        info[name] = {
            label: [
                (p.collision_rate, p.utilisation) for p in curves[label]
            ]
            for label in ("waiting", "lossless", "ar", "oracle")
        }
    benchmark.extra_info["curves"] = info

    for name, curves in outcome.items():
        waiting = curves["waiting"]
        # 1. Waiting beats AR: at every AR point's collision rate, the
        # interpolated Waiting curve utilises at least as much idle time.
        for point in curves["ar"]:
            w_util = interpolate_utilisation(waiting, point.collision_rate)
            assert w_util >= point.utilisation - 0.02, (name, point.label)
        # 2. Waiting beats (or matches) each AR+Waiting variant.
        for label, combo in curves["combined"].items():
            for point in combo:
                w_util = interpolate_utilisation(
                    waiting, point.collision_rate
                )
                assert w_util >= point.utilisation - 0.03, (name, label)
        # 3. Lossless Waiting coincides with the Oracle.
        for lossless_pt in curves["lossless"]:
            oracle_util = interpolate_utilisation(
                curves["oracle"], lossless_pt.collision_rate
            )
            assert lossless_pt.utilisation == pytest.approx(
                oracle_util, abs=0.03
            ), name
        # 4. The Oracle upper-bounds Waiting.
        for point in waiting:
            oracle_util = interpolate_utilisation(
                curves["oracle"], point.collision_rate
            )
            assert oracle_util >= point.utilisation - 0.01, name
