"""Ablation — swapping request sizes never beats the optimal fixed size.

The paper experimented with a two-size "swapping" policy (start at a
size, switch to the maximum allowed size after t' seconds of firing)
and found the optimal switch time to be infinity — i.e. once the
slowdown-*optimal* size is chosen, switching away from it only costs.
This ablation sweeps t' explicitly and verifies the operative claim:
at every mean-slowdown budget, the optimizer's fixed choice matches or
beats every swapping variant.  (A finite t' *can* beat "never switch"
when the start size is smaller than optimal — swapping then just
limps toward the fixed-optimal curve, never past it.)
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.analysis.slowdown import simulate_adaptive_waiting
from repro.core.adaptive import SwappingSchedule

DISK = "MSRusr2"
DURATION = 4 * 3600.0
SWITCH_TIMES = [0.01, 0.05, 0.2, 1.0, float("inf")]
THRESHOLDS = [0.032, 0.128, 0.512, 2.048]
START = 1024 * 1024  # a reasonable slowdown-optimal size
CAP = 4 * 1024 * 1024


def measure(service_model):
    from repro.core.optimizer import ScrubParameterOptimizer

    trace, durations = cached_idle(DISK, DURATION)
    total, span = len(trace), trace.duration
    curves = {}
    for switch in SWITCH_TIMES:
        schedule = SwappingSchedule(START, CAP, switch)
        curves[switch] = [
            simulate_adaptive_waiting(
                durations, t, schedule, service_model, total, span
            )
            for t in THRESHOLDS
        ]
    optimizer = ScrubParameterOptimizer(durations, total, span, service_model)
    optimal = {}
    for goal in (0.0005, 0.001, 0.002):
        optimal[goal] = optimizer.optimize(goal).throughput_mbps
    return curves, optimal


def throughput_at(results, goal):
    slowdowns = np.array([r.mean_slowdown for r in results])
    throughputs = np.array([r.throughput_mbps for r in results])
    order = np.argsort(slowdowns)
    if goal < slowdowns.min():
        return 0.0
    return float(np.interp(goal, slowdowns[order], throughputs[order]))


def test_abl_swapping_never_beats_fixed_optimal(benchmark, service_model):
    curves, optimal = run_once(benchmark, lambda: measure(service_model))
    goals = list(optimal)
    rows = []
    table = {}
    for switch, results in curves.items():
        by_goal = [throughput_at(results, g) for g in goals]
        table[switch] = by_goal
        label = "inf" if switch == float("inf") else f"{switch:g}s"
        rows.append(
            f"t'={label:<6}"
            + "  ".join(
                f"{goal * 1e3:.1f}ms: {mbps:6.1f}"
                for goal, mbps in zip(goals, by_goal)
            )
        )
    rows.append(
        "fixed-optimal "
        + "  ".join(
            f"{goal * 1e3:.1f}ms: {mbps:6.1f}"
            for goal, mbps in optimal.items()
        )
    )
    benchmark.extra_info["throughput"] = {str(k): v for k, v in table.items()}
    benchmark.extra_info["fixed_optimal"] = {
        str(k): v for k, v in optimal.items()
    }
    show("Ablation: swapping switch time t' (throughput MB/s at goals)",
         "", rows)

    for switch, by_goal in table.items():
        for goal, swapping_mbps in zip(goals, by_goal):
            # The slowdown-optimal fixed size dominates every swapping
            # variant (within interpolation noise) — the paper's claim.
            assert optimal[goal] >= 0.96 * swapping_mbps, (switch, goal)
