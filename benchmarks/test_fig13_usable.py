"""Fig. 13 — fraction of idle time still usable after waiting.

Paper: waiting ~100 ms before firing still leaves 60–90% of the total
idle time usable (depending on the trace), while selecting fewer than
10% of the idle intervals — the quantitative case for the Waiting
policy.  TPC-C, memoryless, loses essentially everything by waiting.
"""

import numpy as np
import pytest

from conftest import cached_idle, run_once, show
from repro.stats import fraction_intervals_longer, usable_fraction

HEAVY = ["MSRsrc11", "MSRusr1", "HPc6t5d1", "HPc6t8d0"]
TAUS = np.array([1e-3, 1e-2, 1e-1, 1.0, 10.0])
DURATION = 4 * 3600.0


def measure():
    results = {}
    for name in HEAVY:
        _, durations = cached_idle(name, DURATION)
        results[name] = {
            "usable": usable_fraction(durations, TAUS),
            "selected": fraction_intervals_longer(durations, TAUS),
        }
    _, tpcc = cached_idle("TPCdisk66", 1200.0)
    results["TPCdisk66"] = {
        "usable": usable_fraction(tpcc, TAUS),
        "selected": fraction_intervals_longer(tpcc, TAUS),
    }
    return results


def test_fig13_usable_idle_after_waiting(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["curves"] = {
        k: {kk: vv.tolist() for kk, vv in v.items()}
        for k, v in results.items()
    }
    show(
        "Fig. 13: usable idle fraction after waiting tau",
        f"{'trace':<12}" + "".join(f"{t:>9.4g}" for t in TAUS),
        [
            f"{name:<12}"
            + "".join(f"{v:>9.1%}" for v in r["usable"])
            for name, r in results.items()
        ],
    )
    for name in HEAVY:
        usable = results[name]["usable"]
        selected = results[name]["selected"]
        at_100ms = TAUS.tolist().index(0.1)
        # The paper's headline: >= 60% of idle time usable at 100 ms...
        assert usable[at_100ms] > 0.6, name
        # ...while only a minority of intervals is selected (the
        # collision budget).  The paper reports <10%; our synthetic
        # Cello disks have fewer micro-intervals in the denominator, so
        # the bound is looser here.
        assert selected[at_100ms] < 0.35, name
        assert usable[at_100ms] > 2 * selected[at_100ms], name
        # Usable fraction decreases with the wait, gracefully.
        assert np.all(np.diff(usable) <= 1e-12), name
    # TPC-C loses everything almost immediately.
    assert results["TPCdisk66"]["usable"][TAUS.tolist().index(0.1)] < 0.01
