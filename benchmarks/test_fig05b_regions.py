"""Fig. 5b — staggered scrub throughput vs number of regions.

Paper: with 64 KB requests, staggered throughput grows with the region
count (region jumps shrink until the short seek beats the sequential
stream's full-rotation penalty) and from ~128 regions on it equals or
exceeds the sequential scrubber (dashed line).
"""

import pytest

from conftest import run_once, show
from repro.analysis import standalone_scrub_throughput
from repro.core import SequentialScrub, StaggeredScrub
from repro.disk import fujitsu_max3073rc, hitachi_ultrastar_15k450

REGIONS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
DRIVES = [
    ("Hitachi UltraStar", hitachi_ultrastar_15k450),
    ("Fujitsu MX", fujitsu_max3073rc),
]
HORIZON = 6.0


def measure():
    results = {}
    for label, factory in DRIVES:
        results[f"{label} Staggered"] = [
            standalone_scrub_throughput(
                factory(), StaggeredScrub(r), horizon=HORIZON
            ) / 1e6
            for r in REGIONS
        ]
        results[f"{label} Sequential"] = standalone_scrub_throughput(
            factory(), SequentialScrub(), horizon=HORIZON
        ) / 1e6
    return results


def test_fig05b_throughput_vs_regions(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["mbps"] = results
    rows = []
    for drive, _ in DRIVES:
        series = results[f"{drive} Staggered"]
        rows.append(
            f"{drive + ' Staggered':<28}"
            + " ".join(f"{v:6.1f}" for v in series)
        )
        rows.append(
            f"{drive + ' Sequential':<28}{results[f'{drive} Sequential']:6.1f}"
            " (region-independent)"
        )
    show(
        "Fig. 5b: staggered throughput (MB/s) vs #regions (64 KB requests)",
        " " * 28 + " ".join(f"{r:>6d}" for r in REGIONS),
        rows,
    )
    for drive, _ in DRIVES:
        stag = results[f"{drive} Staggered"]
        seq = results[f"{drive} Sequential"]
        # One region behaves like (slightly below, zone effects aside)
        # sequential; throughput grows with regions overall.
        assert stag[0] == pytest.approx(seq, rel=0.15), drive
        assert max(stag[6:]) > max(stag[:3]), drive
        # From >= 128 regions staggered matches or beats sequential —
        # the crossover the paper reports.
        for index, regions in enumerate(REGIONS):
            if regions >= 128:
                assert stag[index] >= 0.95 * seq, (drive, regions)
