"""Invariant-checker overhead microbenchmark -> ``BENCH_PR5.json``.

Reruns the PR 1 kernel microbenchmark workloads (``perf_kernel.py``:
the 1M-event timeout/process churn) with and without the
:class:`~repro.verify.invariants.InvariantSink` attached:

* **baseline** — ``Simulation()`` with no telemetry: the engine runs
  the untouched fast loop, so an unattached checker costs exactly
  nothing (structurally zero, and the ≤5% NullSink noise floor is
  already gated by ``perf_telemetry.py``);
* **invariants** — ``Simulation(telemetry=InvariantSink())``: the
  engine selects the instrumented twin loop and every hook the churn
  emits flows through the conservation-law checks.  Budgeted at ≤ 10%
  of baseline (the ISSUE 5 acceptance criterion), enforced here.

Timings use ``time.process_time`` (CPU time) with min-of-N interleaved
repetitions, like ``perf_kernel.py`` and ``perf_telemetry.py``.

Usage::

    PYTHONPATH=src python benchmarks/perf_verify.py [--scale 0.1]
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_kernel import PHASES, WORKLOADS  # noqa: E402

from repro import __version__  # noqa: E402
from repro import sim as kernel  # noqa: E402
from repro.verify import InvariantSink  # noqa: E402

#: InvariantSink overhead budget vs the no-telemetry baseline (ISSUE 5
#: acceptance criterion: <= 10% on the 1M-event churn when enabled).
INVARIANT_OVERHEAD_BUDGET = 0.10


class _KernelShim:
    """Quacks like the ``repro.sim`` module for the perf workloads.

    The workloads only call ``kernel.Simulation()``; this shim threads a
    fresh invariant sink into every such construction.
    """

    def __init__(self, sink_factory):
        self._sink_factory = sink_factory

    def Simulation(self):  # noqa: N802 - mimics the module attribute
        return kernel.Simulation(telemetry=self._sink_factory())


CONFIGS = {
    "baseline": kernel,  # Simulation() exactly as PR 1 benchmarks it
    "invariants": _KernelShim(lambda: InvariantSink()),
}


def _time_once(workload, module, events: int) -> float:
    start = time.process_time()
    workload(module, events)
    return time.process_time() - start


def run_verify_benchmark(scale: float = 1.0, reps: int = 3) -> dict:
    """Measure every phase under both configs; returns the record.

    Repetitions interleave the configs (baseline, invariants, ...) and
    each keeps its minimum, cancelling slow drift on a loaded machine.
    """
    phases = {}
    totals = {name: 0.0 for name in CONFIGS}
    total_events = 0
    for phase_name, budget in PHASES.items():
        events = max(1000, int(budget * scale))
        workload = WORKLOADS[phase_name]
        for module in CONFIGS.values():  # warm allocator / code objects
            _time_once(workload, module, 1000)
        best = {name: float("inf") for name in CONFIGS}
        for _ in range(reps):
            for name, module in CONFIGS.items():
                best[name] = min(best[name], _time_once(workload, module, events))
        phases[phase_name] = {
            "events": events,
            **{f"{name}_s": round(best[name], 4) for name in CONFIGS},
        }
        for name in CONFIGS:
            totals[name] += best[name]
        total_events += events

    overhead = (totals["invariants"] - totals["baseline"]) / totals["baseline"]
    return {
        "workload": "perf_kernel churn phases under the invariant checker",
        "timer": "time.process_time (CPU), min of interleaved reps",
        "reps": reps,
        "events": total_events,
        "phases": phases,
        "total": {
            **{f"{name}_s": round(totals[name], 4) for name in CONFIGS},
            "invariant_overhead": round(overhead, 4),
            "invariant_overhead_budget": INVARIANT_OVERHEAD_BUDGET,
            "invariant_events_per_s": round(total_events / totals["invariants"]),
        },
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="event-budget multiplier (use e.g. 0.1 for a quick check)",
    )
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_PR5.json"),
    )
    args = parser.parse_args(argv)

    record = run_verify_benchmark(scale=args.scale, reps=args.reps)
    print(f"{'phase':<22}{'events':>9}{'baseline':>10}{'invariants':>12}")
    for name, row in record["phases"].items():
        print(
            f"{name:<22}{row['events']:>9,}{row['baseline_s']:>9.3f}s"
            f"{row['invariants_s']:>11.3f}s"
        )
    total = record["total"]
    print(
        f"{'TOTAL':<22}{record['events']:>9,}{total['baseline_s']:>9.3f}s"
        f"{total['invariants_s']:>11.3f}s"
    )
    print(
        f"InvariantSink overhead: {total['invariant_overhead']:+.1%} "
        f"(budget {INVARIANT_OVERHEAD_BUDGET:.0%}; "
        f"{total['invariant_events_per_s']:,} events/s checked)"
    )

    payload = {
        "version": __version__,
        "python": sys.version.split()[0],
        "verify": record,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if total["invariant_overhead"] > INVARIANT_OVERHEAD_BUDGET:
        print(
            f"WARNING: InvariantSink overhead "
            f"{total['invariant_overhead']:.1%} exceeds the "
            f"{INVARIANT_OVERHEAD_BUDGET:.0%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
