"""Fig. 5a — scrub throughput vs request size (sequential vs staggered).

Paper: throughput rises steeply with request size for both orders
(from ~10 MB/s at 64 KB toward the media rate at 16 MB), and a
128-region staggered scrubber tracks — or beats — the sequential one
across the whole range.
"""

import pytest

from conftest import run_once, show
from repro.analysis import standalone_scrub_throughput
from repro.core import SequentialScrub, StaggeredScrub
from repro.disk import fujitsu_max3073rc, hitachi_ultrastar_15k450

SIZES_KB = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
DRIVES = [
    ("Hitachi UltraStar", hitachi_ultrastar_15k450),
    ("Fujitsu MX", fujitsu_max3073rc),
]
HORIZON = 6.0


def measure():
    results = {}
    for label, factory in DRIVES:
        for alg_label, make_alg in (
            ("Sequential", SequentialScrub),
            ("Staggered", lambda: StaggeredScrub(128)),
        ):
            mbps = [
                standalone_scrub_throughput(
                    factory(), make_alg(), request_bytes=kb * 1024,
                    horizon=HORIZON,
                ) / 1e6
                for kb in SIZES_KB
            ]
            results[f"{label} {alg_label}"] = mbps
    return results


def test_fig05a_throughput_vs_request_size(benchmark):
    results = run_once(benchmark, measure)
    benchmark.extra_info["mbps"] = results
    show(
        "Fig. 5a: scrub throughput (MB/s) vs request size (128 regions)",
        " " * 28 + " ".join(f"{s:>6d}K" for s in SIZES_KB),
        [
            f"{label:<28}" + " ".join(f"{v:7.1f}" for v in series)
            for label, series in results.items()
        ],
    )
    for label, series in results.items():
        # Larger requests always help, strongly so across the range.
        assert series[-1] > 5 * series[0], label
        assert all(b >= a * 0.95 for a, b in zip(series, series[1:])), label
    for drive, _ in DRIVES:
        seq = results[f"{drive} Sequential"]
        stag = results[f"{drive} Staggered"]
        # At 128 regions staggered keeps up with sequential everywhere.
        assert all(s >= 0.8 * q for s, q in zip(stag, seq)), drive
