"""Tier gate for the zero-copy replay benchmark (``make bench-replay``).

A scaled-down run of :mod:`perf_replay` under the lite-timeout plugin.
Bit-identity between the legacy, batched and shared-memory paths is
asserted *inside* ``run_replay_benchmark`` (it raises on divergence),
so this gate checks the record shape and that the accelerated path
stays clearly ahead even on traces small enough for a CI tier.  The
headline 2x/4x floors are enforced at full scale by
``benchmarks/perf_replay.py`` itself, where pickling and record
materialization dominate the legacy timings.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_replay import FIG7_CONFIGS, run_replay_benchmark  # noqa: E402


def test_replay_speedup_record():
    record = run_replay_benchmark(scale=0.1, reps=1)
    for phase in ("fig7", "detect"):
        row = record[phase]
        assert row["identical"] is True
        assert row["legacy_s"] > 0 and row["new_s"] > 0
        assert row["records"] > 1000
        # Generous small-scale floor; 2x/4x are checked at full scale.
        assert row["speedup"] > 1.2, (
            f"{phase}: zero-copy path only {row['speedup']}x vs legacy — "
            "expected a clear win even at CI scale"
        )
    assert set(record["fig7"]["mean_slowdowns"]) == set(FIG7_CONFIGS)
    assert record["detect"]["tasks"] == 8
