"""Tier gate for the invariant-checker overhead benchmark.

A scaled-down run of :mod:`perf_verify` under the lite-timeout plugin:
checks the record shape and that the live checker stays in the same
cost class as the bare kernel.  The headline ≤10% budget is enforced
at full scale by ``benchmarks/perf_verify.py`` itself (where the
1M-event workload pushes timing noise well below the budget); at this
tiny scale we only assert a generous noise ceiling.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_verify import CONFIGS, run_verify_benchmark  # noqa: E402


def test_invariant_overhead_record():
    record = run_verify_benchmark(scale=0.05, reps=2)
    total = record["total"]
    for name in CONFIGS:
        assert total[f"{name}_s"] > 0
        for row in record["phases"].values():
            assert row[f"{name}_s"] >= 0
    assert record["events"] >= 3000
    # Generous small-scale ceiling; the 10% budget is checked at full
    # scale.  The churn workloads emit almost no hooks, so even the
    # twin loop should stay close to baseline.
    assert total["invariant_overhead"] < 0.40, (
        f"InvariantSink overhead {total['invariant_overhead']:.1%} — the "
        f"checker must stay in the same cost class as the bare kernel"
    )
    assert total["invariant_events_per_s"] > 0


def test_unattached_checker_is_free_structurally():
    # "0 when not attached": without a sink the engine selects the
    # untouched fast loop — the checker's code is never even reachable.
    from repro.sim import Simulation

    sim = Simulation()
    assert sim.telemetry is None
