"""Table I — the SNIA block I/O traces used in the paper.

Regenerates the catalog: the same ten disks (plus MSRusr2, used in
Fig. 14), their collections and descriptions, and checks that the
synthetic generators' request *rates* are ordered like the paper's
requests-per-week column.
"""

import pytest

from conftest import cached_trace, run_once, show
from repro.traces import CATALOG

WEEK = 7 * 86400.0
SAMPLE = 1800.0  # seconds of synthetic trace per disk


#: The TPC-C traces cover one ~12 minute benchmark run, not a week
#: (513k requests at ~700/s); extrapolate them per run, not per week.
TPCC_RUN = 720.0


def measure():
    rows = {}
    for name, spec in CATALOG.items():
        duration = 300.0 if spec.profile.memoryless else SAMPLE
        trace = cached_trace(name, duration)
        rate = len(trace) / max(trace.duration, 1e-9)
        horizon = TPCC_RUN if spec.profile.memoryless else WEEK
        rows[name] = {
            "collection": spec.collection,
            "description": spec.description,
            "paper_requests": spec.paper_requests_per_week,
            "synthetic_weekly": rate * horizon,
        }
    return rows


def test_tab1_trace_catalog(benchmark):
    rows = run_once(benchmark, measure)
    benchmark.extra_info["catalog"] = rows
    show(
        "Table I: trace catalog (TPC-C rows are per ~12 min run)",
        f"{'disk':<12}{'collection':<16}{'paper reqs':>14}{'synth reqs':>14}",
        [
            f"{name:<12}{r['collection']:<16}"
            + (
                f"{r['paper_requests']:>14,}"
                if r["paper_requests"]
                else f"{'-':>14}"
            )
            + f"{r['synthetic_weekly']:>14,.0f}"
            for name, r in rows.items()
        ],
    )

    # All of Table I's disks are present with the paper's metadata.
    paper_counts = {
        "MSRsrc11": 45_746_222,
        "MSRusr1": 45_283_980,
        "MSRproj2": 29_266_482,
        "MSRprn1": 11_233_411,
        "HPc6t8d0": 9_529_855,
        "HPc6t5d1": 4_588_778,
        "HPc6t5d0": 3_365_078,
        "HPc3t3d0": 2_742_326,
        "TPCdisk66": 513_038,
        "TPCdisk88": 513_844,
    }
    for name, count in paper_counts.items():
        assert rows[name]["paper_requests"] == count, name

    # Busy-ness ordering is preserved within each collection: e.g.
    # src11/usr1 are the busiest MSR disks, c6t8d0 the busiest Cello one.
    msr = ["MSRsrc11", "MSRusr1", "MSRproj2", "MSRprn1"]
    synth = [rows[n]["synthetic_weekly"] for n in msr]
    assert synth[0] > synth[3] and synth[1] > synth[3]
    hp = ["HPc6t8d0", "HPc6t5d1", "HPc6t5d0", "HPc3t3d0"]
    hp_rates = [rows[n]["synthetic_weekly"] for n in hp]
    assert hp_rates[0] == max(hp_rates)
    # MSR disks are busier than Cello disks overall (2008 vs 1999).
    assert rows["MSRsrc11"]["synthetic_weekly"] > rows["HPc3t3d0"][
        "synthetic_weekly"
    ]
    # TPC-C request totals per run match the paper's counts closely.
    for name in ("TPCdisk66", "TPCdisk88"):
        assert rows[name]["synthetic_weekly"] == pytest.approx(
            rows[name]["paper_requests"], rel=0.1
        ), name
