"""Fig. 9 — ANOVA-detected periods for the busiest 63 disks.

Paper: across the busiest 63 traces, ANOVA detects a period for most
disks, most commonly 24 hours; a result of one hour means no
periodicity.  We build a 63-disk population like the paper's (the
catalog disks plus parameterised variants: mostly diurnal, some with
12 h harmonics, some aperiodic) and check the detected-period
histogram has the paper's shape: a strong 24 h mode, a minority of
other periods, and a few no-period disks.
"""

import collections

import pytest

from conftest import run_once, show
from repro.sim import RandomStreams
from repro.stats import anova_period
from repro.traces.synth import (
    FLAT,
    NIGHTLY_BATCH,
    OFFICE_HOURS,
    SyntheticTraceGenerator,
    TraceProfile,
)

DAYS = 4
HALF_DAY = tuple(
    1.0 + 1.6 * (1 if (h % 12) in (2, 3, 4) else 0) for h in range(24)
)


def build_population():
    """63 disk profiles: ~70% diurnal, ~15% 12 h, ~15% aperiodic."""
    population = []
    for index in range(63):
        if index % 7 == 5:
            hourly, expected = FLAT, 1
        elif index % 7 == 6:
            hourly, expected = HALF_DAY, 12
        elif index % 2:
            hourly, expected = OFFICE_HOURS, 24
        else:
            hourly, expected = NIGHTLY_BATCH, 24
        profile = TraceProfile(
            name=f"disk{index:02d}",
            duration=DAYS * 86400.0,
            idle_gap_mean=0.2 + 0.05 * (index % 5),
            idle_gap_cov=8.0 + 2.0 * (index % 7),
            burst_len_mean=1 + index % 4,
            intra_gap_mean=0.002,
            hourly_profile=hourly,
        )
        population.append((profile, expected))
    return population


def measure():
    streams = RandomStreams(seed=63)
    outcomes = []
    for profile, expected in build_population():
        trace = SyntheticTraceGenerator(
            profile, streams.get(profile.name)
        ).generate()
        result = anova_period(trace.requests_per_bin(3600.0), max_period=30)
        outcomes.append((profile.name, expected, result.period))
    return outcomes


def test_fig09_anova_periods(benchmark):
    outcomes = run_once(benchmark, measure)
    histogram = collections.Counter(period for _, _, period in outcomes)
    benchmark.extra_info["histogram"] = dict(histogram)
    show(
        "Fig. 9: detected periods over 63 disks",
        "period (h): count",
        [f"{period:>3d} h: {count}" for period, count in sorted(histogram.items())],
    )

    # 24 h is the dominant detected period, as in the paper.
    assert histogram.most_common(1)[0][0] == 24
    assert histogram[24] >= 30
    # Some disks show no periodicity (reported as 1 h).
    assert histogram.get(1, 0) >= 3
    # Per-disk accuracy: diurnal disks are overwhelmingly detected at
    # 24 h (or a 24 h multiple the four-day window supports).
    diurnal = [o for o in outcomes if o[1] == 24]
    correct = sum(1 for _, _, period in diurnal if period % 24 == 0)
    assert correct >= 0.8 * len(diurnal)
    # Aperiodic disks are rarely assigned strong periods.
    flat = [o for o in outcomes if o[1] == 1]
    false_alarms = sum(1 for _, _, period in flat if period != 1)
    assert false_alarms <= len(flat) // 2
