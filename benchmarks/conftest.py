"""Shared fixtures and helpers for the experiment benchmarks.

Each module in this directory regenerates one of the paper's tables or
figures (see DESIGN.md §4).  The benchmarks use ``benchmark.pedantic``
with a single round — these are *experiment regenerators*, not
micro-benchmarks — and store their result rows in
``benchmark.extra_info`` so ``--benchmark-json`` output carries the
reproduced numbers.  Run with ``-s`` to see the paper-style tables.

The sweeps inside the experiments route through a
:class:`repro.parallel.SweepRunner`.  By default it runs serial and
uncached so the recorded timings measure real work; set
``REPRO_BENCH_WORKERS=<n>`` to fan sweeps across processes and
``REPRO_BENCH_CACHE=<dir>`` to reuse results across runs.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.analysis.service_model import ScrubServiceModel
from repro.disk import hitachi_ultrastar_15k450
from repro.parallel import ResultCache, SweepRunner
from repro.traces import generate_trace
from repro.traces.catalog import trace_idle_intervals


@functools.lru_cache(maxsize=64)
def cached_trace(name: str, duration: float, seed: int = 0, rate_scale: float = 1.0):
    return generate_trace(name, duration=duration, seed=seed, rate_scale=rate_scale)


@functools.lru_cache(maxsize=64)
def cached_idle(name: str, duration: float, seed: int = 0):
    trace = cached_trace(name, duration, seed)
    _, durations = trace_idle_intervals(name, trace)
    return trace, durations


@pytest.fixture(scope="session")
def ultrastar():
    return hitachi_ultrastar_15k450()


@pytest.fixture(scope="session")
def service_model(ultrastar):
    return ScrubServiceModel.from_spec(ultrastar)


@pytest.fixture(scope="session")
def sweep_runner():
    """Sweep executor for the experiments (serial/uncached by default)."""
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return SweepRunner(workers=workers, cache=cache)


def run_once(benchmark, func):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


def show(title, header, rows):
    """Print a paper-style table (visible with ``pytest -s``)."""
    print(f"\n=== {title} ===")
    print(header)
    for row in rows:
        print(row)
