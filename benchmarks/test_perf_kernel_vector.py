"""Tier gate for the vector kernel (``make bench-kernel``).

Two halves:

1. **Speedup** — the PR 6 acceptance criterion: the numpy
   batch-advance kernel must beat the reference engine by >= 4x on the
   full 1M-event churn workload (clock parity is asserted inside
   ``run_vector_benchmark``), and the pooled-timer satellite must not
   be slower than the fresh-timer path it replaces.
2. **Bit-identity** — the speedup only counts if the answers match:
   the Fig. 7 replay grid and the ``repro detect`` experiment must
   produce *identical* results under both kernels, across all three
   scenario families.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_kernel_vector import (  # noqa: E402
    run_timer_pool_benchmark,
    run_vector_benchmark,
)

from repro.analysis.detection import detection_sweep_task  # noqa: E402
from repro.analysis.impact import ScrubberSetup  # noqa: E402
from repro.analysis.replay_cdf import (  # noqa: E402
    clear_baseline_memo,
    replay_slowdown_task,
)
from repro.traces import generate_trace  # noqa: E402
from repro.verify import outcome_signature, run_scenario  # noqa: E402

#: The Fig. 7 legend: CFQ-sequential, CFQ-staggered, Waiting.
FIG7_CONFIGS = {
    "cfq-sequential": dict(scrubber=ScrubberSetup(algorithm="sequential")),
    "cfq-staggered": dict(
        scrubber=ScrubberSetup(algorithm="staggered", regions=128)
    ),
    "waiting-100ms": dict(waiting={"threshold": 0.1, "request_bytes": 64 * 1024}),
}


def test_vector_speedup_gate_1m_events():
    record = run_vector_benchmark(scale=1.0, reps=2)
    assert record["events"] >= 1_000_000
    batch = record["phases"]["batch_timer_churn"]
    assert batch["speedup"] > 4.0, (
        f"batch phase only {batch['speedup']}x — the bulk-retire path "
        "regressed"
    )
    total = record["total"]["speedup"]
    assert total >= 4.0, (
        f"vector kernel only {total}x vs reference on "
        f"{record['events']:,} events — below the PR 6 acceptance gate"
    )


def test_timer_pool_not_slower():
    pool = run_timer_pool_benchmark(waits=50_000, reps=2)
    assert pool["speedup"] > 0.95, (
        f"pooled ReusableTimeout is {pool['speedup']}x vs fresh Timeout — "
        "the allocation satellite made the hot path slower"
    )


def test_fig7_grid_identical_under_both_kernels():
    trace = generate_trace("MSRsrc11", duration=120.0, seed=3)

    def grid(kernel: str) -> list:
        clear_baseline_memo()  # never serve one kernel from the other's memo
        return [
            replay_slowdown_task(
                trace, horizon=30.0, kernel=kernel,
                **{k: v for k, v in config.items()},
            )
            for config in FIG7_CONFIGS.values()
        ]

    reference = grid("reference")
    vector = grid("vector")
    for name, ref, vec in zip(FIG7_CONFIGS, reference, vector):
        assert ref["mean_slowdown"] == vec["mean_slowdown"], name
        r, v = ref["result"], vec["result"]
        assert r.scrub_bytes == v.scrub_bytes, name
        assert r.fg_requests == v.fg_requests, name
        assert np.array_equal(r.fg_response_times, v.fg_response_times), name


def test_detect_identical_under_both_kernels():
    def detect(kernel: str) -> list:
        return [
            detection_sweep_task(
                drive="caviar", cylinders=30, algorithm=algorithm,
                model="bursts", model_params={"inter_burst_mean": 0.5},
                horizon=0.6, seed=3, cache_bug=bug, kernel=kernel,
            )
            for algorithm in ("sequential", "staggered")
            for bug in (False, True)
        ]

    for ref, vec in zip(detect("reference"), detect("vector")):
        assert ref.metrics == vec.metrics
        assert ref.algorithm == vec.algorithm


def test_three_families_identical_under_both_kernels():
    scenarios = [
        {"family": "synthetic", "horizon": 0.2, "seed": 3},
        {"family": "trace-replay", "horizon": 0.2, "seed": 3},
        {"family": "fault-injected", "model": "bernoulli", "horizon": 0.2,
         "seed": 3, "cache_enabled": False},
    ]
    for params in scenarios:
        reference = run_scenario(**params, kernel="reference")
        vector = run_scenario(**params, kernel="vector")
        assert outcome_signature(reference) == outcome_signature(vector), (
            params["family"]
        )
