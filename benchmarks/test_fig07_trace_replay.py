"""Fig. 7 — response-time CDFs replaying a real(istic) trace (MSRsrc11).

Paper: back-to-back scrub requests hurt the response-time distribution
badly even through CFQ's Idle class, while 64 ms delays protect the
foreground but drop the scrubber's rate by more than an order of
magnitude (211–216 req/s back-to-back vs 14 req/s at 64 ms).
"""

import numpy as np
import pytest

from conftest import cached_trace, run_once, show
from repro.analysis.impact import ScrubberSetup
from repro.analysis.replay_cdf import replay_with_scrubber
from repro.sched.request import PriorityClass

HORIZON = 400.0

CONFIGS = {
    "No scrubber": None,
    "CFQ (Seql)": ScrubberSetup(priority=PriorityClass.IDLE),
    "CFQ (Stag)": ScrubberSetup(algorithm="staggered", priority=PriorityClass.IDLE),
    "0ms (Seql)": ScrubberSetup(priority=PriorityClass.BE),
    "64ms (Seql)": ScrubberSetup(priority=PriorityClass.BE, delay=0.064),
    "64ms (Stag)": ScrubberSetup(
        algorithm="staggered", priority=PriorityClass.BE, delay=0.064
    ),
}


def measure(ultrastar):
    trace = cached_trace("MSRsrc11", 6 * 3600.0).window(0.0, HORIZON)
    results = {}
    for label, setup in CONFIGS.items():
        outcome = replay_with_scrubber(
            trace, ultrastar, scrubber=setup, horizon=HORIZON, idle_gate=0.0
        )
        results[label] = outcome
    return results


def percentile(times, q):
    return float(np.percentile(times, q) * 1e3)


def test_fig07_trace_replay_cdfs(benchmark, ultrastar):
    results = run_once(benchmark, lambda: measure(ultrastar))
    rows = []
    summary = {}
    for label, outcome in results.items():
        times = outcome.fg_response_times
        med, p95 = percentile(times, 50), percentile(times, 95)
        rows.append(
            f"{label:<14} {outcome.scrub_requests_per_sec:7.1f} scrub req/s   "
            f"median {med:8.2f} ms   p95 {p95:9.2f} ms"
        )
        summary[label] = {
            "scrub_req_per_s": outcome.scrub_requests_per_sec,
            "median_ms": med,
            "p95_ms": p95,
        }
    benchmark.extra_info["summary"] = summary
    show("Fig. 7: MSRsrc11-like replay", "config", rows)

    base = results["No scrubber"].fg_response_times
    # Back-to-back scrubbing (even Idle class) visibly degrades the
    # response-time distribution...
    for label in ("CFQ (Seql)", "0ms (Seql)"):
        degraded = results[label].fg_response_times
        assert np.median(degraded) > 1.1 * np.median(base), label
    # ...64 ms delays keep the CDF close to the baseline (far below the
    # back-to-back configurations)...
    relaxed = results["64ms (Seql)"].fg_response_times
    assert np.median(relaxed) < 1.6 * np.median(base)
    assert np.median(relaxed) < np.median(
        results["0ms (Seql)"].fg_response_times
    ) / 3
    # ...but cost the scrubber an order of magnitude in rate.
    assert (
        results["64ms (Seql)"].scrub_requests_per_sec
        < results["CFQ (Seql)"].scrub_requests_per_sec / 8
    )
    # Staggered tracks sequential in both regimes (the paper's
    # "results are identical" note).
    assert results["CFQ (Stag)"].scrub_requests_per_sec == pytest.approx(
        results["CFQ (Seql)"].scrub_requests_per_sec, rel=0.5
    )
    assert results["64ms (Stag)"].scrub_requests_per_sec == pytest.approx(
        results["64ms (Seql)"].scrub_requests_per_sec, rel=0.2
    )
