"""Detection experiment — the error-lifecycle payoff of fault injection.

Not a figure from the paper, but its premise quantified: identical
seeded fault plans are scrubbed by the Sequential, Staggered and
Waiting policies on the WD Caviar geometry, once with the ATA
``VERIFY``-from-cache firmware bug (paper Fig. 1) and once with
SCSI-style media verifies.  The bugged drive silently passes scrubs
over bad sectors that are sitting in its cache, so it detects strictly
fewer of the injected errors — the reason the paper calls ATA VERIFY
"unusable for scrubbing".  On the SCSI-semantics runs every
scrub-detected error must finish the full lifecycle: localised by
splitting, remapped to the spare pool, verified after remap.

The sweep routes through :class:`repro.parallel.SweepRunner`; the test
also re-runs it on a two-worker pool and requires bit-identical
results, since fault plans are pure functions of (model, seed).
"""

from conftest import run_once, show
from repro.analysis.detection import detection_sweep_task
from repro.parallel import SweepRunner

ALGORITHMS = ("sequential", "staggered", "waiting")
BASE = dict(
    drive="caviar",
    cylinders=50,
    regions=16,
    model="bursts",
    model_params={"inter_burst_mean": 0.5, "in_burst_time_mean": 0.01},
    horizon=5.0,
    seed=3,
    cache_enabled=True,
)


def param_grid():
    return [
        dict(BASE, algorithm=algorithm, cache_bug=bug)
        for algorithm in ALGORITHMS
        for bug in (True, False)
    ]


def test_fig_detection_lifecycle(benchmark, sweep_runner):
    params = param_grid()
    results = run_once(benchmark, lambda: sweep_runner.map(detection_sweep_task, params))
    by_key = {
        (p["algorithm"], p["cache_bug"]): r for p, r in zip(params, results)
    }

    rows = []
    for (algorithm, bug), result in sorted(by_key.items()):
        m = result.metrics
        mttd = (
            f"{m.mean_time_to_detection:6.2f}s"
            if m.mean_time_to_detection is not None
            else "    n/a"
        )
        rows.append(
            f"{algorithm:<11} verify={'cached' if bug else 'media '}  "
            f"injected={m.injected:3d}  detected={m.detected:3d}  "
            f"masked={m.cache_mask_events:5d}  missed={m.missed_due_to_cache:3d}  "
            f"remapped={m.remapped:3d}  MTTD={mttd}  "
            f"lifecycle={'complete' if m.lifecycle_complete else 'INCOMPLETE'}"
        )
    show("Detection: ATA cache bug vs SCSI media verify", "", rows)
    benchmark.extra_info["detected"] = {
        f"{algorithm} bug={bug}": by_key[(algorithm, bug)].metrics.detected
        for algorithm, bug in by_key
    }

    for algorithm in ALGORITHMS:
        ata = by_key[(algorithm, True)].metrics
        scsi = by_key[(algorithm, False)].metrics
        # Identical plan and schedule; only the VERIFY semantics differ.
        assert ata.injected == scsi.injected
        # The firmware bug hides errors the SCSI drive finds (Fig. 1's
        # "unusable for scrubbing"), and the misses are attributable to
        # cache service over known-bad sectors.
        assert ata.detected < scsi.detected, algorithm
        assert ata.missed_due_to_cache > 0, algorithm
        assert ata.cache_mask_events > 0, algorithm
        assert scsi.cache_mask_events == 0, algorithm
        # Full lifecycle on the media-verify runs: every scrub-detected
        # sector ends remapped and verified after remap.
        assert scsi.detected > 0, algorithm
        assert scsi.lifecycle_complete, algorithm
        assert scsi.remapped == scsi.detected, algorithm
        assert scsi.verified_after_remap == scsi.remapped, algorithm
        assert scsi.mean_time_to_detection is not None, algorithm
        assert 0.0 < scsi.mean_time_to_detection, algorithm


def test_fig_detection_parallel_bit_identical(benchmark):
    """A two-worker sweep returns exactly what the serial sweep returns."""
    params = param_grid()

    def both():
        serial = SweepRunner(workers=0).map(detection_sweep_task, params)
        parallel = SweepRunner(workers=2).map(detection_sweep_task, params)
        return serial, parallel

    serial, parallel = run_once(benchmark, both)
    assert serial == parallel
