"""Extension — MLET: staggered scrubbing detects bursty LSEs sooner.

Not a numbered figure in this paper, but its core motivation (from
Oprea & Juels, FAST'10): for spatially bursty latent sector errors,
staggered scrubbing reduces the Mean Latent Error Time, and the paper
argues the region count barely matters for MLET while mattering a lot
for throughput — so one should pick region counts that are also
throughput-optimal (>= 128).  This bench closes that loop with the
scrub rates *measured on the drive model*.
"""

import numpy as np
import pytest

from conftest import run_once, show
from repro.analysis import standalone_scrub_throughput
from repro.core import SequentialScrub, StaggeredScrub
from repro.core.mlet import (
    generate_bursts,
    mean_latent_error_time,
    sector_visit_times,
)

TOTAL_SECTORS = 1_000_000
REQUEST_SECTORS = 128
REGION_COUNTS = [4, 16, 64, 128, 256]


def measure(ultrastar):
    rng = np.random.default_rng(2012)
    bursts = generate_bursts(
        rng, TOTAL_SECTORS, count=4000, horizon=1e9,
        mean_length=4000.0, max_length=40_000,
    )
    singles = generate_bursts(
        rng, TOTAL_SECTORS, count=4000, horizon=1e9,
        mean_length=1.0, max_length=1,
    )
    rows = {}
    configs = [("sequential", SequentialScrub())] + [
        (f"staggered-{r}", StaggeredScrub(r)) for r in REGION_COUNTS
    ]
    for label, algorithm in configs:
        rebuild = (
            SequentialScrub()
            if label == "sequential"
            else StaggeredScrub(algorithm.regions)
        )
        rate = standalone_scrub_throughput(
            ultrastar, rebuild, request_bytes=REQUEST_SECTORS * 512,
            horizon=6.0,
        )
        visits, pass_duration = sector_visit_times(
            algorithm, TOTAL_SECTORS, REQUEST_SECTORS, rate
        )
        rows[label] = {
            "mbps": rate / 1e6,
            "pass_s": pass_duration,
            "mlet_bursty": mean_latent_error_time(visits, pass_duration, bursts),
            "mlet_single": mean_latent_error_time(visits, pass_duration, singles),
        }
    return rows


def test_ext_mlet_staggered_wins(benchmark, ultrastar):
    rows = run_once(benchmark, lambda: measure(ultrastar))
    benchmark.extra_info["mlet"] = rows
    show(
        "Extension: MLET under bursty LSEs",
        f"{'order':<16}{'MB/s':>8}{'pass (s)':>10}{'MLET bursty':>13}{'MLET single':>13}",
        [
            f"{label:<16}{r['mbps']:>8.1f}{r['pass_s']:>10.1f}"
            f"{r['mlet_bursty']:>13.2f}{r['mlet_single']:>13.2f}"
            for label, r in rows.items()
        ],
    )
    seq = rows["sequential"]
    # Single (non-bursty) errors: every order averages half a pass.
    for label, r in rows.items():
        assert r["mlet_single"] == pytest.approx(r["pass_s"] / 2, rel=0.1), label
    # Bursty errors: enough regions cut the MLET well below sequential,
    # helped twice — shorter passes (throughput) and earlier probes.
    assert rows["staggered-128"]["mlet_bursty"] < 0.5 * seq["mlet_bursty"]
    assert rows["staggered-256"]["mlet_bursty"] < 0.5 * seq["mlet_bursty"]
    # The throughput-optimal region counts are also MLET-good: no
    # reason to stay sequential.
    assert rows["staggered-128"]["mbps"] >= 0.95 * seq["mbps"]
